//! Offline-first standard-library compatibility layer.
//!
//! Every crate in this workspace compiles against the facades in this
//! crate instead of depending on crates.io directly, so the whole
//! reproduction builds and tests with an empty cargo registry:
//!
//! - [`rng`] — deterministic pseudo-random numbers (SplitMix64 seeding,
//!   xoshiro256++ generation) replacing `rand`.
//! - [`json`] — a minimal JSON value, parser and serializer plus the
//!   [`json::ToJson`]/[`json::FromJson`] traits replacing
//!   `serde`/`serde_json` for the types that round-trip to disk.
//! - [`sync`] — poison-transparent [`sync::Mutex`]/[`sync::RwLock`]
//!   replacing `parking_lot`.
//! - [`channel`] — bounded/unbounded MPSC channels replacing
//!   `crossbeam::channel`.
//! - [`pool`] — scoped worker pools replacing `crossbeam::thread`.
//!
//! The off-by-default `ext` cargo feature swaps the [`sync`],
//! [`channel`] and [`pool`] backends to the original external crates
//! (`parking_lot`, `crossbeam`) and exposes a `rand`-backed generator
//! in [`rng`], with the same public API either way. The [`rng`] default
//! generator and [`json`] codec are always in-tree so that seeded runs
//! and saved models are identical in both configurations.

pub mod channel;
pub mod json;
pub mod pool;
pub mod rng;
pub mod sync;

pub use json::{FromJson, Json, JsonError, ToJson};
pub use rng::{Rng, SplitMix64, StdRng, Xoshiro256PlusPlus};
