//! Poison-transparent locks.
//!
//! `parking_lot`'s locks do not poison, and the workspace's lock users
//! (the monitoring agent, telemetry registries) treat a panic while
//! holding a lock as recoverable — the guarded state is plain data. The
//! std backend therefore unwraps poison via
//! [`std::sync::PoisonError::into_inner`], giving the same lock API
//! whether or not the `ext` feature swaps the backend to `parking_lot`.

#[cfg(not(feature = "ext"))]
mod imp {
    /// A mutual-exclusion lock.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    /// RAII guard for [`Mutex`].
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        /// Creates a lock around `value`.
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Acquires the lock, blocking the current thread. Poison from
        /// a panicked holder is ignored.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Consumes the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    /// A reader-writer lock.
    #[derive(Debug, Default)]
    pub struct RwLock<T>(std::sync::RwLock<T>);

    /// Shared-read guard for [`RwLock`].
    pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
    /// Exclusive-write guard for [`RwLock`].
    pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

    impl<T> RwLock<T> {
        /// Creates a lock around `value`.
        pub fn new(value: T) -> Self {
            RwLock(std::sync::RwLock::new(value))
        }

        /// Acquires shared read access. Poison is ignored.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.0
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Acquires exclusive write access. Poison is ignored.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.0
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Consumes the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }
}

#[cfg(feature = "ext")]
mod imp {
    /// A mutual-exclusion lock (`parking_lot` backend).
    #[derive(Debug, Default)]
    pub struct Mutex<T>(parking_lot::Mutex<T>);

    /// RAII guard for [`Mutex`].
    pub type MutexGuard<'a, T> = parking_lot::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        /// Creates a lock around `value`.
        pub fn new(value: T) -> Self {
            Mutex(parking_lot::Mutex::new(value))
        }

        /// Acquires the lock, blocking the current thread.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock()
        }

        /// Consumes the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }

    /// A reader-writer lock (`parking_lot` backend).
    #[derive(Debug, Default)]
    pub struct RwLock<T>(parking_lot::RwLock<T>);

    /// Shared-read guard for [`RwLock`].
    pub type RwLockReadGuard<'a, T> = parking_lot::RwLockReadGuard<'a, T>;
    /// Exclusive-write guard for [`RwLock`].
    pub type RwLockWriteGuard<'a, T> = parking_lot::RwLockWriteGuard<'a, T>;

    impl<T> RwLock<T> {
        /// Creates a lock around `value`.
        pub fn new(value: T) -> Self {
            RwLock(parking_lot::RwLock::new(value))
        }

        /// Acquires shared read access.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.0.read()
        }

        /// Acquires exclusive write access.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.0.write()
        }

        /// Consumes the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }
}

pub use imp::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() = 8;
        assert_eq!(l.into_inner(), 8);
    }

    #[cfg(not(feature = "ext"))]
    #[test]
    fn poisoned_mutex_stays_usable() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
