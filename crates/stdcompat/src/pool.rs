//! Scoped worker pools replacing `crossbeam::thread::scope`.
//!
//! Training fans work out over borrowed data (the feature matrix, the
//! label vector); scoped threads let workers borrow instead of clone.
//! The std backend uses [`std::thread::scope`]; the `ext` feature swaps
//! in `crossbeam::thread::scope`, which predates it.

/// Splits `items` into `n_workers` contiguous chunks and runs
/// `work(chunk_index, chunk)` on each chunk in its own scoped thread.
///
/// Chunks have size `ceil(len / n_workers)`, so chunk `i` starts at
/// item `i * ceil(len / n_workers)` — workers can recover global item
/// indices from the chunk index. With `n_workers <= 1` (or one item)
/// the work runs on the calling thread.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn for_each_chunk_mut<T, F>(items: &mut [T], n_workers: usize, work: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if items.is_empty() {
        return;
    }
    let chunk_size = items.len().div_ceil(n_workers.max(1));
    if n_workers <= 1 || chunk_size >= items.len() {
        work(0, items);
        return;
    }
    imp::scope_chunks(items, chunk_size, &work);
}

/// Runs `work(index, item)` once per item, with `n_workers` scoped
/// threads pulling items off a shared queue in index order.
///
/// Unlike [`for_each_chunk_mut`]'s static partitioning, the dynamic
/// queue keeps every worker busy until the queue drains, so unevenly
/// priced items (grid-search candidates with different
/// hyper-parameters) cannot strand a straggler chunk on one worker.
/// With `n_workers <= 1` the work runs on the calling thread.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn for_each_item_mut<T, F>(items: &mut [T], n_workers: usize, work: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n_workers = n_workers.max(1).min(items.len());
    if n_workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            work(i, item);
        }
        return;
    }
    let queue = std::sync::Mutex::new(items.chunks_mut(1).enumerate());
    imp::scope_workers(n_workers, &|| loop {
        let next = queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .next();
        match next {
            Some((i, cell)) => work(i, &mut cell[0]),
            None => break,
        }
    });
}

/// Computes `f(i)` for every `i < n` across `n_workers` scoped threads
/// and returns the results in index order.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn parallel_map<R, F>(n: usize, n_workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for_each_chunk_mut(&mut slots, n_workers, |chunk_idx, chunk| {
        let chunk_size = n.div_ceil(n_workers.max(1));
        for (off, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(chunk_idx * chunk_size + off));
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("all slots are filled by workers"))
        .collect()
}

#[cfg(not(feature = "ext"))]
mod imp {
    pub(super) fn scope_chunks<T, F>(items: &mut [T], chunk_size: usize, work: &F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        std::thread::scope(|scope| {
            for (chunk_idx, chunk) in items.chunks_mut(chunk_size).enumerate() {
                scope.spawn(move || work(chunk_idx, chunk));
            }
        });
    }

    pub(super) fn scope_workers<F>(n_workers: usize, worker: &F)
    where
        F: Fn() + Sync,
    {
        std::thread::scope(|scope| {
            for _ in 0..n_workers {
                scope.spawn(worker);
            }
        });
    }
}

#[cfg(feature = "ext")]
mod imp {
    pub(super) fn scope_chunks<T, F>(items: &mut [T], chunk_size: usize, work: &F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        crossbeam::thread::scope(|scope| {
            for (chunk_idx, chunk) in items.chunks_mut(chunk_size).enumerate() {
                scope.spawn(move |_| work(chunk_idx, chunk));
            }
        })
        .expect("scoped worker thread panicked");
    }

    pub(super) fn scope_workers<F>(n_workers: usize, worker: &F)
    where
        F: Fn() + Sync,
    {
        crossbeam::thread::scope(|scope| {
            for _ in 0..n_workers {
                scope.spawn(move |_| worker());
            }
        })
        .expect("scoped worker thread panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_work_covers_every_item_exactly_once() {
        let mut items = vec![0u32; 103];
        for_each_chunk_mut(&mut items, 7, |chunk_idx, chunk| {
            let chunk_size = 103usize.div_ceil(7);
            for (off, item) in chunk.iter_mut().enumerate() {
                *item += (chunk_idx * chunk_size + off) as u32;
            }
        });
        let expect: Vec<u32> = (0..103).collect();
        assert_eq!(items, expect);
    }

    #[test]
    fn single_worker_runs_inline() {
        let mut items = vec![1, 2, 3];
        for_each_chunk_mut(&mut items, 1, |chunk_idx, chunk| {
            assert_eq!(chunk_idx, 0);
            assert_eq!(chunk.len(), 3);
            for item in chunk {
                *item *= 10;
            }
        });
        assert_eq!(items, vec![10, 20, 30]);
    }

    #[test]
    fn dynamic_queue_covers_every_item_exactly_once() {
        let mut items = vec![0u32; 103];
        for_each_item_mut(&mut items, 7, |i, item| *item += i as u32 + 1);
        let expect: Vec<u32> = (1..=103).collect();
        assert_eq!(items, expect);

        let mut empty: Vec<u32> = Vec::new();
        for_each_item_mut(&mut empty, 4, |_, _| unreachable!());
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let squares = parallel_map(20, 4, |i| i * i);
        assert_eq!(squares, (0..20).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
    }
}
