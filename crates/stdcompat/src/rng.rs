//! Deterministic pseudo-random numbers without `rand`.
//!
//! [`SplitMix64`] (Steele, Lea & Flood 2014) expands a single `u64`
//! seed into the state of [`Xoshiro256PlusPlus`] (Blackman & Vigna
//! 2019), the workspace's default generator. Both are tiny, fast and
//! pass BigCrush-level batteries; neither is cryptographic, which is
//! fine for bootstrap sampling, weight initialisation and workload
//! noise.
//!
//! The sequences produced for a given seed are part of this crate's
//! contract: `tests/integration_determinism.rs` pins simulation and
//! training output bit-for-bit, so any change to the generation scheme
//! is a breaking change.

use std::ops::{Range, RangeInclusive};

/// The workspace's default generator (drop-in for `rand::rngs::StdRng`
/// call sites, but with a stable, documented algorithm).
pub type StdRng = Xoshiro256PlusPlus;

/// A source of uniform pseudo-random numbers.
///
/// The provided combinators mirror the subset of `rand::Rng` this
/// workspace uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
/// plus slice helpers [`Rng::shuffle`] and [`Rng::choose`].
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        // 53 high bits / 2^53, the standard mantissa-filling construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly distributed value of `T` (unit interval for floats,
    /// full range for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in the given (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = sample_index(self, i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[sample_index(self, slice.len())])
        }
    }
}

/// Unbiased uniform index in `[0, n)` via bitmask rejection.
fn sample_index<R: Rng + ?Sized>(rng: &mut R, n: usize) -> usize {
    sample_u64(rng, n as u64) as usize
}

/// Unbiased uniform `u64` in `[0, n)`.
///
/// Bitmask + rejection: mask random words down to the next power of
/// two, retry the (at worst ~50 %) overshoots. Branch-free alternatives
/// exist but this is exact, simple and fast enough for training loops.
fn sample_u64<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    if n == 1 {
        return 0;
    }
    let mask = u64::MAX >> (n - 1).leading_zeros();
    loop {
        let v = rng.next_u64() & mask;
        if v < n {
            return v;
        }
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard {
    /// Draws one uniform value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.gen_f64()
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait UniformRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniform value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! uniform_int_range {
    ($($ty:ty),+) => {$(
        impl UniformRange for Range<$ty> {
            type Output = $ty;
            fn sample<R: Rng>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(sample_u64(rng, span) as $ty)
            }
        }
        impl UniformRange for RangeInclusive<$ty> {
            type Output = $ty;
            fn sample<R: Rng>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(sample_u64(rng, span as u64) as $ty)
            }
        }
    )+};
}

uniform_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float_range {
    ($($ty:ty),+) => {$(
        impl UniformRange for Range<$ty> {
            type Output = $ty;
            fn sample<R: Rng>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let u = <$ty as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl UniformRange for RangeInclusive<$ty> {
            type Output = $ty;
            fn sample<R: Rng>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let u = <$ty as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )+};
}

uniform_float_range!(f32, f64);

/// SplitMix64: one multiply-shift-xor round per output.
///
/// Used both as a standalone generator and to expand seeds for
/// [`Xoshiro256PlusPlus`] (its recommended seeding procedure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0: 256 bits of state, period 2^256 − 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator whose state is expanded from `seed` with
    /// [`SplitMix64`], per the xoshiro authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from_u64(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256PlusPlus { s }
    }
}

impl Rng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A generator backed by `rand::rngs::StdRng`, available with the `ext`
/// feature for cross-checking the in-tree generators against `rand`.
#[cfg(feature = "ext")]
#[derive(Debug, Clone)]
pub struct ExtStdRng(rand::rngs::StdRng);

#[cfg(feature = "ext")]
impl ExtStdRng {
    /// Creates a `rand`-backed generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        use rand::SeedableRng as _;
        ExtStdRng(rand::rngs::StdRng::seed_from_u64(seed))
    }
}

#[cfg(feature = "ext")]
impl Rng for ExtStdRng {
    fn next_u64(&mut self) -> u64 {
        rand::Rng::gen(&mut self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from the public SplitMix64 test vector
    /// (seed 1234567): the first three outputs.
    #[test]
    fn splitmix64_matches_reference_vector() {
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_in_unit_interval_and_not_constant() {
        let mut rng = StdRng::seed_from_u64(7);
        let vals: Vec<f64> = (0..1000).map(|_| rng.gen_f64()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_int_hits_all_values_without_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
        // Inclusive ranges reach their upper bound.
        assert!((0..=1u8).contains(&rng.gen_range(0..=1u8)));
    }

    #[test]
    fn gen_range_float_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5_f64..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle left the slice sorted");
    }

    #[test]
    fn choose_returns_none_only_for_empty() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert!(matches!(rng.choose(&[1, 2, 3]), Some(&(1..=3))));
    }

    #[test]
    fn gen_bool_probability_is_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }
}
