//! Bounded and unbounded MPSC channels replacing `crossbeam::channel`.
//!
//! The std backend maps [`bounded`] onto [`std::sync::mpsc::sync_channel`]
//! and [`unbounded`] onto [`std::sync::mpsc::channel`], unifying both
//! sender flavours behind one cloneable [`Sender`]. Error types are the
//! std ones re-exported, so call sites match on
//! [`TryRecvError::Empty`]/[`Disconnected`](TryRecvError::Disconnected)
//! exactly as they would with std channels.

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
use std::time::Duration;

/// Creates a channel with a bounded buffer; sends block while full.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    imp::bounded(capacity)
}

/// Creates a channel with an unbounded buffer; sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    imp::unbounded()
}

#[cfg(not(feature = "ext"))]
mod imp {
    use std::sync::mpsc;

    pub(super) fn bounded<T>(capacity: usize) -> (super::Sender<T>, super::Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (super::Sender(Flavor::Bounded(tx)), super::Receiver(rx))
    }

    pub(super) fn unbounded<T>() -> (super::Sender<T>, super::Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (super::Sender(Flavor::Unbounded(tx)), super::Receiver(rx))
    }

    #[derive(Debug)]
    pub(super) enum Flavor<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Flavor<T> {
        fn clone(&self) -> Self {
            match self {
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
            }
        }
    }

    pub(super) type Rx<T> = mpsc::Receiver<T>;
}

#[cfg(feature = "ext")]
mod imp {
    use crossbeam::channel;

    pub(super) fn bounded<T>(capacity: usize) -> (super::Sender<T>, super::Receiver<T>) {
        let (tx, rx) = channel::bounded(capacity);
        (super::Sender(tx), super::Receiver(rx))
    }

    pub(super) fn unbounded<T>() -> (super::Sender<T>, super::Receiver<T>) {
        let (tx, rx) = channel::unbounded();
        (super::Sender(tx), super::Receiver(rx))
    }

    pub(super) type Flavor<T> = channel::Sender<T>;
    pub(super) type Rx<T> = channel::Receiver<T>;
}

/// The sending half of a channel; cloneable across producer threads.
#[derive(Debug)]
pub struct Sender<T>(imp::Flavor<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Sends a value, blocking while a bounded buffer is full.
    ///
    /// # Errors
    ///
    /// Returns the value back if the receiver has disconnected.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        #[cfg(not(feature = "ext"))]
        match &self.0 {
            imp::Flavor::Bounded(tx) => tx.send(value),
            imp::Flavor::Unbounded(tx) => tx.send(value),
        }
        #[cfg(feature = "ext")]
        self.0.send(value).map_err(|e| SendError(e.into_inner()))
    }
}

/// The receiving half of a channel.
#[derive(Debug)]
pub struct Receiver<T>(imp::Rx<T>);

impl<T> Receiver<T> {
    /// Blocks until a value arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once all senders have disconnected and the
    /// buffer is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        #[cfg(not(feature = "ext"))]
        return self.0.recv();
        #[cfg(feature = "ext")]
        self.0.recv().map_err(|_| RecvError)
    }

    /// Returns a buffered value without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when no value is buffered,
    /// [`TryRecvError::Disconnected`] after all senders hung up.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        #[cfg(not(feature = "ext"))]
        return self.0.try_recv();
        #[cfg(feature = "ext")]
        self.0.try_recv().map_err(|e| match e {
            crossbeam::channel::TryRecvError::Empty => TryRecvError::Empty,
            crossbeam::channel::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Blocks until a value arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on expiry,
    /// [`RecvTimeoutError::Disconnected`] after all senders hung up.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        #[cfg(not(feature = "ext"))]
        return self.0.recv_timeout(timeout);
        #[cfg(feature = "ext")]
        self.0.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// An iterator draining values until all senders disconnect.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.recv().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_delivers_in_order_across_clones() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.iter().collect::<Vec<i32>>(), vec![1, 2]);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        // Second send would block; prove it completes once a consumer
        // drains the buffer from another thread.
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            handle.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
        });
    }

    #[test]
    fn try_recv_and_timeout_distinguish_empty_from_closed() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_to_disconnected_receiver_returns_value() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }
}
