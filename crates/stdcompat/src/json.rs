//! A minimal JSON value, parser and serializer replacing
//! `serde`/`serde_json` for the types this workspace persists.
//!
//! Numbers are kept in two variants — [`Json::Int`] for integer
//! literals and [`Json::Num`] for everything else — so `u64` seeds and
//! `f64` model weights both round-trip exactly. Floats are written with
//! Rust's shortest-round-trip `Display` formatting, which guarantees
//! `parse(write(x)) == x` bit-for-bit for every finite `f64`; the
//! non-finite values JSON cannot express are written as the strings
//! `"NaN"`, `"Infinity"` and `"-Infinity"` and mapped back on read.
//!
//! Types opt in by implementing [`ToJson`]/[`FromJson`], usually via
//! the [`json_struct!`](crate::json_struct) and
//! [`json_enum!`](crate::json_enum) macros.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without `.`, `e` or `E`, within `i64` range.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

/// A parse or decode failure (message only — inputs are always
/// machine-written documents a few kilobytes to megabytes long, so
/// offsets matter more for debugging than for users).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Member lookup on an object; `None` for other variants or missing
    /// keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts both number variants and the
    /// non-finite marker strings).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as an `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `u64` (large values fall back to decimal
    /// strings on write, accepted here).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Num(n) => write_f64(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input, trailing garbage or
    /// nesting deeper than 128 levels.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn write_f64(n: f64, out: &mut String) {
    if n.is_nan() {
        out.push_str("\"NaN\"");
    } else if n == f64::INFINITY {
        out.push_str("\"Infinity\"");
    } else if n == f64::NEG_INFINITY {
        out.push_str("\"-Infinity\"");
    } else {
        // `Display` for f64 prints the shortest decimal string that
        // parses back to the same bits.
        let s = n.to_string();
        out.push_str(&s);
        // Keep floats syntactically distinct from integers so whole
        // values like 2.0 re-parse as Num, not Int.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return err("nesting deeper than 128 levels");
        }
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        other => {
                            return err(format!("invalid escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str,
                    // so scanning to the next char boundary is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        // self.pos is on the 'u'.
        let hex4 = |p: &mut Self| -> Result<u32, JsonError> {
            p.pos += 1; // consume 'u'
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return err("truncated \\u escape");
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..end])
                .map_err(|_| JsonError("non-ascii \\u escape".into()))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| JsonError("bad \\u escape".into()))?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect a following \uXXXX low surrogate.
            if self.peek() != Some(b'\\') {
                return err("unpaired surrogate");
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return err("unpaired surrogate");
            }
            let lo = hex4(self)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return err("invalid low surrogate");
            }
            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(cp).ok_or_else(|| JsonError("invalid surrogate pair".into()))
        } else {
            char::from_u32(hi).ok_or_else(|| JsonError("invalid \\u escape".into()))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => err(format!("invalid number {text:?} at byte {start}")),
        }
    }
}

impl fmt::Display for Json {
    /// Serializes compactly (no insignificant whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Serialization into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Deserialization from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, rejecting missing fields and type
    /// mismatches.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the value does not encode `Self`.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string()
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed JSON or schema mismatch.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(input)?)
}

/// Looks up and decodes a struct field; a missing member decodes like
/// an explicit `null` (so `Option` fields tolerate absence).
///
/// # Errors
///
/// Returns [`JsonError`] naming the field on mismatch.
pub fn field<T: FromJson>(json: &Json, name: &str) -> Result<T, JsonError> {
    let value = json.get(name).unwrap_or(&Json::Null);
    T::from_json(value).map_err(|e| JsonError(format!("field {name:?}: {}", e.0)))
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(json.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_bool()
            .ok_or_else(|| JsonError("expected bool".into()))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError("expected string".into()))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_f64()
            .ok_or_else(|| JsonError("expected number".into()))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(f64::from_json(json)? as f32)
    }
}

macro_rules! json_signed {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Int(i64::from(*self))
            }
        }
        impl FromJson for $ty {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                json.as_i64()
                    .and_then(|i| <$ty>::try_from(i).ok())
                    .ok_or_else(|| JsonError(concat!("expected ", stringify!($ty)).into()))
            }
        }
    )+};
}

json_signed!(i8, i16, i32, i64, u8, u16, u32);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        match i64::try_from(*self) {
            Ok(i) => Json::Int(i),
            // Seeds beyond i64::MAX survive as decimal strings.
            Err(_) => Json::Str(self.to_string()),
        }
    }
}

impl FromJson for u64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_u64()
            .ok_or_else(|| JsonError("expected u64".into()))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        (*self as u64).to_json()
    }
}

impl FromJson for usize {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        u64::from_json(json)?
            .try_into()
            .map_err(|_| JsonError("usize out of range".into()))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_arr()
            .ok_or_else(|| JsonError("expected array".into()))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => err("expected two-element array"),
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Obj(members) => members
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            _ => err("expected object"),
        }
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with the listed
/// fields (all of which must themselves implement the traits). Must be
/// invoked where the struct's fields are visible.
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![$(
                    (
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    ),
                )+])
            }
        }

        impl $crate::json::FromJson for $ty {
            fn from_json(
                json: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok($ty {
                    $($field: $crate::json::field(json, stringify!($field))?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a field-less enum, encoding
/// each variant as its name string.
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                let name = match self {
                    $(Self::$variant => stringify!($variant),)+
                };
                $crate::json::Json::Str(name.to_string())
            }
        }

        impl $crate::json::FromJson for $ty {
            fn from_json(
                json: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                match json.as_str() {
                    $(Some(stringify!($variant)) => Ok(Self::$variant),)+
                    Some(other) => Err($crate::json::JsonError(format!(
                        concat!("unknown ", stringify!($ty), " variant {:?}"),
                        other
                    ))),
                    None => Err($crate::json::JsonError(
                        concat!("expected ", stringify!($ty), " variant string").into(),
                    )),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Num(2500.0));
        assert_eq!(Json::parse(r#""a\nbA""#).unwrap(), Json::Str("a\nbA".into()));
        assert_eq!(
            Json::parse("[1, [2], {}]").unwrap(),
            Json::Arr(vec![
                Json::Int(1),
                Json::Arr(vec![Json::Int(2)]),
                Json::Obj(vec![]),
            ])
        );
        let obj = Json::parse(r#"{"a": 1, "b": [true, null]}"#).unwrap();
        assert_eq!(obj.get("a"), Some(&Json::Int(1)));
        assert_eq!(obj.get("b"), Some(&Json::Arr(vec![Json::Bool(true), Json::Null])));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "tru",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01x",
            "\"unterminated",
            "[] []",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn f64_round_trips_bit_for_bit() {
        for &x in &[
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -1.234_567_890_123_456_7e-300,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let s = to_string(&x);
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let s = to_string(&2.0_f64);
        assert_eq!(s, "2.0");
        assert_eq!(Json::parse(&s).unwrap(), Json::Num(2.0));
    }

    #[test]
    fn u64_seeds_beyond_i64_survive() {
        let seed = u64::MAX - 5;
        let s = to_string(&seed);
        assert_eq!(from_str::<u64>(&s).unwrap(), seed);
    }

    #[test]
    fn unicode_strings_round_trip() {
        for s in [
            "héllo ∀x",
            "emoji \u{1F600}",
            "quote\"back\\slash",
            "\u{1}ctl",
        ] {
            let json = to_string(&s.to_string());
            assert_eq!(from_str::<String>(&json).unwrap(), s);
        }
        // Surrogate-pair escapes decode too.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("\u{1F600}".into()));
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        name: String,
        count: usize,
        ratio: f64,
        cap: Option<u32>,
    }

    json_struct!(Demo {
        name,
        count,
        ratio,
        cap
    });

    #[derive(Debug, PartialEq)]
    enum Mode {
        Fast,
        Exact,
    }

    json_enum!(Mode { Fast, Exact });

    #[test]
    fn struct_and_enum_macros_round_trip() {
        let demo = Demo {
            name: "svc".into(),
            count: 3,
            ratio: 0.4,
            cap: None,
        };
        let s = to_string(&demo);
        assert_eq!(from_str::<Demo>(&s).unwrap(), demo);
        assert_eq!(to_string(&Mode::Exact), "\"Exact\"");
        assert_eq!(from_str::<Mode>("\"Fast\"").unwrap(), Mode::Fast);
        assert!(from_str::<Mode>("\"Slow\"").is_err());
        // Missing non-Option field is an error that names the field.
        let e = from_str::<Demo>("{}").unwrap_err();
        assert!(e.0.contains("name"), "{e}");
    }

    #[test]
    fn option_fields_tolerate_absent_members() {
        let parsed: Demo = from_str(r#"{"name":"x","count":1,"ratio":1.5}"#).unwrap();
        assert_eq!(parsed.cap, None);
    }
}
