//! Application-level key performance indicators.

/// KPIs of one application for one second — the quantities the paper
/// uses for labeling (never as model input).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AppKpi {
    /// Offered load in requests/second.
    pub offered_rps: f64,
    /// Achieved end-to-end throughput in requests/second.
    pub throughput_rps: f64,
    /// Average end-to-end response time over the request fan-out,
    /// milliseconds.
    pub response_ms: f64,
    /// Requests/second dropped (timeouts / queue overflow) anywhere in
    /// the service chain.
    pub dropped_rps: f64,
}

impl AppKpi {
    /// Fraction of offered requests that failed; 0.0 at zero load.
    pub fn failure_fraction(&self) -> f64 {
        if self.offered_rps <= 0.0 {
            return 0.0;
        }
        (self.dropped_rps / self.offered_rps).clamp(0.0, 1.0)
    }

    /// Whether this second violates the paper's TeaStore SLO
    /// (Section 4.2.2): average response time above 750 ms, any dropped
    /// request, or more than 10% failures.
    pub fn violates_slo(&self, rt_limit_ms: f64) -> bool {
        self.response_ms > rt_limit_ms
            || self.dropped_rps > 0.0 && self.failure_fraction() > 0.10
            || self.dropped_rps > 0.5 && self.offered_rps > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_fraction_bounds() {
        let k = AppKpi {
            offered_rps: 100.0,
            throughput_rps: 80.0,
            response_ms: 50.0,
            dropped_rps: 20.0,
        };
        assert!((k.failure_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(AppKpi::default().failure_fraction(), 0.0);
    }

    #[test]
    fn slo_violation_cases() {
        let healthy = AppKpi {
            offered_rps: 100.0,
            throughput_rps: 100.0,
            response_ms: 100.0,
            dropped_rps: 0.0,
        };
        assert!(!healthy.violates_slo(750.0));
        let slow = AppKpi {
            response_ms: 900.0,
            ..healthy
        };
        assert!(slow.violates_slo(750.0));
        let dropping = AppKpi {
            dropped_rps: 5.0,
            ..healthy
        };
        assert!(dropping.violates_slo(750.0));
    }
}
