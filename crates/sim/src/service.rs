//! Per-request service demand profiles.

/// Resource demands of one service type, per request and at baseline.
///
/// The profile is the simulator's contract with reality: a service's
/// capacity on given resources is `limit / demand` per resource, and the
/// smallest one is the bottleneck. Profiles for the paper's services are
/// constructed in [`crate::apps`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceProfile {
    /// Service type name (e.g. `"solr"`, `"teastore-auth"`).
    pub name: String,
    /// CPU milliseconds consumed per request on a reference core.
    pub cpu_ms_per_req: f64,
    /// Multi-core scaling exponent in `(0, 1]`: CPU capacity grows as
    /// `cores^exponent` (1.0 = linear). Coordination-heavy services like
    /// Cassandra scale sublinearly, which is why the paper's 6-core
    /// containers sustain ~2.5 k req/s per core while the 48-core host
    /// sustains ~1 k req/s per core.
    pub cpu_scaling_exponent: f64,
    /// Baseline working set in GiB (index/dataset resident size).
    pub mem_base_gb: f64,
    /// Additional working set per request/second of load, in GiB —
    /// caches and session state growing with traffic.
    pub mem_per_rps_gb: f64,
    /// Disk bytes read per request when the working set fits in memory.
    pub disk_read_per_req: f64,
    /// Disk bytes written per request.
    pub disk_write_per_req: f64,
    /// Extra disk bytes read per request *per unit of cache-miss ratio* —
    /// what page thrashing costs when memory is constrained.
    pub disk_spill_per_req: f64,
    /// Network bytes in per request.
    pub net_in_per_req: f64,
    /// Network bytes out per request.
    pub net_out_per_req: f64,
    /// Service time at zero utilization, in milliseconds.
    pub base_latency_ms: f64,
    /// Open TCP connections per request/second of load.
    pub conns_per_rps: f64,
    /// Baseline process count.
    pub procs_base: f64,
    /// Threads per request/second of load.
    pub threads_per_rps: f64,
}

impl ServiceProfile {
    /// A small CPU-bound profile useful in tests.
    pub fn test_cpu_bound(name: &str, cpu_ms_per_req: f64) -> Self {
        ServiceProfile {
            name: name.to_string(),
            cpu_ms_per_req,
            cpu_scaling_exponent: 1.0,
            mem_base_gb: 0.5,
            mem_per_rps_gb: 0.0,
            disk_read_per_req: 1024.0,
            disk_write_per_req: 512.0,
            disk_spill_per_req: 0.0,
            net_in_per_req: 2048.0,
            net_out_per_req: 8192.0,
            base_latency_ms: 5.0,
            conns_per_rps: 0.5,
            procs_base: 10.0,
            threads_per_rps: 0.2,
        }
    }

    /// Effective CPU milliseconds per request when running on `cores`
    /// cores: coordination overhead inflates the per-request cost for
    /// sublinearly scaling services.
    pub fn effective_cpu_ms(&self, cores: f64) -> f64 {
        self.cpu_ms_per_req * cores.max(1e-9).powf(1.0 - self.cpu_scaling_exponent)
    }

    /// CPU capacity in requests/second given `cores` of CPU
    /// (`cores^exponent · 1000 / cpu_ms`).
    pub fn cpu_capacity_rps(&self, cores: f64) -> f64 {
        if self.cpu_ms_per_req <= 0.0 {
            return f64::INFINITY;
        }
        cores * 1000.0 / self.effective_cpu_ms(cores)
    }

    /// Working-set target in GiB at the given load.
    pub fn mem_target_gb(&self, rps: f64) -> f64 {
        self.mem_base_gb + self.mem_per_rps_gb * rps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_capacity_scales_with_cores() {
        let p = ServiceProfile::test_cpu_bound("svc", 10.0);
        assert_eq!(p.cpu_capacity_rps(1.0), 100.0);
        assert_eq!(p.cpu_capacity_rps(4.0), 400.0);
    }

    #[test]
    fn sublinear_scaling_reduces_large_core_counts() {
        let mut p = ServiceProfile::test_cpu_bound("svc", 10.0);
        p.cpu_scaling_exponent = 0.75;
        assert_eq!(p.cpu_capacity_rps(1.0), 100.0);
        let cap48 = p.cpu_capacity_rps(48.0);
        assert!(cap48 < 4800.0 * 0.5 && cap48 > 100.0, "cap48 = {cap48}");
        // Effective per-request cost grows with cores.
        assert!(p.effective_cpu_ms(48.0) > p.effective_cpu_ms(6.0));
    }

    #[test]
    fn zero_cpu_demand_is_unbounded() {
        let mut p = ServiceProfile::test_cpu_bound("svc", 10.0);
        p.cpu_ms_per_req = 0.0;
        assert!(p.cpu_capacity_rps(1.0).is_infinite());
    }

    #[test]
    fn mem_target_grows_with_load() {
        let mut p = ServiceProfile::test_cpu_bound("svc", 10.0);
        p.mem_per_rps_gb = 0.01;
        assert!((p.mem_target_gb(100.0) - 1.5).abs() < 1e-12);
    }
}
