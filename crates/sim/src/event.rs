//! Event-driven simulation driver.
//!
//! [`EventSim`] wraps a [`Cluster`] and replaces the dense
//! "recompute everything every second" loop with an event queue. The
//! only work between events is what the cluster genuinely needs:
//!
//! * **Load-profile change points** — each registered workload schedules
//!   its next [`LoadProfile::next_change`] and is left alone in between.
//!   Sparse profiles (constant, stepped, trace-driven) contribute a
//!   handful of events per episode instead of one per second.
//! * **Container state transitions** — while any container is still
//!   relaxing toward its fixed point the driver runs cheap state-only
//!   ticks; once the whole cluster reports [`Cluster::is_settled`] it
//!   fast-forwards to the next event without touching a single
//!   container.
//! * **Monitoring samples** — the periodic 1 Hz (configurable) sample
//!   boundary. Only these seconds produce full [`TickReport`]s, and the
//!   stream of reports is bit-identical to calling
//!   [`Cluster::step_dense_legacy`] every monitored second.
//! * **Autoscale actions** — scheduled scale-out/scale-in. These are
//!   cross-group events: applying one re-shards the node groups, so the
//!   per-shard queues are rebuilt at a barrier.
//!
//! Events are ordered by a deterministic `(time, seq)` key, where `seq`
//! is a globally increasing schedule counter — two runs with the same
//! seed and the same schedule pop events in exactly the same order, on
//! any worker count.
//!
//! Routing: load-change events for an application whose instances all
//! live in one node group are held in that shard's queue; everything
//! else (scale actions, unroutable changes) goes to the global queue.
//! Each tick pops the globally smallest key across all queues, so the
//! sharding is purely an ownership statement today — it keeps each
//! group's upcoming work physically separate so a cross-group barrier
//! only has to re-route the queues it invalidated.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use monitorless_obs as obs;
use monitorless_workload::LoadProfile;

use crate::engine::{AppId, Cluster, SimStats, TickReport};
use crate::error::ClusterError;
use monitorless_metrics::{InstanceId, NodeId};

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq)]
enum EventKind {
    /// Re-sample workload `idx` and reschedule its next change point.
    LoadChange { workload: usize },
    /// Start an extra instance of `(app, service)` on `node`.
    ScaleOut {
        app: AppId,
        service: String,
        node: NodeId,
    },
    /// Stop an instance. `allow_zero` permits removing the last
    /// instance of its service (scale-to-zero).
    ScaleIn {
        instance: InstanceId,
        allow_zero: bool,
    },
}

/// A queued event. Ordering is by `(time, seq)` only — `seq` is assigned
/// at schedule time from a global counter, making pop order fully
/// deterministic for a fixed schedule.
#[derive(Debug, Clone)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

type Queue = BinaryHeap<Reverse<Event>>;

/// Work counters for the event loop itself (the wrapped cluster keeps
/// its own [`SimStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Total events popped and applied.
    pub events: u64,
    /// Load change-point events applied.
    pub load_changes: u64,
    /// Scale-out/in events applied.
    pub scale_actions: u64,
    /// Monitoring samples produced (full report ticks).
    pub monitor_samples: u64,
    /// Scale-outs scheduled with a non-zero cold start.
    pub cold_starts: u64,
}

/// The result of a scheduled scale action, recorded when it fires.
#[derive(Debug, Clone, PartialEq)]
pub enum ScaleOutcome {
    /// A scale-out produced this instance.
    Added(InstanceId),
    /// A scale-in removed the instance (`true`) or was rejected because
    /// it targeted the last instance of its service (`false`).
    Removed(bool),
    /// A scale-out failed.
    Failed(ClusterError),
}

/// Event-driven simulation loop over a [`Cluster`].
#[derive(Debug)]
pub struct EventSim {
    cluster: Cluster,
    workloads: Vec<(AppId, Box<dyn LoadProfile>)>,
    /// Current offered load per app, in workload registration order —
    /// exactly the slice a dense driver would pass to `step` each second.
    loads: Vec<(AppId, f64)>,
    /// One queue per shard plus a global queue (index = shard count).
    shard_queues: Vec<Queue>,
    global_queue: Queue,
    seq: u64,
    monitor_every: u64,
    /// A load-change event fired since the cluster last consumed
    /// `loads` — fast-forwarding would skip the new load's dynamics.
    loads_dirty: bool,
    report: TickReport,
    stats: EventStats,
    /// `(time, outcome)` log of fired scale actions.
    scale_log: Vec<(u64, ScaleOutcome)>,
    /// Scheduled-but-not-yet-ready scale-outs: `(event seq, app)`. An
    /// entry is removed when its `ScaleOut` event fires, so the count
    /// per app is the capacity still cold-starting.
    pending: Vec<(u64, AppId)>,
}

impl EventSim {
    /// Wraps a cluster. Applications must already exist; register their
    /// workloads with [`EventSim::add_workload`].
    pub fn new(mut cluster: Cluster) -> Self {
        cluster.sync_topology();
        let shards = cluster.shard_count();
        EventSim {
            cluster,
            workloads: Vec::new(),
            loads: Vec::new(),
            shard_queues: (0..shards).map(|_| Queue::new()).collect(),
            global_queue: Queue::new(),
            seq: 0,
            monitor_every: 1,
            loads_dirty: false,
            report: TickReport::empty(),
            stats: EventStats::default(),
            scale_log: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Seconds between monitoring samples (default 1 — the paper's 1 Hz
    /// collection interval). Intermediate seconds run state-only or are
    /// skipped entirely when the cluster is settled.
    pub fn set_monitor_every(&mut self, seconds: u64) {
        self.monitor_every = seconds.max(1);
    }

    /// Worker threads for the parallel shard phase.
    pub fn set_n_jobs(&mut self, n_jobs: usize) {
        self.cluster.set_n_jobs(n_jobs);
    }

    /// Drives `app` with `profile`. The profile's first change point is
    /// scheduled immediately (at the current simulation time).
    pub fn add_workload(&mut self, app: AppId, profile: Box<dyn LoadProfile>) {
        let idx = self.workloads.len();
        self.workloads.push((app, profile));
        self.loads.push((app, 0.0));
        let now = self.cluster.time();
        self.push_event(now, EventKind::LoadChange { workload: idx });
    }

    /// Schedules a scale-out of `(app, service)` onto `node` at absolute
    /// simulation time `at`.
    pub fn schedule_scale_out(&mut self, at: u64, app: AppId, service: &str, node: NodeId) {
        self.schedule_scale_out_cold(at, 0, app, service, node);
    }

    /// Schedules a scale-out whose capacity only materializes after a
    /// cold start: the decision is taken at `at`, the instance joins the
    /// cluster at `at + cold_start`. In between it is counted by
    /// [`EventSim::pending_count`], so an autoscaler driving the sim can
    /// avoid re-requesting capacity it already asked for.
    pub fn schedule_scale_out_cold(
        &mut self,
        at: u64,
        cold_start: u64,
        app: AppId,
        service: &str,
        node: NodeId,
    ) {
        if cold_start > 0 {
            self.stats.cold_starts += 1;
        }
        let seq = self.push_event(
            at + cold_start,
            EventKind::ScaleOut {
                app,
                service: service.to_string(),
                node,
            },
        );
        self.pending.push((seq, app));
    }

    /// Schedules a scale-in of `instance` at absolute time `at`. The
    /// last instance of a service is kept (the action is rejected when
    /// it fires — see [`ScaleOutcome::Removed`]).
    pub fn schedule_scale_in(&mut self, at: u64, instance: InstanceId) {
        self.push_event(
            at,
            EventKind::ScaleIn {
                instance,
                allow_zero: false,
            },
        );
    }

    /// Schedules a scale-in that may remove the last instance of its
    /// service (serverless-style scale-to-zero). Offered load that then
    /// finds no capacity is the driver's to account — the cluster
    /// reports an empty service as serving nothing.
    pub fn schedule_scale_in_to_zero(&mut self, at: u64, instance: InstanceId) {
        self.push_event(
            at,
            EventKind::ScaleIn {
                instance,
                allow_zero: true,
            },
        );
    }

    /// Scale-outs scheduled for `app` (with or without cold start) whose
    /// events have not fired yet — capacity requested but not ready.
    pub fn pending_count(&self, app: AppId) -> usize {
        self.pending.iter().filter(|(_, a)| *a == app).count()
    }

    fn push_event(&mut self, time: u64, kind: EventKind) -> u64 {
        let ev = Event {
            time,
            seq: self.seq,
            kind,
        };
        self.seq += 1;
        let queue = match &ev.kind {
            EventKind::LoadChange { workload } => {
                let app = self.workloads[*workload].0;
                match self.cluster.shard_of_app(app) {
                    Some(s) if s < self.shard_queues.len() => &mut self.shard_queues[s],
                    _ => &mut self.global_queue,
                }
            }
            // Scale actions are cross-group by nature.
            _ => &mut self.global_queue,
        };
        let seq = ev.seq;
        queue.push(Reverse(ev));
        seq
    }

    /// Smallest `(time, seq)` key across every queue.
    fn peek_next(&self) -> Option<(u64, u64)> {
        let mut best: Option<(u64, u64)> = None;
        for q in self
            .shard_queues
            .iter()
            .chain(std::iter::once(&self.global_queue))
        {
            if let Some(Reverse(ev)) = q.peek() {
                let key = (ev.time, ev.seq);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best
    }

    fn pop_next(&mut self) -> Option<Event> {
        let key = self.peek_next()?;
        for q in self
            .shard_queues
            .iter_mut()
            .chain(std::iter::once(&mut self.global_queue))
        {
            if let Some(Reverse(ev)) = q.peek() {
                if (ev.time, ev.seq) == key {
                    return q.pop().map(|Reverse(ev)| ev);
                }
            }
        }
        None
    }

    /// Applies every event due at or before `now`, in global `(time,
    /// seq)` order. Cross-group (scale) events trigger the shard
    /// barrier: queues are drained, shards rebuilt, events re-routed.
    fn apply_due(&mut self, now: u64) {
        while let Some((t, _)) = self.peek_next() {
            if t > now {
                break;
            }
            let ev = self.pop_next().expect("peeked event exists");
            self.stats.events += 1;
            match ev.kind {
                EventKind::LoadChange { workload } => {
                    self.stats.load_changes += 1;
                    let (app, profile) = &self.workloads[workload];
                    debug_assert_eq!(self.loads[workload].0, *app);
                    let new = profile.intensity(now);
                    if new.to_bits() != self.loads[workload].1.to_bits() {
                        self.loads_dirty = true;
                    }
                    self.loads[workload].1 = new;
                    if let Some(next) = profile.next_change(now) {
                        debug_assert!(next > now, "change points must advance");
                        self.push_event(next, EventKind::LoadChange { workload });
                    }
                }
                EventKind::ScaleOut { app, service, node } => {
                    self.stats.scale_actions += 1;
                    obs::counter_add("sim.event_scale", 1);
                    self.pending.retain(|(seq, _)| *seq != ev.seq);
                    let outcome = match self.cluster.scale_out(app, &service, node) {
                        Ok(id) => ScaleOutcome::Added(id),
                        Err(e) => ScaleOutcome::Failed(e),
                    };
                    self.scale_log.push((now, outcome));
                    self.reshard();
                }
                EventKind::ScaleIn {
                    instance,
                    allow_zero,
                } => {
                    self.stats.scale_actions += 1;
                    obs::counter_add("sim.event_scale", 1);
                    let removed = if allow_zero {
                        self.cluster.scale_in_to_zero(instance)
                    } else {
                        self.cluster.scale_in(instance)
                    };
                    self.scale_log.push((now, ScaleOutcome::Removed(removed)));
                    self.reshard();
                }
            }
        }
    }

    /// The cross-group barrier: shard layout changed, so drain every
    /// shard queue and re-route against the fresh grouping.
    fn reshard(&mut self) {
        self.cluster.sync_topology();
        let mut pending: Vec<Event> = Vec::new();
        for q in &mut self.shard_queues {
            pending.extend(q.drain().map(|Reverse(ev)| ev));
        }
        self.shard_queues = (0..self.cluster.shard_count())
            .map(|_| Queue::new())
            .collect();
        for ev in pending {
            let queue = match &ev.kind {
                EventKind::LoadChange { workload } => {
                    let app = self.workloads[*workload].0;
                    match self.cluster.shard_of_app(app) {
                        Some(s) => &mut self.shard_queues[s],
                        None => &mut self.global_queue,
                    }
                }
                _ => &mut self.global_queue,
            };
            queue.push(Reverse(ev));
        }
    }

    /// Advances to the next monitoring sample and returns its report.
    ///
    /// All seconds in between are either state-only ticks (while some
    /// container is still converging) or skipped outright (settled
    /// cluster, no due event). The returned report stream is
    /// bit-identical to a dense per-second driver sampled at the same
    /// boundary.
    pub fn step(&mut self) -> &TickReport {
        loop {
            let t = self.cluster.time();
            self.apply_due(t);
            if t.is_multiple_of(self.monitor_every) {
                let loads = std::mem::take(&mut self.loads);
                self.cluster.step_into(&loads, &mut self.report);
                self.loads = loads;
                self.loads_dirty = false;
                self.stats.monitor_samples += 1;
                obs::counter_add("sim.event_monitor_samples", 1);
                return &self.report;
            }
            if !self.loads_dirty && self.cluster.is_settled() {
                // Nothing can change until the next event or the next
                // monitor boundary: skip straight there.
                let next_monitor = t.next_multiple_of(self.monitor_every);
                let horizon = match self.peek_next() {
                    Some((et, _)) => next_monitor.min(et.max(t + 1)),
                    None => next_monitor,
                };
                if horizon > t {
                    self.cluster.fast_forward(horizon - t);
                    continue;
                }
            }
            let loads = std::mem::take(&mut self.loads);
            self.cluster.tick_state_only(&loads);
            self.loads = loads;
            self.loads_dirty = false;
        }
    }

    /// Runs until simulation time reaches `until`, returning the number
    /// of monitoring samples produced.
    pub fn run_for(&mut self, until: u64) -> u64 {
        let mut samples = 0;
        while self.cluster.time() < until {
            self.step();
            samples += 1;
        }
        samples
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> u64 {
        self.cluster.time()
    }

    /// The current offered load per application (registration order).
    pub fn loads(&self) -> &[(AppId, f64)] {
        &self.loads
    }

    /// Event-loop counters.
    pub fn stats(&self) -> EventStats {
        self.stats
    }

    /// The wrapped cluster's work counters.
    pub fn cluster_stats(&self) -> SimStats {
        self.cluster.stats()
    }

    /// Outcomes of fired scale actions, in firing order.
    pub fn scale_log(&self) -> &[(u64, ScaleOutcome)] {
        &self.scale_log
    }

    /// The wrapped cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access to the wrapped cluster. Topology changes made
    /// directly are picked up at the next tick's barrier.
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Unwraps the cluster.
    pub fn into_cluster(self) -> Cluster {
        self.cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceRole;
    use crate::resources::{ContainerLimits, NodeSpec};
    use crate::service::ServiceProfile;
    use monitorless_workload::{ConstantProfile, SteppedProfile};

    fn build(seed: u64) -> (Cluster, AppId) {
        let mut cluster = Cluster::new(vec![NodeSpec::training_server()], seed);
        let app = cluster.add_app("app");
        cluster.add_service(
            app,
            ServiceRole {
                name: "web".into(),
                profile: ServiceProfile::test_cpu_bound("web", 10.0),
                fanout: 1.0,
                limits: ContainerLimits::cpu(2.0),
            },
            NodeId(0),
        );
        (cluster, app)
    }

    #[test]
    fn event_stream_matches_dense_driver_bitwise() {
        let (cluster, app) = build(42);
        let (mut dense, _) = build(42);
        let mut sim = EventSim::new(cluster);
        let profile = SteppedProfile::new(vec![50.0, 120.0, 80.0], 40);
        sim.add_workload(app, Box::new(profile.clone()));
        for t in 0..120u64 {
            use monitorless_workload::LoadProfile;
            let report = sim.step();
            let want = dense.step_dense_legacy(&[(app, profile.intensity(t))]);
            assert_eq!(report.time, want.time);
            for (f, d) in report.observations.iter().zip(&want.observations) {
                for (a, b) in f.host.iter().zip(&d.host) {
                    assert_eq!(a.to_bits(), b.to_bits(), "t={t}");
                }
            }
        }
        assert_eq!(sim.stats().monitor_samples, 120);
        // Three steps → exactly three load-change events fired.
        assert_eq!(sim.stats().load_changes, 3);
    }

    #[test]
    fn settled_constant_load_skips_state_ticks() {
        let (cluster, app) = build(7);
        let mut sim = EventSim::new(cluster);
        sim.set_monitor_every(60);
        sim.add_workload(app, Box::new(ConstantProfile::new(50.0, 100_000)));
        sim.run_for(10_000);
        let cs = sim.cluster_stats();
        // Convergence takes a few hundred state ticks; after that whole
        // 60 s windows are skipped without touching a container.
        assert!(cs.skipped_seconds > 8000, "{cs:?}");
        assert!(cs.state_ticks < 1000, "{cs:?}");
        assert_eq!(cs.ticks, sim.stats().monitor_samples);
    }

    #[test]
    fn scheduled_scale_actions_fire_in_order() {
        let (cluster, app) = build(9);
        let mut sim = EventSim::new(cluster);
        sim.add_workload(app, Box::new(ConstantProfile::new(200.0, 10_000)));
        sim.schedule_scale_out(10, app, "web", NodeId(0));
        sim.schedule_scale_out(10, app, "missing", NodeId(0));
        for _ in 0..20 {
            sim.step();
        }
        assert_eq!(sim.cluster().container_count(), 2);
        let log = sim.scale_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].0, 10);
        assert!(matches!(log[0].1, ScaleOutcome::Added(_)));
        assert!(matches!(log[1].1, ScaleOutcome::Failed(_)));
        let added = match log[0].1 {
            ScaleOutcome::Added(id) => id,
            _ => unreachable!(),
        };
        sim.schedule_scale_in(25, added);
        for _ in 0..10 {
            sim.step();
        }
        assert_eq!(sim.cluster().container_count(), 1);
        assert!(matches!(sim.scale_log()[2], (25, ScaleOutcome::Removed(true))));
    }

    #[test]
    fn cold_start_delays_capacity_and_tracks_pending() {
        let (cluster, app) = build(11);
        let mut sim = EventSim::new(cluster);
        sim.add_workload(app, Box::new(ConstantProfile::new(100.0, 10_000)));
        // Decision at t=5, 20 s cold start: capacity lands at t=25.
        sim.schedule_scale_out_cold(5, 20, app, "web", NodeId(0));
        while sim.time() < 20 {
            sim.step();
        }
        assert_eq!(sim.pending_count(app), 1, "still cold-starting");
        assert_eq!(sim.cluster().container_count(), 1);
        while sim.time() < 30 {
            sim.step();
        }
        assert_eq!(sim.pending_count(app), 0);
        assert_eq!(sim.cluster().container_count(), 2);
        assert_eq!(sim.stats().cold_starts, 1);
        assert!(matches!(sim.scale_log()[0], (25, ScaleOutcome::Added(_))));
    }

    #[test]
    fn scale_in_to_zero_empties_the_service() {
        let (cluster, app) = build(12);
        let first = cluster.app(app).instances()[0];
        let mut sim = EventSim::new(cluster);
        sim.add_workload(app, Box::new(ConstantProfile::new(50.0, 10_000)));
        sim.schedule_scale_in(10, first); // rejected: last instance
        sim.schedule_scale_in_to_zero(20, first); // allowed
        while sim.time() < 30 {
            sim.step();
        }
        assert_eq!(sim.cluster().container_count(), 0);
        let log = sim.scale_log();
        assert_eq!(log[0], (10, ScaleOutcome::Removed(false)));
        assert_eq!(log[1], (20, ScaleOutcome::Removed(true)));
        // The empty cluster still ticks and reports.
        let report = sim.step();
        assert!(report.containers.is_empty());
    }

    #[test]
    fn identical_schedules_pop_identically() {
        // Two sims with the same schedule produce the same event order
        // (the (time, seq) tie-break is deterministic).
        let mk = || {
            let (cluster, app) = build(3);
            let mut sim = EventSim::new(cluster);
            sim.add_workload(app, Box::new(SteppedProfile::new(vec![10.0, 20.0], 5)));
            sim.schedule_scale_out(5, app, "web", NodeId(0));
            sim.schedule_scale_out(5, app, "web", NodeId(0));
            for _ in 0..12 {
                sim.step();
            }
            (sim.stats(), sim.scale_log().to_vec(), sim.cluster().container_count())
        };
        let (s1, l1, c1) = mk();
        let (s2, l2, c2) = mk();
        assert_eq!(s1, s2);
        assert_eq!(l1, l2);
        assert_eq!(c1, c2);
    }
}
