//! Calibrated service profiles and application topologies for every
//! system the paper uses.
//!
//! Training services (Section 3.2.1): Apache Solr (CPU-bound enterprise
//! search with a 12 GiB in-memory index), Memcache (memory-bound object
//! cache over a 10 GiB Twitter dataset) and Apache Cassandra (NoSQL store
//! over ~30 GiB; CPU- or disk-bound depending on the YCSB class and
//! container limits).
//!
//! Evaluation applications (Section 4): the Elgg three-tier web stack,
//! TeaStore (7 microservices) and Sockshop (14 microservices), placed on
//! machines M1–M3 exactly as listed in Section 4.2.1.
//!
//! Calibration targets the *shape* of the paper's results: knee positions
//! sit inside each training configuration's traffic range, and the
//! evaluation apps saturate only at large load peaks (TeaStore's
//! saturated fraction is ~3%).

use monitorless_metrics::{InstanceId, NodeId};
use monitorless_workload::YcsbClass;

use crate::engine::{AppId, Cluster, ServiceRole};
use crate::resources::ContainerLimits;
use crate::service::ServiceProfile;

const KB: f64 = 1024.0;
const MB: f64 = 1024.0 * 1024.0;

/// Apache Solr: CPU-bound full-text search. On the 48-core training
/// server the knee sits near 700 req/s (Figure 2).
pub fn solr_profile() -> ServiceProfile {
    ServiceProfile {
        name: "solr".into(),
        cpu_ms_per_req: 65.0,
        cpu_scaling_exponent: 1.0,
        mem_base_gb: 12.0,
        mem_per_rps_gb: 0.0005,
        disk_read_per_req: 2.0 * KB,
        disk_write_per_req: 0.5 * KB,
        disk_spill_per_req: 1.5 * MB,
        net_in_per_req: 0.8 * KB,
        net_out_per_req: 24.0 * KB,
        base_latency_ms: 9.0,
        conns_per_rps: 0.4,
        procs_base: 40.0,
        threads_per_rps: 0.15,
    }
}

/// Memcache: memory-bound object cache; ~50 k req/s per core, heavy
/// disk spill when the 10 GiB dataset exceeds the memory limit.
pub fn memcache_profile() -> ServiceProfile {
    ServiceProfile {
        name: "memcache".into(),
        cpu_ms_per_req: 0.02,
        cpu_scaling_exponent: 1.0,
        mem_base_gb: 10.0,
        mem_per_rps_gb: 0.0,
        disk_read_per_req: 0.0,
        disk_write_per_req: 0.0,
        disk_spill_per_req: 64.0 * KB,
        net_in_per_req: 0.2 * KB,
        net_out_per_req: 1.2 * KB,
        base_latency_ms: 0.4,
        conns_per_rps: 0.01,
        procs_base: 6.0,
        threads_per_rps: 0.001,
    }
}

/// Apache Cassandra under a YCSB workload class. Unlimited containers
/// are network- (A, D) or host-CPU-bound (B); the 20-core/30 GiB
/// configuration is disk-bound; 6-core containers are container-CPU
/// bound (Table 1).
pub fn cassandra_profile(class: YcsbClass) -> ServiceProfile {
    let net_weight = match class {
        YcsbClass::A => 2.2,
        YcsbClass::B => 0.7,
        YcsbClass::D => 2.0,
        YcsbClass::F => 1.5,
    };
    ServiceProfile {
        name: format!("cassandra-{class}"),
        // ~3.65 k req/s on one core, scaling as cores^0.75: a 6-core
        // container sustains ~14 k req/s and the 48-core host ~66 k,
        // matching the paper's traffic ranges for both.
        cpu_ms_per_req: 0.274 * class.cpu_weight(),
        cpu_scaling_exponent: 0.75,
        mem_base_gb: 34.0,
        mem_per_rps_gb: 0.0,
        // With the dataset cached, in-memory reads barely touch disk;
        // the 20-core/30 GiB configurations become disk-bound through the
        // spill term once the working set exceeds the memory limit.
        disk_read_per_req: 3.0 * KB * class.disk_weight() * class.read_fraction(),
        disk_write_per_req: 5.0 * KB * class.disk_weight() * class.write_fraction(),
        disk_spill_per_req: 4.0 * MB,
        net_in_per_req: 5.0 * KB * net_weight,
        net_out_per_req: 10.0 * KB * net_weight,
        base_latency_ms: 2.5,
        conns_per_rps: 0.02,
        procs_base: 60.0,
        threads_per_rps: 0.01,
    }
}

/// Elgg front-end web server (three-tier evaluation, Section 4.1):
/// CPU-bound with 1 core, knee near 75 req/s.
pub fn elgg_web_profile() -> ServiceProfile {
    ServiceProfile {
        name: "elgg-web".into(),
        cpu_ms_per_req: 13.0,
        cpu_scaling_exponent: 1.0,
        mem_base_gb: 0.8,
        mem_per_rps_gb: 0.002,
        disk_read_per_req: 1.0 * KB,
        disk_write_per_req: 1.0 * KB,
        disk_spill_per_req: 0.0,
        net_in_per_req: 1.5 * KB,
        net_out_per_req: 40.0 * KB,
        base_latency_ms: 12.0,
        conns_per_rps: 0.8,
        procs_base: 20.0,
        threads_per_rps: 0.3,
    }
}

/// InnoDB database tier of the Elgg stack.
pub fn elgg_db_profile() -> ServiceProfile {
    ServiceProfile {
        name: "elgg-innodb".into(),
        cpu_ms_per_req: 2.0,
        cpu_scaling_exponent: 1.0,
        mem_base_gb: 2.0,
        mem_per_rps_gb: 0.001,
        disk_read_per_req: 8.0 * KB,
        disk_write_per_req: 6.0 * KB,
        disk_spill_per_req: 200.0 * KB,
        net_in_per_req: 1.0 * KB,
        net_out_per_req: 4.0 * KB,
        base_latency_ms: 3.0,
        conns_per_rps: 0.2,
        procs_base: 30.0,
        threads_per_rps: 0.1,
    }
}

/// Memcache tier of the Elgg stack (smaller than the training
/// configuration).
pub fn elgg_memcache_profile() -> ServiceProfile {
    let mut p = memcache_profile();
    p.name = "elgg-memcache".into();
    p.mem_base_gb = 2.0;
    p
}

/// Builds the three-tier Elgg application on one node: web front-end
/// (1 core / 4 GiB as in Section 4.1.1), database and cache tiers.
pub fn build_elgg(cluster: &mut Cluster, node: NodeId) -> AppId {
    let app = cluster.add_app("elgg");
    cluster.add_service(
        app,
        ServiceRole {
            name: "web".into(),
            profile: elgg_web_profile(),
            fanout: 1.0,
            limits: ContainerLimits::cpu_and_memory(1.0, 4.0),
        },
        node,
    );
    cluster.add_service(
        app,
        ServiceRole {
            name: "innodb".into(),
            profile: elgg_db_profile(),
            fanout: 0.6,
            limits: ContainerLimits::memory(8.0),
        },
        node,
    );
    cluster.add_service(
        app,
        ServiceRole {
            name: "memcache".into(),
            profile: elgg_memcache_profile(),
            fanout: 1.4,
            limits: ContainerLimits::memory(4.0),
        },
        node,
    );
    app
}

fn micro(name: &str, cpu_ms: f64, mem_gb: f64, net_out_kb: f64, disk_kb: f64) -> ServiceProfile {
    ServiceProfile {
        name: name.into(),
        cpu_ms_per_req: cpu_ms,
        cpu_scaling_exponent: 1.0,
        mem_base_gb: mem_gb,
        mem_per_rps_gb: 0.0005,
        disk_read_per_req: disk_kb * KB * 0.6,
        disk_write_per_req: disk_kb * KB * 0.4,
        disk_spill_per_req: 100.0 * KB,
        net_in_per_req: 1.0 * KB,
        net_out_per_req: net_out_kb * KB,
        base_latency_ms: 2.0 + cpu_ms,
        conns_per_rps: 0.3,
        procs_base: 12.0,
        threads_per_rps: 0.1,
    }
}

/// Builds TeaStore's seven services (Section 4.2.1) with the paper's
/// placement: Recommender/Auth/Registry on M1, DB/Persistence on M2,
/// Web-UI/Image-Provider on M3. All containers get 4 GiB; Auth and the
/// database get 2 cores, everything else 1 core.
///
/// `m1`/`m2`/`m3` are the node ids standing in for the three machines.
pub fn build_teastore(cluster: &mut Cluster, m1: NodeId, m2: NodeId, m3: NodeId) -> AppId {
    let app = cluster.add_app("teastore");
    let services: [(&str, ServiceProfile, f64, f64, NodeId); 7] = [
        ("webui", micro("teastore-webui", 1.45, 1.0, 35.0, 0.5), 1.0, 1.0, m3),
        ("imageprovider", micro("teastore-image", 1.2, 1.5, 60.0, 2.0), 0.8, 1.0, m3),
        ("auth", micro("teastore-auth", 6.0, 0.6, 2.0, 0.1), 0.6, 2.0, m1),
        ("recommender", micro("teastore-recommender", 6.5, 1.2, 3.0, 0.2), 0.3, 1.0, m1),
        ("persistence", micro("teastore-persistence", 1.2, 1.0, 5.0, 8.0), 0.7, 1.0, m2),
        ("registry", micro("teastore-registry", 0.5, 0.3, 1.0, 0.0), 0.1, 1.0, m1),
        ("db", micro("teastore-db", 1.0, 2.0, 6.0, 20.0), 0.7, 2.0, m2),
    ];
    for (name, profile, fanout, cores, node) in services {
        cluster.add_service(
            app,
            ServiceRole {
                name: name.into(),
                profile,
                fanout,
                limits: ContainerLimits::cpu_and_memory(cores, 4.0),
            },
            node,
        );
    }
    app
}

/// Builds Sockshop's fourteen services (Section 4.2.1) with the paper's
/// placement across M1–M3. DB-suffixed services get 2 cores, the rest 1.
pub fn build_sockshop(cluster: &mut Cluster, m1: NodeId, m2: NodeId, m3: NodeId) -> AppId {
    let app = cluster.add_app("sockshop");
    let services: [(&str, f64, f64, NodeId); 14] = [
        // (name, cpu_ms, fanout, node) — db services get cpu below.
        ("edge-router", 0.8, 1.0, m2),
        ("front-end", 2.4, 1.0, m1),
        ("catalogue", 2.3, 0.8, m1),
        ("catalogue-db", 1.0, 0.5, m1),
        ("carts", 3.3, 0.6, m2),
        ("carts-db", 1.2, 0.4, m2),
        ("user", 3.9, 0.5, m3),
        ("user-db", 1.0, 0.3, m3),
        ("orders", 9.0, 0.2, m2),
        ("orders-db", 1.5, 0.15, m2),
        ("payment", 1.0, 0.2, m2),
        ("shipping", 1.2, 0.2, m3),
        ("queue", 0.5, 0.2, m1),
        ("queue-master", 0.8, 0.1, m2),
    ];
    for (name, cpu_ms, fanout, node) in services {
        let is_db = name.ends_with("-db");
        let profile = micro(
            &format!("sockshop-{name}"),
            cpu_ms,
            if is_db { 1.5 } else { 0.5 },
            if name == "front-end" { 30.0 } else { 4.0 },
            if is_db { 10.0 } else { 0.3 },
        );
        cluster.add_service(
            app,
            ServiceRole {
                name: name.into(),
                profile,
                fanout,
                limits: ContainerLimits::cpu_and_memory(if is_db { 2.0 } else { 1.0 }, 4.0),
            },
            node,
        );
    }
    app
}

/// Builds a single-service application (the training configurations of
/// Table 1 are all single containers). Returns the app and instance ids.
pub fn build_single(
    cluster: &mut Cluster,
    profile: ServiceProfile,
    limits: ContainerLimits,
    node: NodeId,
) -> (AppId, InstanceId) {
    let name = profile.name.clone();
    let app = cluster.add_app(&name);
    let inst = cluster.add_service(
        app,
        ServiceRole {
            name,
            profile,
            fanout: 1.0,
            limits,
        },
        node,
    );
    (app, inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::Bottleneck;
    use crate::resources::NodeSpec;

    fn training_cluster() -> Cluster {
        Cluster::new(vec![NodeSpec::training_server()], 11)
    }

    #[test]
    fn solr_unlimited_saturates_near_700() {
        let mut cluster = training_cluster();
        let (app, inst) =
            build_single(&mut cluster, solr_profile(), ContainerLimits::unlimited(), NodeId(0));
        // Below the knee: healthy.
        let low = cluster.step(&[(app, 400.0)]);
        assert_eq!(low.container(inst).unwrap().bottleneck, Bottleneck::None);
        assert!((low.kpi(app).unwrap().throughput_rps - 400.0).abs() < 2.0);
        // Above the knee: host-CPU bound.
        let mut high = None;
        for _ in 0..5 {
            high = Some(cluster.step(&[(app, 1000.0)]));
        }
        let high = high.unwrap();
        assert!(high.kpi(app).unwrap().throughput_rps < 800.0);
        assert_eq!(high.container(inst).unwrap().bottleneck, Bottleneck::HostCpu);
    }

    #[test]
    fn solr_with_cpu_limit_is_container_bound() {
        let mut cluster = training_cluster();
        let (app, inst) =
            build_single(&mut cluster, solr_profile(), ContainerLimits::cpu(3.0), NodeId(0));
        // 3 cores / 65 ms = ~46 req/s capacity.
        let mut last = None;
        for _ in 0..5 {
            last = Some(cluster.step(&[(app, 200.0)]));
        }
        let tick = last.unwrap();
        assert_eq!(tick.container(inst).unwrap().bottleneck, Bottleneck::ContainerCpu);
        assert!(tick.kpi(app).unwrap().throughput_rps < 60.0);
    }

    #[test]
    fn memcache_one_core_saturates_around_50k() {
        let mut cluster = training_cluster();
        let (app, inst) =
            build_single(&mut cluster, memcache_profile(), ContainerLimits::cpu(1.0), NodeId(0));
        let ok = cluster.step(&[(app, 30_000.0)]);
        assert_eq!(ok.container(inst).unwrap().bottleneck, Bottleneck::None);
        let mut sat = None;
        for _ in 0..5 {
            sat = Some(cluster.step(&[(app, 85_000.0)]));
        }
        let sat = sat.unwrap();
        assert_eq!(sat.container(inst).unwrap().bottleneck, Bottleneck::ContainerCpu);
        let tp = sat.kpi(app).unwrap().throughput_rps;
        assert!(tp > 35_000.0 && tp < 60_000.0, "tp = {tp}");
    }

    #[test]
    fn memory_limited_memcache_is_io_bound() {
        let mut cluster = training_cluster();
        let (app, inst) =
            build_single(&mut cluster, memcache_profile(), ContainerLimits::memory(4.0), NodeId(0));
        let mut last = None;
        for _ in 0..8 {
            last = Some(cluster.step(&[(app, 45_000.0)]));
        }
        let tick = last.unwrap();
        let b = tick.container(inst).unwrap().bottleneck;
        assert!(matches!(b, Bottleneck::IoQueue | Bottleneck::MemBandwidth), "bottleneck = {b}");
    }

    #[test]
    fn cassandra_class_bottlenecks_match_table1() {
        // Class A unlimited: network-bound (Table 1 row 11).
        let mut cluster = training_cluster();
        let (app, inst) = build_single(
            &mut cluster,
            cassandra_profile(YcsbClass::A),
            ContainerLimits::unlimited(),
            NodeId(0),
        );
        let mut last = None;
        for _ in 0..5 {
            last = Some(cluster.step(&[(app, 100_000.0)]));
        }
        assert_eq!(last.unwrap().container(inst).unwrap().bottleneck, Bottleneck::Network);

        // Class B unlimited: host-CPU bound (row 12).
        let mut cluster = training_cluster();
        let (app, inst) = build_single(
            &mut cluster,
            cassandra_profile(YcsbClass::B),
            ContainerLimits::unlimited(),
            NodeId(0),
        );
        let mut last = None;
        for _ in 0..5 {
            last = Some(cluster.step(&[(app, 70_000.0)]));
        }
        assert_eq!(last.unwrap().container(inst).unwrap().bottleneck, Bottleneck::HostCpu);

        // 20 cores / 30 GiB: disk-bound (rows 14-17).
        let mut cluster = training_cluster();
        let (app, inst) = build_single(
            &mut cluster,
            cassandra_profile(YcsbClass::B),
            ContainerLimits::cpu_and_memory(20.0, 30.0),
            NodeId(0),
        );
        let mut last = None;
        for _ in 0..8 {
            last = Some(cluster.step(&[(app, 1000.0)]));
        }
        let b = last.unwrap().container(inst).unwrap().bottleneck;
        assert!(
            matches!(b, Bottleneck::IoQueue | Bottleneck::IoBandwidth | Bottleneck::MemBandwidth),
            "bottleneck = {b}"
        );

        // 6 cores, unlimited memory: container-CPU bound (rows 18-23).
        let mut cluster = training_cluster();
        let (app, inst) = build_single(
            &mut cluster,
            cassandra_profile(YcsbClass::B),
            ContainerLimits::cpu(6.0),
            NodeId(0),
        );
        let mut last = None;
        for _ in 0..5 {
            last = Some(cluster.step(&[(app, 15_000.0)]));
        }
        assert_eq!(last.unwrap().container(inst).unwrap().bottleneck, Bottleneck::ContainerCpu);
    }

    #[test]
    fn elgg_saturates_in_front_end_around_75_rps() {
        let mut cluster = Cluster::new(vec![NodeSpec::training_server()], 5);
        let app = build_elgg(&mut cluster, NodeId(0));
        let ok = cluster.step(&[(app, 40.0)]);
        assert!(ok.kpi(app).unwrap().response_ms < 200.0);
        let mut sat = None;
        for _ in 0..6 {
            sat = Some(cluster.step(&[(app, 110.0)]));
        }
        let sat = sat.unwrap();
        let kpi = sat.kpi(app).unwrap();
        assert!(kpi.throughput_rps < 95.0, "tp = {}", kpi.throughput_rps);
        // The saturated instance is the web tier.
        let web = cluster.app(app).instances_of("web")[0];
        assert_ne!(sat.container(web).unwrap().bottleneck, Bottleneck::None);
    }

    #[test]
    fn teastore_handles_moderate_load_and_saturates_at_peaks() {
        let mut cluster = Cluster::new(vec![NodeSpec::m1(), NodeSpec::m2(), NodeSpec::m3()], 6);
        let app = build_teastore(&mut cluster, NodeId(0), NodeId(1), NodeId(2));
        assert_eq!(cluster.app(app).service_names().len(), 7);
        let ok = cluster.step(&[(app, 250.0)]);
        assert!(ok.kpi(app).unwrap().response_ms < 400.0);
        assert!((ok.kpi(app).unwrap().throughput_rps - 250.0).abs() < 3.0);
        let mut sat = None;
        for _ in 0..6 {
            sat = Some(cluster.step(&[(app, 650.0)]));
        }
        let kpi = *sat.as_ref().unwrap().kpi(app).unwrap();
        assert!(kpi.dropped_rps > 0.0 || kpi.response_ms > 750.0);
    }

    #[test]
    fn sockshop_builds_fourteen_services() {
        let mut cluster = Cluster::new(vec![NodeSpec::m1(), NodeSpec::m2(), NodeSpec::m3()], 8);
        let app = build_sockshop(&mut cluster, NodeId(0), NodeId(1), NodeId(2));
        assert_eq!(cluster.app(app).service_names().len(), 14);
        assert_eq!(cluster.container_count(), 14);
        let ok = cluster.step(&[(app, 200.0)]);
        assert!(ok.kpi(app).unwrap().response_ms < 400.0);
    }

    #[test]
    fn teastore_and_sockshop_colocate_without_instant_collapse() {
        let mut cluster = Cluster::new(vec![NodeSpec::m1(), NodeSpec::m2(), NodeSpec::m3()], 9);
        let tea = build_teastore(&mut cluster, NodeId(0), NodeId(1), NodeId(2));
        let sock = build_sockshop(&mut cluster, NodeId(0), NodeId(1), NodeId(2));
        let report = cluster.step(&[(tea, 150.0), (sock, 100.0)]);
        assert!(report.kpi(tea).unwrap().response_ms < 500.0);
        assert!(report.kpi(sock).unwrap().response_ms < 500.0);
        assert_eq!(cluster.container_count(), 21);
    }
}
