//! Node hardware specifications and container resource limits.

/// Hardware of one cloud node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Number of physical cores.
    pub cores: f64,
    /// Memory in GiB.
    pub memory_gb: f64,
    /// Network capacity in Gbit/s.
    pub net_gbps: f64,
    /// Aggregate disk bandwidth in MiB/s.
    pub disk_mbps: f64,
    /// Maximum disk IOPS.
    pub disk_iops: f64,
}

impl NodeSpec {
    /// The paper's training machine: HP ProLiant DL380 Gen9, 48-core
    /// Xeon E5-2680 v3, 125 GiB RAM, 10 Gb network (Section 3.2.2).
    pub fn training_server() -> Self {
        NodeSpec {
            cores: 48.0,
            memory_gb: 125.0,
            net_gbps: 10.0,
            disk_mbps: 400.0,
            disk_iops: 20_000.0,
        }
    }

    /// Evaluation machine M1: 10-core E5-2650 v3, 32 GiB, 1 Gb LAN
    /// (Section 4.2.1).
    pub fn m1() -> Self {
        NodeSpec {
            cores: 10.0,
            memory_gb: 32.0,
            net_gbps: 1.0,
            disk_mbps: 250.0,
            disk_iops: 12_000.0,
        }
    }

    /// Evaluation machine M2: 12-core E5-2650 v4, 32 GiB, 1 Gb LAN.
    pub fn m2() -> Self {
        NodeSpec {
            cores: 12.0,
            memory_gb: 32.0,
            net_gbps: 1.0,
            disk_mbps: 250.0,
            disk_iops: 12_000.0,
        }
    }

    /// Evaluation machine M3: 8-core E5-2640 v3, 32 GiB, 1 Gb LAN.
    pub fn m3() -> Self {
        NodeSpec {
            cores: 8.0,
            memory_gb: 32.0,
            net_gbps: 1.0,
            disk_mbps: 250.0,
            disk_iops: 12_000.0,
        }
    }

    /// Network capacity in bytes per second.
    pub fn net_bytes_per_sec(&self) -> f64 {
        self.net_gbps * 1e9 / 8.0
    }

    /// Disk bandwidth in bytes per second.
    pub fn disk_bytes_per_sec(&self) -> f64 {
        self.disk_mbps * 1024.0 * 1024.0
    }
}

/// cgroup-style resource limits of one container
/// (a dash "–" in the paper's Table 1 means no limit).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ContainerLimits {
    /// CPU limit in cores (`None` = host-limited).
    pub cpu_cores: Option<f64>,
    /// Memory limit in GiB (`None` = host-limited).
    pub memory_gb: Option<f64>,
}

impl ContainerLimits {
    /// No limits (the "–/–" rows of Table 1).
    pub fn unlimited() -> Self {
        ContainerLimits::default()
    }

    /// CPU-only limit.
    pub fn cpu(cores: f64) -> Self {
        ContainerLimits {
            cpu_cores: Some(cores),
            memory_gb: None,
        }
    }

    /// Memory-only limit.
    pub fn memory(gb: f64) -> Self {
        ContainerLimits {
            cpu_cores: None,
            memory_gb: Some(gb),
        }
    }

    /// Both limits.
    pub fn cpu_and_memory(cores: f64, gb: f64) -> Self {
        ContainerLimits {
            cpu_cores: Some(cores),
            memory_gb: Some(gb),
        }
    }

    /// Effective CPU ceiling given the host's core count.
    pub fn effective_cpu(&self, node: &NodeSpec) -> f64 {
        self.cpu_cores.unwrap_or(node.cores).min(node.cores)
    }

    /// Effective memory ceiling (GiB) given the host.
    pub fn effective_memory(&self, node: &NodeSpec) -> f64 {
        self.memory_gb.unwrap_or(node.memory_gb).min(node.memory_gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machines_match_section_4() {
        assert_eq!(NodeSpec::training_server().cores, 48.0);
        assert_eq!(NodeSpec::m1().cores, 10.0);
        assert_eq!(NodeSpec::m2().cores, 12.0);
        assert_eq!(NodeSpec::m3().cores, 8.0);
        assert_eq!(NodeSpec::m1().net_gbps, 1.0);
        assert_eq!(NodeSpec::training_server().net_gbps, 10.0);
    }

    #[test]
    fn unit_conversions() {
        let n = NodeSpec::training_server();
        assert!((n.net_bytes_per_sec() - 1.25e9).abs() < 1.0);
        assert!((n.disk_bytes_per_sec() - 400.0 * 1048576.0).abs() < 1.0);
    }

    #[test]
    fn effective_limits_respect_host() {
        let node = NodeSpec::m3(); // 8 cores, 32 GiB
        assert_eq!(ContainerLimits::unlimited().effective_cpu(&node), 8.0);
        assert_eq!(ContainerLimits::cpu(3.0).effective_cpu(&node), 3.0);
        assert_eq!(ContainerLimits::cpu(20.0).effective_cpu(&node), 8.0);
        assert_eq!(ContainerLimits::memory(8.0).effective_memory(&node), 8.0);
        assert_eq!(ContainerLimits::unlimited().effective_memory(&node), 32.0);
    }
}
