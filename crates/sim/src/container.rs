//! Per-container resource and queueing model.

use monitorless_metrics::signals::ContainerSignals;
use monitorless_metrics::InstanceId;

use crate::resources::{ContainerLimits, NodeSpec};
use crate::service::ServiceProfile;

/// The resource class limiting a container's throughput — the
/// vocabulary of Table 1's *Bottleneck* column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bottleneck {
    /// Not saturated.
    None,
    /// cgroup CPU limit reached (CFS throttling).
    ContainerCpu,
    /// Host CPU exhausted by co-located load.
    HostCpu,
    /// Disk bandwidth exhausted.
    IoBandwidth,
    /// Disk queue built up by cache misses (memory-constrained).
    IoQueue,
    /// Blocked on synchronous writes (low-rate, write-heavy).
    IoWait,
    /// Network link saturated.
    Network,
    /// Memory bandwidth / working-set churn.
    MemBandwidth,
}

impl Bottleneck {
    /// Number of variants, for fixed-size per-bottleneck tally arrays.
    pub const COUNT: usize = 8;

    /// Every variant in declaration order: `ALL[b.index()] == b`.
    pub const ALL: [Bottleneck; Bottleneck::COUNT] = [
        Bottleneck::None,
        Bottleneck::ContainerCpu,
        Bottleneck::HostCpu,
        Bottleneck::IoBandwidth,
        Bottleneck::IoQueue,
        Bottleneck::IoWait,
        Bottleneck::Network,
        Bottleneck::MemBandwidth,
    ];

    /// Dense discriminant index into a `[_; Bottleneck::COUNT]` array.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Bottleneck::None => 0,
            Bottleneck::ContainerCpu => 1,
            Bottleneck::HostCpu => 2,
            Bottleneck::IoBandwidth => 3,
            Bottleneck::IoQueue => 4,
            Bottleneck::IoWait => 5,
            Bottleneck::Network => 6,
            Bottleneck::MemBandwidth => 7,
        }
    }
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Bottleneck::None => "-",
            Bottleneck::ContainerCpu => "Container-CPU",
            Bottleneck::HostCpu => "Host-CPU",
            Bottleneck::IoBandwidth => "IO-Bandwidth",
            Bottleneck::IoQueue => "IO-Queue",
            Bottleneck::IoWait => "IO-Wait",
            Bottleneck::Network => "Network-Util.",
            Bottleneck::MemBandwidth => "Mem-Bandwidth",
        };
        f.write_str(s)
    }
}

/// Raw resource demands of one container at one tick, before contention.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Demands {
    /// CPU cores needed to serve the offered load.
    pub cpu_cores: f64,
    /// Disk read bytes/s (including cache-miss spill).
    pub disk_read_bps: f64,
    /// Disk write bytes/s.
    pub disk_write_bps: f64,
    /// Network in bytes/s.
    pub net_in_bps: f64,
    /// Network out bytes/s.
    pub net_out_bps: f64,
}

/// Result of evaluating one container for one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerTick {
    /// Requests/second actually served.
    pub achieved_rps: f64,
    /// Requests/second dropped (queue overflow / 3 s timeout).
    pub dropped_rps: f64,
    /// Average response time of served requests, milliseconds.
    pub response_ms: f64,
    /// Limiting resource this tick.
    pub bottleneck: Bottleneck,
    /// Utilization of the binding resource (0..1).
    pub utilization: f64,
    /// Signals for the monitoring agent.
    pub signals: ContainerSignals,
}

/// Mutable per-container state that persists across ticks.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerState {
    /// Backlog of queued requests.
    pub queue: f64,
    /// Current resident working set in GiB (approaches the target).
    pub mem_usage_gb: f64,
}

/// A running container: a service profile plus limits plus state.
#[derive(Debug, Clone, PartialEq)]
pub struct Container {
    id: InstanceId,
    profile: ServiceProfile,
    limits: ContainerLimits,
    state: ContainerState,
}

/// Requests time out after three seconds (the paper's load generators
/// drop requests that take longer).
pub const TIMEOUT_MS: f64 = 3000.0;

impl Container {
    /// Creates a container for `profile` with the given limits.
    pub fn new(id: InstanceId, profile: ServiceProfile, limits: ContainerLimits) -> Self {
        let mem0 = profile.mem_base_gb * 0.5;
        Container {
            id,
            profile,
            limits,
            state: ContainerState {
                queue: 0.0,
                mem_usage_gb: mem0,
            },
        }
    }

    /// The container's instance id.
    pub fn id(&self) -> InstanceId {
        self.id
    }

    /// The service profile.
    pub fn profile(&self) -> &ServiceProfile {
        &self.profile
    }

    /// The resource limits.
    pub fn limits(&self) -> &ContainerLimits {
        &self.limits
    }

    /// Current persistent state.
    pub fn state(&self) -> &ContainerState {
        &self.state
    }

    /// Bitwise fingerprint of the persistent state.
    ///
    /// The engine's fixed-point cache relies on [`Container::evaluate`]
    /// being a pure function of `(spec, offered, shares, state)`: a
    /// container whose state fingerprint is unchanged by an evaluation
    /// will reproduce the exact same tick for as long as its inputs stay
    /// bit-identical, so the engine can skip re-evaluating it.
    pub(crate) fn state_bits(&self) -> (u64, u64) {
        (self.state.queue.to_bits(), self.state.mem_usage_gb.to_bits())
    }

    /// Cache-miss ratio implied by the current memory pressure.
    fn miss_ratio(&self, node: &NodeSpec, rps: f64) -> f64 {
        let target = self.profile.mem_target_gb(rps);
        let avail = self.limits.effective_memory(node);
        if target <= avail || target <= 0.0 {
            0.0
        } else {
            ((target - avail) / target).clamp(0.0, 0.95)
        }
    }

    /// Pass 1: resource demands for the offered load (including queued
    /// backlog), before any contention is applied.
    pub fn demands(&self, node: &NodeSpec, offered_rps: f64) -> Demands {
        let work = offered_rps + self.state.queue;
        let miss = self.miss_ratio(node, offered_rps);
        let cpu_limit = self.limits.effective_cpu(node);
        Demands {
            cpu_cores: work * self.profile.effective_cpu_ms(cpu_limit) / 1000.0,
            disk_read_bps: work
                * (self.profile.disk_read_per_req + miss * self.profile.disk_spill_per_req),
            disk_write_bps: work * self.profile.disk_write_per_req,
            net_in_bps: work * self.profile.net_in_per_req,
            net_out_bps: work * self.profile.net_out_per_req,
        }
    }

    /// Pass 2: evaluates the tick given the contention factors computed
    /// by the node (`1.0` = uncontended, `<1` = scaled back).
    ///
    /// `host_cpu_share` is the fraction of this container's CPU demand the
    /// host can actually supply after co-location contention; `disk_share`
    /// and `net_share` likewise for disk bandwidth and the network link.
    pub fn evaluate(
        &mut self,
        node: &NodeSpec,
        offered_rps: f64,
        host_cpu_share: f64,
        disk_share: f64,
        net_share: f64,
    ) -> ContainerTick {
        let profile = &self.profile;
        let work = offered_rps + self.state.queue;
        let miss = self.miss_ratio(node, offered_rps);

        // --- capacities per resource ---
        let cpu_limit = self.limits.effective_cpu(node);
        let eff_cpu_ms = profile.effective_cpu_ms(cpu_limit);
        let cpu_needed = work * eff_cpu_ms / 1000.0;
        let cpu_granted = cpu_needed.min(cpu_limit) * host_cpu_share;
        let cap_cpu = if profile.cpu_ms_per_req > 0.0 {
            cpu_limit * host_cpu_share * 1000.0 / eff_cpu_ms
        } else {
            f64::INFINITY
        };

        let disk_per_req = profile.disk_read_per_req
            + profile.disk_write_per_req
            + miss * profile.disk_spill_per_req;
        let cap_disk = if disk_per_req > 0.0 {
            node.disk_bytes_per_sec() * disk_share / disk_per_req
        } else {
            f64::INFINITY
        };

        let net_per_req = profile.net_in_per_req + profile.net_out_per_req;
        let cap_net = if net_per_req > 0.0 {
            node.net_bytes_per_sec() * net_share / net_per_req
        } else {
            f64::INFINITY
        };

        // Memory-bandwidth ceiling: when the working set churns (high
        // miss ratio on a memory-bound service), effective capacity drops
        // even before disk saturates.
        let cap_mem = if miss > 0.0 && profile.disk_spill_per_req > 0.0 {
            cap_disk * (1.0 - 0.3 * miss)
        } else {
            f64::INFINITY
        };

        let capacity = cap_cpu.min(cap_disk).min(cap_net).min(cap_mem).max(1e-9);

        // --- serve work, update queue, drop timeouts ---
        let achieved = work.min(capacity);
        let leftover = (work - achieved).max(0.0);
        // Backlog beyond TIMEOUT_MS worth of capacity is dropped.
        let queue_cap = capacity * (TIMEOUT_MS / 1000.0);
        let queue = leftover.min(queue_cap);
        let dropped = leftover - queue;
        self.state.queue = queue;

        // --- response time ---
        let rho = (work / capacity).min(0.995);
        let queue_wait_ms = if capacity > 0.0 {
            1000.0 * queue / capacity
        } else {
            0.0
        };
        let base = profile.base_latency_ms * (1.0 + 2.0 * miss);
        let response_ms = (base / (1.0 - rho) + queue_wait_ms).min(TIMEOUT_MS);

        // --- memory state relaxes toward the target ---
        let target = profile
            .mem_target_gb(offered_rps)
            .min(self.limits.effective_memory(node));
        self.state.mem_usage_gb += 0.2 * (target - self.state.mem_usage_gb);

        // --- bottleneck attribution ---
        let utilization = rho;
        let saturated = rho > 0.9 || dropped > 0.0;
        let bottleneck = if !saturated {
            Bottleneck::None
        } else if capacity == cap_cpu {
            if self.limits.cpu_cores.is_some() && host_cpu_share >= 0.999 {
                Bottleneck::ContainerCpu
            } else {
                Bottleneck::HostCpu
            }
        } else if capacity == cap_net {
            Bottleneck::Network
        } else if capacity == cap_mem {
            Bottleneck::MemBandwidth
        } else if miss > 0.05 {
            Bottleneck::IoQueue
        } else if profile.disk_write_per_req > profile.disk_read_per_req && achieved < 500.0 {
            Bottleneck::IoWait
        } else {
            Bottleneck::IoBandwidth
        };

        // --- signals for the agent ---
        let cpu_used = cpu_granted.min(cpu_limit);
        let throttled = if self.limits.cpu_cores.is_some() && cpu_needed > cpu_limit {
            10.0 * ((cpu_needed - cpu_limit) / cpu_needed).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mem_limit = self.limits.effective_memory(node);
        let usage_bytes = self.state.mem_usage_gb * 1024.0 * 1024.0 * 1024.0;
        let cache_frac =
            (profile.mem_base_gb / profile.mem_target_gb(offered_rps).max(1e-9)).clamp(0.0, 1.0);
        let signals = ContainerSignals {
            cpu_util: (cpu_used / cpu_limit.max(1e-9)).clamp(0.0, 1.0),
            cpu_usage_cores: cpu_used,
            throttled_rate: throttled,
            periods_rate: 10.0,
            mem_util: (self.state.mem_usage_gb / mem_limit.max(1e-9)).clamp(0.0, 1.0),
            mem_usage_bytes: usage_bytes,
            mem_cache_bytes: usage_bytes * cache_frac * 0.6,
            mem_mapped_bytes: usage_bytes * 0.15,
            mem_active_file: usage_bytes * cache_frac * 0.35,
            mem_inactive_file: usage_bytes * cache_frac * 0.25,
            mem_inactive_anon: usage_bytes * (1.0 - cache_frac) * 0.3,
            kernel_stack: (profile.procs_base + profile.threads_per_rps * achieved) * 16_384.0,
            pgfault_rate: achieved * (5.0 + 200.0 * miss),
            net_in_bytes: achieved * profile.net_in_per_req,
            net_out_bytes: achieved * profile.net_out_per_req,
            tcp_conns: profile.conns_per_rps * offered_rps + 2.0,
            disk_read_bytes: achieved
                * (profile.disk_read_per_req + miss * profile.disk_spill_per_req),
            disk_write_bytes: achieved * profile.disk_write_per_req,
            disk_queue: if cap_disk.is_finite() {
                (work / cap_disk).powi(2).min(64.0)
            } else {
                0.0
            },
            nprocs: profile.procs_base,
            nthreads: profile.procs_base * 4.0 + profile.threads_per_rps * work,
        };

        ContainerTick {
            achieved_rps: achieved,
            dropped_rps: dropped,
            response_ms,
            bottleneck,
            utilization,
            signals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeSpec {
        NodeSpec::training_server()
    }

    fn cpu_container(limit_cores: Option<f64>) -> Container {
        let limits = match limit_cores {
            Some(c) => ContainerLimits::cpu(c),
            None => ContainerLimits::unlimited(),
        };
        // 10 ms/request: 100 rps per core.
        Container::new(InstanceId(0), ServiceProfile::test_cpu_bound("svc", 10.0), limits)
    }

    #[test]
    fn low_load_is_unsaturated_and_fast() {
        let mut c = cpu_container(Some(1.0));
        let tick = c.evaluate(&node(), 10.0, 1.0, 1.0, 1.0);
        assert_eq!(tick.bottleneck, Bottleneck::None);
        assert!((tick.achieved_rps - 10.0).abs() < 1e-9);
        assert_eq!(tick.dropped_rps, 0.0);
        assert!(tick.response_ms < 10.0);
    }

    #[test]
    fn cpu_limit_caps_throughput() {
        let mut c = cpu_container(Some(1.0)); // capacity 100 rps
        let tick = c.evaluate(&node(), 200.0, 1.0, 1.0, 1.0);
        assert!((tick.achieved_rps - 100.0).abs() < 1.0);
        assert_eq!(tick.bottleneck, Bottleneck::ContainerCpu);
        assert!(tick.signals.cpu_util > 0.99);
        assert!(tick.signals.throttled_rate > 0.0);
    }

    #[test]
    fn response_time_grows_with_utilization() {
        let mut c = cpu_container(Some(1.0));
        let r_low = c.evaluate(&node(), 10.0, 1.0, 1.0, 1.0).response_ms;
        let mut c = cpu_container(Some(1.0));
        let r_high = c.evaluate(&node(), 95.0, 1.0, 1.0, 1.0).response_ms;
        assert!(r_high > 3.0 * r_low, "{r_low} -> {r_high}");
    }

    #[test]
    fn sustained_overload_fills_queue_then_drops() {
        let mut c = cpu_container(Some(1.0));
        let mut dropped = 0.0;
        for _ in 0..10 {
            dropped += c.evaluate(&node(), 200.0, 1.0, 1.0, 1.0).dropped_rps;
        }
        assert!(c.state().queue > 0.0);
        assert!(dropped > 0.0, "overload must eventually drop requests");
        let tick = c.evaluate(&node(), 200.0, 1.0, 1.0, 1.0);
        assert_eq!(tick.response_ms, TIMEOUT_MS);
    }

    #[test]
    fn queue_drains_after_load_drops() {
        let mut c = cpu_container(Some(1.0));
        for _ in 0..5 {
            c.evaluate(&node(), 150.0, 1.0, 1.0, 1.0);
        }
        assert!(c.state().queue > 0.0);
        for _ in 0..10 {
            c.evaluate(&node(), 10.0, 1.0, 1.0, 1.0);
        }
        assert!(c.state().queue < 1.0);
    }

    #[test]
    fn host_contention_shrinks_capacity() {
        let mut c = cpu_container(Some(2.0)); // 200 rps uncontended
        let tick = c.evaluate(&node(), 150.0, 0.5, 1.0, 1.0);
        assert!((tick.achieved_rps - 100.0).abs() < 1.0);
        assert_eq!(tick.bottleneck, Bottleneck::HostCpu);
    }

    #[test]
    fn memory_pressure_spills_to_disk() {
        let mut profile = ServiceProfile::test_cpu_bound("memc", 0.05);
        profile.mem_base_gb = 10.0;
        profile.disk_spill_per_req = 64.0 * 1024.0;
        profile.disk_read_per_req = 0.0;
        profile.disk_write_per_req = 0.0;
        let mut limited =
            Container::new(InstanceId(1), profile.clone(), ContainerLimits::memory(4.0));
        let mut unlimited = Container::new(InstanceId(2), profile, ContainerLimits::unlimited());
        let t_lim = limited.evaluate(&node(), 5000.0, 1.0, 1.0, 1.0);
        let t_unl = unlimited.evaluate(&node(), 5000.0, 1.0, 1.0, 1.0);
        assert!(t_lim.signals.disk_read_bytes > 1e6);
        assert!(t_unl.signals.disk_read_bytes < 1.0);
        assert!(t_lim.signals.pgfault_rate > t_unl.signals.pgfault_rate);
        assert!(t_lim.response_ms > t_unl.response_ms);
    }

    #[test]
    fn memory_saturation_reports_io_class_bottleneck() {
        let mut profile = ServiceProfile::test_cpu_bound("memc", 0.05);
        profile.mem_base_gb = 10.0;
        profile.disk_spill_per_req = 512.0 * 1024.0;
        profile.disk_read_per_req = 0.0;
        profile.disk_write_per_req = 0.0;
        let mut c = Container::new(InstanceId(1), profile, ContainerLimits::memory(4.0));
        // Push hard enough that the spill path saturates the disk.
        let mut last = None;
        for _ in 0..5 {
            last = Some(c.evaluate(&node(), 50_000.0, 1.0, 1.0, 1.0));
        }
        let tick = last.unwrap();
        assert!(matches!(tick.bottleneck, Bottleneck::IoQueue | Bottleneck::MemBandwidth));
    }

    #[test]
    fn network_bound_service_saturates_link() {
        let mut profile = ServiceProfile::test_cpu_bound("net", 0.01);
        profile.net_out_per_req = 200_000.0; // 200 KB responses
        let mut c = Container::new(InstanceId(3), profile, ContainerLimits::unlimited());
        // 10 Gb/s = 1.25 GB/s => ~6250 rps ceiling.
        let tick = c.evaluate(&node(), 20_000.0, 1.0, 1.0, 1.0);
        assert_eq!(tick.bottleneck, Bottleneck::Network);
        assert!(tick.achieved_rps < 7000.0);
    }

    #[test]
    fn mem_usage_relaxes_toward_target() {
        let mut c = cpu_container(None);
        let initial = c.state().mem_usage_gb;
        for _ in 0..30 {
            c.evaluate(&node(), 10.0, 1.0, 1.0, 1.0);
        }
        let settled = c.state().mem_usage_gb;
        assert!((settled - 0.5).abs() < 0.05, "settled at {settled}");
        assert!(initial < settled);
    }

    #[test]
    fn bottleneck_display_matches_table1_vocabulary() {
        assert_eq!(Bottleneck::ContainerCpu.to_string(), "Container-CPU");
        assert_eq!(Bottleneck::IoBandwidth.to_string(), "IO-Bandwidth");
        assert_eq!(Bottleneck::Network.to_string(), "Network-Util.");
    }
}
