//! The cluster simulation engine.

use std::collections::HashMap;
use std::sync::Arc;

use monitorless_metrics::catalog::Catalog;
use monitorless_metrics::signals::HostSignals;
use monitorless_metrics::{InstanceId, MonitoringAgent, NodeId, Observation};
use monitorless_obs as obs;

use crate::container::{Container, ContainerTick};
use crate::error::ClusterError;
use crate::kpi::AppKpi;
use crate::resources::{ContainerLimits, NodeSpec};
use crate::service::ServiceProfile;

/// Identifier of an application in a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u32);

/// Definition of one service within an application.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRole {
    /// Service name, unique within the application.
    pub name: String,
    /// Resource demand profile.
    pub profile: ServiceProfile,
    /// Average visits to this service per end-to-end request.
    pub fanout: f64,
    /// Resource limits applied to each instance of this service.
    pub limits: ContainerLimits,
}

#[derive(Debug)]
struct ServiceEntry {
    role: ServiceRole,
    instances: Vec<InstanceId>,
}

/// One application: a set of services, each with ≥1 instances.
#[derive(Debug)]
pub struct Application {
    name: String,
    services: Vec<ServiceEntry>,
}

impl Application {
    /// The application's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Names of the application's services.
    pub fn service_names(&self) -> Vec<&str> {
        self.services.iter().map(|s| s.role.name.as_str()).collect()
    }

    /// All instance ids across all services.
    pub fn instances(&self) -> Vec<InstanceId> {
        self.services
            .iter()
            .flat_map(|s| s.instances.iter().copied())
            .collect()
    }

    /// Instances of one service.
    pub fn instances_of(&self, service: &str) -> Vec<InstanceId> {
        self.services
            .iter()
            .filter(|s| s.role.name == service)
            .flat_map(|s| s.instances.iter().copied())
            .collect()
    }
}

/// Per-tick output of [`Cluster::step`].
#[derive(Debug)]
pub struct TickReport {
    /// Tick timestamp (seconds since start).
    pub time: u64,
    /// One processed observation per node (agent output).
    pub observations: Vec<Observation>,
    /// Application KPIs.
    pub kpis: Vec<(AppId, AppKpi)>,
    /// Per-container evaluation details (bottlenecks, drops, …).
    pub containers: Vec<(InstanceId, ContainerTick)>,
}

impl TickReport {
    /// KPI of one application.
    pub fn kpi(&self, app: AppId) -> Option<&AppKpi> {
        self.kpis.iter().find(|(a, _)| *a == app).map(|(_, k)| k)
    }

    /// Container tick details of one instance.
    pub fn container(&self, id: InstanceId) -> Option<&ContainerTick> {
        self.containers
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, t)| t)
    }
}

/// A simulated cloud: nodes with monitoring agents, containers, and
/// applications.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<(NodeId, NodeSpec, MonitoringAgent)>,
    containers: HashMap<InstanceId, (NodeId, Container)>,
    apps: Vec<Application>,
    catalog: Arc<Catalog>,
    next_instance: u32,
    time: u64,
}

impl Cluster {
    /// Creates a cluster with the given nodes; `seed` drives all
    /// measurement noise.
    pub fn new(specs: Vec<NodeSpec>, seed: u64) -> Self {
        let catalog = Arc::new(Catalog::standard());
        let nodes = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let id = NodeId(i as u32);
                (id, spec, MonitoringAgent::new(id, Arc::clone(&catalog), seed ^ (i as u64) << 32))
            })
            .collect();
        Cluster {
            nodes,
            containers: HashMap::new(),
            apps: Vec::new(),
            catalog,
            next_instance: 0,
            time: 0,
        }
    }

    /// The shared metric catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Node ids in the cluster.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|(id, _, _)| *id).collect()
    }

    /// Registers a new application.
    pub fn add_app(&mut self, name: &str) -> AppId {
        self.apps.push(Application {
            name: name.to_string(),
            services: Vec::new(),
        });
        AppId(self.apps.len() as u32 - 1)
    }

    /// The application with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn app(&self, id: AppId) -> &Application {
        &self.apps[id.0 as usize]
    }

    /// Adds a service to an application and starts its first instance on
    /// `node`. Returns the instance id.
    ///
    /// # Panics
    ///
    /// Panics if `app` or `node` is unknown.
    pub fn add_service(&mut self, app: AppId, role: ServiceRole, node: NodeId) -> InstanceId {
        assert!(self.nodes.iter().any(|(id, _, _)| *id == node), "unknown node {node}");
        let entry = ServiceEntry {
            role,
            instances: Vec::new(),
        };
        self.apps[app.0 as usize].services.push(entry);
        let svc_idx = self.apps[app.0 as usize].services.len() - 1;
        self.spawn_instance(app, svc_idx, node)
    }

    /// Starts an additional instance (scale-out) of `service` on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`], [`ClusterError::UnknownApp`]
    /// or [`ClusterError::UnknownService`] when the target does not exist;
    /// the cluster is left unchanged.
    pub fn scale_out(
        &mut self,
        app: AppId,
        service: &str,
        node: NodeId,
    ) -> Result<InstanceId, ClusterError> {
        if !self.nodes.iter().any(|(id, _, _)| *id == node) {
            return Err(ClusterError::UnknownNode(node));
        }
        let services = &self
            .apps
            .get(app.0 as usize)
            .ok_or(ClusterError::UnknownApp(app))?
            .services;
        let svc_idx = services
            .iter()
            .position(|s| s.role.name == service)
            .ok_or_else(|| ClusterError::UnknownService {
                app,
                service: service.to_string(),
                known: services.iter().map(|s| s.role.name.clone()).collect(),
            })?;
        obs::counter_add("sim.scale_out", 1);
        Ok(self.spawn_instance(app, svc_idx, node))
    }

    fn spawn_instance(&mut self, app: AppId, svc_idx: usize, node: NodeId) -> InstanceId {
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        let role = &self.apps[app.0 as usize].services[svc_idx].role;
        let container = Container::new(id, role.profile.clone(), role.limits);
        self.containers.insert(id, (node, container));
        self.apps[app.0 as usize].services[svc_idx]
            .instances
            .push(id);
        id
    }

    /// Stops an instance (scale-in). Keeps at least one instance per
    /// service: removing the last instance is rejected.
    ///
    /// Returns `true` if the instance was removed.
    pub fn scale_in(&mut self, id: InstanceId) -> bool {
        for app in &mut self.apps {
            for svc in &mut app.services {
                if let Some(pos) = svc.instances.iter().position(|&i| i == id) {
                    if svc.instances.len() <= 1 {
                        return false;
                    }
                    svc.instances.remove(pos);
                    self.containers.remove(&id);
                    obs::counter_add("sim.scale_in", 1);
                    return true;
                }
            }
        }
        false
    }

    /// Which node an instance runs on.
    pub fn node_of(&self, id: InstanceId) -> Option<NodeId> {
        self.containers.get(&id).map(|(n, _)| *n)
    }

    /// Which `(application, service-name)` an instance belongs to.
    pub fn owner_of(&self, id: InstanceId) -> Option<(AppId, &str)> {
        for (ai, app) in self.apps.iter().enumerate() {
            for svc in &app.services {
                if svc.instances.contains(&id) {
                    return Some((AppId(ai as u32), svc.role.name.as_str()));
                }
            }
        }
        None
    }

    /// Number of running containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Advances the simulation by one second with the given offered load
    /// per application (applications not listed get zero load).
    ///
    /// # Panics
    ///
    /// Panics if a load entry references an unknown application.
    pub fn step(&mut self, loads: &[(AppId, f64)]) -> TickReport {
        let _tick_span = obs::Span::enter("sim.tick");
        obs::counter_add("sim.ticks", 1);
        obs::gauge_set("sim.containers", self.containers.len() as f64);
        let t = self.time;

        // Offered load per instance.
        let mut offered: HashMap<InstanceId, f64> = HashMap::new();
        for &(app_id, load) in loads {
            let app = &self.apps[app_id.0 as usize];
            for svc in &app.services {
                if svc.instances.is_empty() {
                    continue;
                }
                let per_instance = load * svc.role.fanout / svc.instances.len() as f64;
                for &inst in &svc.instances {
                    *offered.entry(inst).or_insert(0.0) += per_instance;
                }
            }
        }

        // Pass 1: demands, aggregated per node.
        #[derive(Default, Clone, Copy)]
        struct NodeDemand {
            cpu: f64,
            disk: f64,
            net: f64,
        }
        let mut node_demand: HashMap<NodeId, NodeDemand> = HashMap::new();
        for (id, (node_id, container)) in &self.containers {
            let spec = self.spec_of(*node_id);
            let load = offered.get(id).copied().unwrap_or(0.0);
            let d = container.demands(&spec, load);
            let nd = node_demand.entry(*node_id).or_default();
            // Demand the host actually sees is capped by the cgroup limit.
            nd.cpu += d.cpu_cores.min(container.limits().effective_cpu(&spec));
            nd.disk += d.disk_read_bps + d.disk_write_bps;
            nd.net += d.net_in_bps + d.net_out_bps;
        }

        // Contention factors per node.
        let mut factors: HashMap<NodeId, (f64, f64, f64)> = HashMap::new();
        for (node_id, spec, _) in &self.nodes {
            let d = node_demand.get(node_id).copied().unwrap_or_default();
            let cpu_share = if d.cpu > spec.cores {
                spec.cores / d.cpu
            } else {
                1.0
            };
            let disk_share = if d.disk > spec.disk_bytes_per_sec() {
                spec.disk_bytes_per_sec() / d.disk
            } else {
                1.0
            };
            let net_share = if d.net > spec.net_bytes_per_sec() {
                spec.net_bytes_per_sec() / d.net
            } else {
                1.0
            };
            factors.insert(*node_id, (cpu_share, disk_share, net_share));
        }

        // Pass 2: evaluate containers.
        let mut ticks: Vec<(InstanceId, ContainerTick)> = Vec::new();
        let mut ids: Vec<InstanceId> = self.containers.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let (node_id, container) = self.containers.get_mut(&id).expect("id from keys");
            let spec = match self.nodes.iter().find(|(n, _, _)| n == node_id) {
                Some((_, s, _)) => *s,
                None => continue,
            };
            let (cpu_s, disk_s, net_s) = factors[node_id];
            let load = offered.get(&id).copied().unwrap_or(0.0);
            let tick = container.evaluate(&spec, load, cpu_s, disk_s, net_s);
            ticks.push((id, tick));
        }

        // KPIs per application.
        let mut kpis = Vec::new();
        for &(app_id, load) in loads {
            let app = &self.apps[app_id.0 as usize];
            let mut success = 1.0_f64;
            let mut rt = 0.0;
            for svc in &app.services {
                if svc.instances.is_empty() {
                    continue;
                }
                let mut svc_offered = 0.0;
                let mut svc_achieved = 0.0;
                let mut svc_rt = 0.0;
                for &inst in &svc.instances {
                    if let Some((_, tick)) = ticks.iter().find(|(i, _)| *i == inst) {
                        svc_offered += offered.get(&inst).copied().unwrap_or(0.0);
                        svc_achieved += tick.achieved_rps;
                        svc_rt += tick.response_ms;
                    }
                }
                let svc_rt_avg = svc_rt / svc.instances.len() as f64;
                // Other applications may share these instances' offered
                // load; attribute proportionally.
                let frac = if svc_offered > 0.0 {
                    (svc_achieved / svc_offered).min(1.0)
                } else {
                    1.0
                };
                success *= frac;
                rt += svc.role.fanout * svc_rt_avg;
            }
            let throughput = load * success;
            kpis.push((
                app_id,
                AppKpi {
                    offered_rps: load,
                    throughput_rps: throughput,
                    response_ms: rt,
                    dropped_rps: load - throughput,
                },
            ));
        }

        // Host signals and agent collection per node.
        let mut observations = Vec::new();
        for (node_id, spec, agent) in &self.nodes {
            let mut cpu_used = 0.0;
            let mut disk_read = 0.0;
            let mut disk_write = 0.0;
            let mut net_in = 0.0;
            let mut net_out = 0.0;
            let mut conns = 0.0;
            let mut procs = 0.0;
            let mut queue = 0.0;
            let mut pgfault = 0.0;
            let mut mem_used = 6.0; // GiB of host OS overhead
            let mut ctr_signals = Vec::new();
            for (id, tick) in &ticks {
                if self.containers.get(id).map(|(n, _)| *n) != Some(*node_id) {
                    continue;
                }
                let s = &tick.signals;
                cpu_used += s.cpu_usage_cores;
                disk_read += s.disk_read_bytes;
                disk_write += s.disk_write_bytes;
                net_in += s.net_in_bytes;
                net_out += s.net_out_bytes;
                conns += s.tcp_conns;
                procs += s.nprocs;
                queue += s.disk_queue;
                pgfault += s.pgfault_rate;
                mem_used += s.mem_usage_bytes / (1024.0 * 1024.0 * 1024.0);
                ctr_signals.push((*id, *s));
            }
            let cpu_util = (cpu_used / spec.cores).clamp(0.0, 1.0);
            let disk_bps = disk_read + disk_write;
            let disk_util = (disk_bps / spec.disk_bytes_per_sec()).clamp(0.0, 1.0);
            let net_util = ((net_in + net_out) / spec.net_bytes_per_sec()).clamp(0.0, 1.0);
            let mem_util = (mem_used / spec.memory_gb).clamp(0.0, 1.0);
            let iowait = 0.3 * disk_util * (1.0 - cpu_util);
            let host = HostSignals {
                cpu_util,
                cpu_user: cpu_util * 0.72,
                cpu_sys: cpu_util * 0.25,
                cpu_iowait: iowait,
                ctx_switch_rate: 2000.0 + 40.0 * conns + 8000.0 * cpu_util * spec.cores,
                intr_rate: 1000.0 + (net_in + net_out) / 6000.0,
                syscall_rate: 5000.0 + 100.0 * conns,
                nprocs: 180.0 + procs,
                runnable: cpu_util * spec.cores * 1.2,
                load1: cpu_util * spec.cores + queue * 0.5,
                mem_util,
                mem_used_bytes: mem_used * 1024.0 * 1024.0 * 1024.0,
                mem_cached_bytes: (spec.memory_gb - mem_used).max(0.0)
                    * 0.4
                    * 1024.0
                    * 1024.0
                    * 1024.0,
                mem_dirty_bytes: disk_write * 2.0,
                pgin_rate: disk_read / 4096.0,
                pgout_rate: disk_write / 4096.0,
                pgfault_rate: pgfault + 500.0,
                swap_rate: if mem_util > 0.95 {
                    (mem_util - 0.95) * 1e5
                } else {
                    0.0
                },
                net_in_bytes: net_in,
                net_out_bytes: net_out,
                net_in_pkts: net_in / 800.0,
                net_out_pkts: net_out / 800.0,
                net_err_rate: net_util * net_util * 20.0,
                net_util,
                tcp_estab: conns + 15.0,
                tcp_inuse: conns * 1.2 + 30.0,
                tcp_retrans: net_util.powi(3) * 200.0,
                disk_read_bytes: disk_read,
                disk_write_bytes: disk_write,
                disk_iops: disk_bps / 16_384.0,
                disk_aveq: queue,
                disk_util,
                inodes_free: 1_500_000.0 - 100.0 * procs,
            };
            obs::observe("sim.node_queue_depth", queue);
            observations.push(agent.collect(t, &host, &ctr_signals));
        }

        self.time += 1;
        TickReport {
            time: t,
            observations,
            kpis,
            containers: ticks,
        }
    }

    fn spec_of(&self, node: NodeId) -> NodeSpec {
        self.nodes
            .iter()
            .find(|(id, _, _)| *id == node)
            .map(|(_, s, _)| *s)
            .expect("node exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_node_cluster() -> (Cluster, AppId, InstanceId) {
        let mut cluster = Cluster::new(vec![NodeSpec::training_server()], 1);
        let app = cluster.add_app("svc-app");
        let inst = cluster.add_service(
            app,
            ServiceRole {
                name: "web".into(),
                profile: ServiceProfile::test_cpu_bound("web", 10.0),
                fanout: 1.0,
                limits: ContainerLimits::cpu(1.0),
            },
            NodeId(0),
        );
        (cluster, app, inst)
    }

    #[test]
    fn step_produces_observations_and_kpis() {
        let (mut cluster, app, inst) = one_node_cluster();
        let report = cluster.step(&[(app, 50.0)]);
        assert_eq!(report.observations.len(), 1);
        assert_eq!(report.observations[0].host.len(), 952);
        assert!(report.observations[0].instance_vector(inst).is_some());
        let kpi = report.kpi(app).unwrap();
        assert!((kpi.throughput_rps - 50.0).abs() < 1.0);
        assert!(kpi.response_ms < 100.0);
    }

    #[test]
    fn overload_degrades_kpi() {
        let (mut cluster, app, _) = one_node_cluster();
        // Capacity is ~100 rps; offered 300 rps must eventually drop.
        let mut last = None;
        for _ in 0..10 {
            last = Some(cluster.step(&[(app, 300.0)]));
        }
        let report = last.unwrap();
        let kpi = report.kpi(app).unwrap();
        assert!(kpi.throughput_rps < 150.0);
        assert!(kpi.dropped_rps > 0.0);
        assert!(kpi.response_ms > 1000.0);
    }

    #[test]
    fn scale_out_increases_capacity() {
        let (mut cluster, app, _) = one_node_cluster();
        for _ in 0..5 {
            cluster.step(&[(app, 300.0)]);
        }
        let before = cluster
            .step(&[(app, 300.0)])
            .kpi(app)
            .unwrap()
            .throughput_rps;
        let extra = cluster.scale_out(app, "web", NodeId(0)).unwrap();
        // Let queues drain relative to the new capacity.
        for _ in 0..10 {
            cluster.step(&[(app, 300.0)]);
        }
        let after = cluster
            .step(&[(app, 300.0)])
            .kpi(app)
            .unwrap()
            .throughput_rps;
        assert!(after > before * 1.5, "{before} -> {after}");
        assert!(cluster.scale_in(extra));
        assert_eq!(cluster.container_count(), 1);
    }

    #[test]
    fn scale_out_unknown_targets_are_errors() {
        let (mut cluster, app, _) = one_node_cluster();
        match cluster.scale_out(app, "nope", NodeId(0)) {
            Err(ClusterError::UnknownService { service, known, .. }) => {
                assert_eq!(service, "nope");
                assert_eq!(known, vec!["web".to_string()]);
            }
            other => panic!("expected UnknownService, got {other:?}"),
        }
        assert_eq!(
            cluster.scale_out(app, "web", NodeId(9)),
            Err(ClusterError::UnknownNode(NodeId(9)))
        );
        assert_eq!(
            cluster.scale_out(AppId(7), "web", NodeId(0)),
            Err(ClusterError::UnknownApp(AppId(7)))
        );
        // Failed scale-outs leave the cluster untouched.
        assert_eq!(cluster.container_count(), 1);
    }

    #[test]
    fn scale_in_keeps_last_instance() {
        let (mut cluster, app, inst) = one_node_cluster();
        assert!(!cluster.scale_in(inst));
        let _ = app;
        assert_eq!(cluster.container_count(), 1);
    }

    #[test]
    fn colocated_containers_interfere() {
        let mut cluster = Cluster::new(vec![NodeSpec::m3()], 2); // 8 cores
        let a = cluster.add_app("a");
        let b = cluster.add_app("b");
        // Each wants 6 cores at full load: together they exceed the node.
        for (app, name) in [(a, "sa"), (b, "sb")] {
            cluster.add_service(
                app,
                ServiceRole {
                    name: name.into(),
                    profile: ServiceProfile::test_cpu_bound(name, 10.0),
                    fanout: 1.0,
                    limits: ContainerLimits::unlimited(),
                },
                NodeId(0),
            );
        }
        // Alone, app A at 590 rps (5.9 cores) is fine.
        let solo = cluster.step(&[(a, 590.0)]);
        assert!(solo.kpi(a).unwrap().response_ms < 200.0);
        // Together, 590 + 590 rps exceed 8 cores: both degrade.
        let mut both = None;
        for _ in 0..8 {
            both = Some(cluster.step(&[(a, 590.0), (b, 590.0)]));
        }
        let both = both.unwrap();
        assert!(both.kpi(a).unwrap().response_ms > solo.kpi(a).unwrap().response_ms * 2.0);
        assert!(both.kpi(b).unwrap().dropped_rps > 0.0);
    }

    #[test]
    fn owner_and_node_lookup() {
        let (cluster, app, inst) = one_node_cluster();
        assert_eq!(cluster.node_of(inst), Some(NodeId(0)));
        let (owner, svc) = cluster.owner_of(inst).unwrap();
        assert_eq!(owner, app);
        assert_eq!(svc, "web");
        assert_eq!(cluster.app(app).instances(), vec![inst]);
    }

    #[test]
    fn multi_service_chain_sums_response_times() {
        let mut cluster = Cluster::new(vec![NodeSpec::training_server()], 3);
        let app = cluster.add_app("chain");
        for name in ["front", "back"] {
            cluster.add_service(
                app,
                ServiceRole {
                    name: name.into(),
                    profile: ServiceProfile::test_cpu_bound(name, 5.0),
                    fanout: 1.0,
                    limits: ContainerLimits::unlimited(),
                },
                NodeId(0),
            );
        }
        let report = cluster.step(&[(app, 10.0)]);
        let kpi = report.kpi(app).unwrap();
        // Two services, each ~5 ms base latency.
        assert!(kpi.response_ms > 9.0 && kpi.response_ms < 30.0);
    }

    #[test]
    fn time_advances() {
        let (mut cluster, app, _) = one_node_cluster();
        assert_eq!(cluster.time(), 0);
        cluster.step(&[(app, 1.0)]);
        cluster.step(&[(app, 1.0)]);
        assert_eq!(cluster.time(), 2);
    }
}
