//! The cluster simulation engine.
//!
//! Two execution paths share one storage layout and produce bit-identical
//! [`TickReport`]s at the 1 Hz monitoring boundary:
//!
//! * [`Cluster::step`] (and its buffer-reusing form [`Cluster::step_into`])
//!   — the incremental path. Nodes are grouped into *shards*: connected
//!   components of the app-placement graph, so two nodes share a shard
//!   exactly when some application couples them through co-location.
//!   Shards are independent between cross-group events and evaluate in
//!   parallel over `monitorless_std::pool`. Within a node, containers
//!   carry a *fixed-point cache*: once an evaluation leaves a container's
//!   persistent state bit-unchanged and its inputs (offered load,
//!   contention factors) are bit-identical, the cached tick is reused and
//!   the container costs nothing until something changes.
//! * [`Cluster::step_dense_legacy`] — the original dense loop, kept as
//!   the equivalence oracle and benchmark baseline: every container is
//!   re-evaluated every second and the gather phases use the original
//!   linear scans (spec lookup per container, tick lookup per KPI
//!   instance, full-fleet filter per node).
//!
//! Both paths aggregate per-node float sums in ascending instance-id
//! order, which is what makes the equality *bitwise* rather than merely
//! approximate — see `tests/sim_equivalence.rs` for the property suite.

use std::collections::HashMap;
use std::sync::Arc;

use monitorless_metrics::catalog::Catalog;
use monitorless_metrics::signals::{ContainerSignals, HostSignals};
use monitorless_metrics::{InstanceId, MonitoringAgent, NodeId, Observation};
use monitorless_obs as obs;
use monitorless_std::pool;

use crate::container::{Container, ContainerTick};
use crate::error::ClusterError;
use crate::kpi::AppKpi;
use crate::resources::{ContainerLimits, NodeSpec};
use crate::service::ServiceProfile;

/// Identifier of an application in a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u32);

/// Definition of one service within an application.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRole {
    /// Service name, unique within the application.
    pub name: String,
    /// Resource demand profile.
    pub profile: ServiceProfile,
    /// Average visits to this service per end-to-end request.
    pub fanout: f64,
    /// Resource limits applied to each instance of this service.
    pub limits: ContainerLimits,
}

#[derive(Debug)]
struct ServiceEntry {
    role: ServiceRole,
    instances: Vec<InstanceId>,
}

/// One application: a set of services, each with ≥1 instances.
#[derive(Debug)]
pub struct Application {
    name: String,
    services: Vec<ServiceEntry>,
    // Flat caches so the hot accessors below can hand out borrowed
    // slices instead of allocating per call.
    all_instances: Vec<InstanceId>,
    names: Vec<String>,
}

impl Application {
    /// The application's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Names of the application's services.
    pub fn service_names(&self) -> &[String] {
        &self.names
    }

    /// All instance ids across all services, grouped by service.
    pub fn instances(&self) -> &[InstanceId] {
        &self.all_instances
    }

    /// Instances of one service.
    pub fn instances_of(&self, service: &str) -> Vec<InstanceId> {
        self.services
            .iter()
            .filter(|s| s.role.name == service)
            .flat_map(|s| s.instances.iter().copied())
            .collect()
    }

    fn refresh_caches(&mut self) {
        self.all_instances.clear();
        self.all_instances.extend(
            self.services
                .iter()
                .flat_map(|s| s.instances.iter().copied()),
        );
        self.names.clear();
        self.names
            .extend(self.services.iter().map(|s| s.role.name.clone()));
    }
}

/// Per-tick output of [`Cluster::step`].
///
/// `containers` is sorted by ascending instance id, so
/// [`TickReport::container`] is a binary search.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Tick timestamp (seconds since start).
    pub time: u64,
    /// One processed observation per node (agent output), in node-id
    /// order.
    pub observations: Vec<Observation>,
    /// Application KPIs, in the order of the offered-load slice.
    pub kpis: Vec<(AppId, AppKpi)>,
    /// Per-container evaluation details (bottlenecks, drops, …), sorted
    /// by instance id.
    pub containers: Vec<(InstanceId, ContainerTick)>,
}

impl TickReport {
    /// An empty report, for use with [`Cluster::step_into`]: the report's
    /// vectors are reused across ticks, so a steady-state simulation loop
    /// allocates nothing.
    pub fn empty() -> Self {
        TickReport::default()
    }

    /// KPI of one application.
    pub fn kpi(&self, app: AppId) -> Option<&AppKpi> {
        self.kpis.iter().find(|(a, _)| *a == app).map(|(_, k)| k)
    }

    /// Container tick details of one instance.
    pub fn container(&self, id: InstanceId) -> Option<&ContainerTick> {
        self.containers
            .binary_search_by_key(&id, |&(i, _)| i)
            .ok()
            .map(|idx| &self.containers[idx].1)
    }
}

/// Cumulative work counters for a [`Cluster`], exposed so benches and the
/// event loop can report how much the fixed-point cache saves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Full (monitored) ticks executed.
    pub ticks: u64,
    /// State-only ticks (container dynamics advanced, no collection).
    pub state_ticks: u64,
    /// Seconds skipped outright by [`Cluster::fast_forward`].
    pub skipped_seconds: u64,
    /// Container evaluations actually performed.
    pub container_evals: u64,
    /// Container evaluations skipped by the fixed-point cache.
    pub cached_ticks: u64,
}

/// One container slotted on a node, with its fixed-point cache.
#[derive(Debug)]
struct Slot {
    id: InstanceId,
    container: Container,
    /// Offered load for the current tick.
    offered: f64,
    /// Set when `offered` changed bitwise since the container was last
    /// evaluated.
    offered_changed: bool,
    // Cached node-visible demand terms (already cgroup-capped), valid
    // whenever the container is settled and its offered load unchanged.
    dem_cpu: f64,
    dem_disk: f64,
    dem_net: f64,
    /// Result of the last evaluation.
    tick: Option<ContainerTick>,
    /// Whether the last evaluation left the container state bit-unchanged
    /// (the fixed point: identical inputs now reproduce identical ticks).
    settled: bool,
}

impl Slot {
    fn new(id: InstanceId, container: Container) -> Self {
        Slot {
            id,
            container,
            offered: 0.0,
            offered_changed: true,
            dem_cpu: 0.0,
            dem_disk: 0.0,
            dem_net: 0.0,
            tick: None,
            settled: false,
        }
    }

    fn needs_eval(&self) -> bool {
        self.tick.is_none() || !self.settled || self.offered_changed
    }
}

/// One node: spec, agent, and its containers in ascending instance-id
/// order (instance ids only ever grow, so appends preserve the order the
/// dense loop's sorted scans established).
#[derive(Debug)]
struct NodeEntry {
    id: NodeId,
    spec: NodeSpec,
    agent: MonitoringAgent,
    slots: Vec<Slot>,
    factors: (f64, f64, f64),
    factors_valid: bool,
    host: HostSignals,
    host_valid: bool,
    /// Containers were added/removed since the last tick.
    topo_dirty: bool,
    sig_buf: Vec<(InstanceId, ContainerSignals)>,
    obs_buf: Observation,
}

impl NodeEntry {
    fn new(id: NodeId, spec: NodeSpec, agent: MonitoringAgent) -> Self {
        NodeEntry {
            id,
            spec,
            agent,
            slots: Vec::new(),
            factors: (1.0, 1.0, 1.0),
            factors_valid: false,
            host: HostSignals::default(),
            host_valid: false,
            topo_dirty: false,
            sig_buf: Vec::new(),
            obs_buf: Observation {
                node: id,
                time: 0,
                host: Vec::new(),
                containers: Vec::new(),
            },
        }
    }

    /// Advances this node by one second. Returns `(evals, cached)`.
    fn tick(&mut self, time: u64, collect: bool) -> (u64, u64) {
        let mut evals = 0u64;
        let mut cached = 0u64;

        // Demand refresh for stale slots; settled slots with unchanged
        // load reuse their cached (cgroup-capped) demand terms.
        let mut demand_changed = self.topo_dirty;
        for slot in &mut self.slots {
            if slot.needs_eval() {
                let d = slot.container.demands(&self.spec, slot.offered);
                let cpu = d
                    .cpu_cores
                    .min(slot.container.limits().effective_cpu(&self.spec));
                let disk = d.disk_read_bps + d.disk_write_bps;
                let net = d.net_in_bps + d.net_out_bps;
                if cpu.to_bits() != slot.dem_cpu.to_bits()
                    || disk.to_bits() != slot.dem_disk.to_bits()
                    || net.to_bits() != slot.dem_net.to_bits()
                {
                    demand_changed = true;
                }
                slot.dem_cpu = cpu;
                slot.dem_disk = disk;
                slot.dem_net = net;
            }
        }

        // Contention factors, recomputed only when some demand moved.
        // The sum runs in slot (= ascending instance-id) order, exactly
        // like the dense loop's sorted pass, so the bits agree.
        let factors_changed = if demand_changed || !self.factors_valid {
            let mut dc = 0.0;
            let mut dd = 0.0;
            let mut dn = 0.0;
            for slot in &self.slots {
                dc += slot.dem_cpu;
                dd += slot.dem_disk;
                dn += slot.dem_net;
            }
            let cpu_share = if dc > self.spec.cores {
                self.spec.cores / dc
            } else {
                1.0
            };
            let disk_share = if dd > self.spec.disk_bytes_per_sec() {
                self.spec.disk_bytes_per_sec() / dd
            } else {
                1.0
            };
            let net_share = if dn > self.spec.net_bytes_per_sec() {
                self.spec.net_bytes_per_sec() / dn
            } else {
                1.0
            };
            let changed = !self.factors_valid
                || cpu_share.to_bits() != self.factors.0.to_bits()
                || disk_share.to_bits() != self.factors.1.to_bits()
                || net_share.to_bits() != self.factors.2.to_bits();
            self.factors = (cpu_share, disk_share, net_share);
            self.factors_valid = true;
            changed
        } else {
            false
        };

        // Evaluate what moved; a changed factor invalidates every slot on
        // the node (their share inputs changed).
        let (cpu_s, disk_s, net_s) = self.factors;
        let mut any_eval = false;
        for slot in &mut self.slots {
            if factors_changed || slot.needs_eval() {
                let before = slot.container.state_bits();
                let tick = slot
                    .container
                    .evaluate(&self.spec, slot.offered, cpu_s, disk_s, net_s);
                slot.settled = slot.container.state_bits() == before;
                slot.tick = Some(tick);
                slot.offered_changed = false;
                any_eval = true;
                evals += 1;
            } else {
                cached += 1;
            }
        }

        if collect {
            if any_eval || self.topo_dirty || !self.host_valid {
                self.compute_host();
                self.host_valid = true;
            }
            self.refill_signals();
            self.agent
                .collect_into(time, &self.host, &self.sig_buf, &mut self.obs_buf);
        } else if any_eval || self.topo_dirty {
            // State-only tick moved the containers; a later collect must
            // not trust the stale host aggregate.
            self.host_valid = false;
        }
        self.topo_dirty = false;
        (evals, cached)
    }

    /// Host-signal synthesis, bit-identical to the dense loop: the same
    /// formulas, accumulated in the same (ascending instance-id) order.
    fn compute_host(&mut self) {
        let spec = &self.spec;
        let mut cpu_used = 0.0;
        let mut disk_read = 0.0;
        let mut disk_write = 0.0;
        let mut net_in = 0.0;
        let mut net_out = 0.0;
        let mut conns = 0.0;
        let mut procs = 0.0;
        let mut queue = 0.0;
        let mut pgfault = 0.0;
        let mut mem_used = 6.0; // GiB of host OS overhead
        for slot in &self.slots {
            let s = &slot
                .tick
                .as_ref()
                .expect("evaluated before host synthesis")
                .signals;
            cpu_used += s.cpu_usage_cores;
            disk_read += s.disk_read_bytes;
            disk_write += s.disk_write_bytes;
            net_in += s.net_in_bytes;
            net_out += s.net_out_bytes;
            conns += s.tcp_conns;
            procs += s.nprocs;
            queue += s.disk_queue;
            pgfault += s.pgfault_rate;
            mem_used += s.mem_usage_bytes / (1024.0 * 1024.0 * 1024.0);
        }
        let cpu_util = (cpu_used / spec.cores).clamp(0.0, 1.0);
        let disk_bps = disk_read + disk_write;
        let disk_util = (disk_bps / spec.disk_bytes_per_sec()).clamp(0.0, 1.0);
        let net_util = ((net_in + net_out) / spec.net_bytes_per_sec()).clamp(0.0, 1.0);
        let mem_util = (mem_used / spec.memory_gb).clamp(0.0, 1.0);
        let iowait = 0.3 * disk_util * (1.0 - cpu_util);
        self.host = HostSignals {
            cpu_util,
            cpu_user: cpu_util * 0.72,
            cpu_sys: cpu_util * 0.25,
            cpu_iowait: iowait,
            ctx_switch_rate: 2000.0 + 40.0 * conns + 8000.0 * cpu_util * spec.cores,
            intr_rate: 1000.0 + (net_in + net_out) / 6000.0,
            syscall_rate: 5000.0 + 100.0 * conns,
            nprocs: 180.0 + procs,
            runnable: cpu_util * spec.cores * 1.2,
            load1: cpu_util * spec.cores + queue * 0.5,
            mem_util,
            mem_used_bytes: mem_used * 1024.0 * 1024.0 * 1024.0,
            mem_cached_bytes: (spec.memory_gb - mem_used).max(0.0) * 0.4 * 1024.0 * 1024.0 * 1024.0,
            mem_dirty_bytes: disk_write * 2.0,
            pgin_rate: disk_read / 4096.0,
            pgout_rate: disk_write / 4096.0,
            pgfault_rate: pgfault + 500.0,
            swap_rate: if mem_util > 0.95 {
                (mem_util - 0.95) * 1e5
            } else {
                0.0
            },
            net_in_bytes: net_in,
            net_out_bytes: net_out,
            net_in_pkts: net_in / 800.0,
            net_out_pkts: net_out / 800.0,
            net_err_rate: net_util * net_util * 20.0,
            net_util,
            tcp_estab: conns + 15.0,
            tcp_inuse: conns * 1.2 + 30.0,
            tcp_retrans: net_util.powi(3) * 200.0,
            disk_read_bytes: disk_read,
            disk_write_bytes: disk_write,
            disk_iops: disk_bps / 16_384.0,
            disk_aveq: queue,
            disk_util,
            inodes_free: 1_500_000.0 - 100.0 * procs,
        };
    }

    fn refill_signals(&mut self) {
        self.sig_buf.clear();
        self.sig_buf.extend(
            self.slots
                .iter()
                .map(|sl| (sl.id, sl.tick.as_ref().expect("evaluated").signals)),
        );
    }
}

/// A group of nodes coupled by application placement; shards are
/// pairwise independent between cross-group (topology) events.
#[derive(Debug, Default)]
struct Shard {
    nodes: Vec<NodeEntry>,
    // Per-tick work counters, filled by the parallel phase and folded
    // into `SimStats` sequentially.
    evals: u64,
    cached: u64,
}

/// A simulated cloud: nodes with monitoring agents, containers, and
/// applications.
#[derive(Debug)]
pub struct Cluster {
    shards: Vec<Shard>,
    /// Node id (dense `0..n`) → (shard index, position within shard).
    node_loc: Vec<(u32, u32)>,
    node_ids: Vec<NodeId>,
    /// Instance → hosting node.
    locator: HashMap<InstanceId, NodeId>,
    /// All live instance ids, ascending.
    order: Vec<InstanceId>,
    apps: Vec<Application>,
    catalog: Arc<Catalog>,
    next_instance: u32,
    time: u64,
    n_jobs: usize,
    /// Instances were added/removed: shards must be rebuilt before the
    /// next tick (the cross-group barrier).
    topology_dirty: bool,
    /// Cleared by [`Cluster::step_dense_legacy`], whose evaluations leave
    /// the incremental caches stale; the next incremental tick then
    /// recomputes everything from scratch.
    caches_valid: bool,
    prev_loads: Vec<(AppId, f64)>,
    loads_valid: bool,
    offered_scratch: HashMap<InstanceId, f64>,
    stats: SimStats,
}

fn same_loads(a: &[(AppId, f64)], b: &[(AppId, f64)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.0 == y.0 && x.1.to_bits() == y.1.to_bits())
}

impl Cluster {
    /// Creates a cluster with the given nodes; `seed` drives all
    /// measurement noise.
    pub fn new(specs: Vec<NodeSpec>, seed: u64) -> Self {
        let catalog = Arc::new(Catalog::standard());
        let mut shards = Vec::with_capacity(specs.len());
        let mut node_loc = Vec::with_capacity(specs.len());
        let mut node_ids = Vec::with_capacity(specs.len());
        for (i, spec) in specs.into_iter().enumerate() {
            let id = NodeId(i as u32);
            let agent = MonitoringAgent::new(id, Arc::clone(&catalog), seed ^ (i as u64) << 32);
            shards.push(Shard {
                nodes: vec![NodeEntry::new(id, spec, agent)],
                evals: 0,
                cached: 0,
            });
            node_loc.push((i as u32, 0));
            node_ids.push(id);
        }
        Cluster {
            shards,
            node_loc,
            node_ids,
            locator: HashMap::new(),
            order: Vec::new(),
            apps: Vec::new(),
            catalog,
            next_instance: 0,
            time: 0,
            n_jobs: 1,
            topology_dirty: false,
            caches_valid: true,
            prev_loads: Vec::new(),
            loads_valid: false,
            offered_scratch: HashMap::new(),
            stats: SimStats::default(),
        }
    }

    /// The shared metric catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Node ids in the cluster.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.node_ids
    }

    /// Worker threads used to evaluate independent shards in parallel
    /// (default 1). The observation stream is bit-identical for any
    /// worker count — shards share no mutable state within a tick.
    pub fn set_n_jobs(&mut self, n_jobs: usize) {
        self.n_jobs = n_jobs.max(1);
    }

    /// Cumulative work counters (evaluations performed vs. cached).
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Resets the work counters.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
    }

    /// Registers a new application.
    pub fn add_app(&mut self, name: &str) -> AppId {
        self.apps.push(Application {
            name: name.to_string(),
            services: Vec::new(),
            all_instances: Vec::new(),
            names: Vec::new(),
        });
        AppId(self.apps.len() as u32 - 1)
    }

    /// The application with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale.
    pub fn app(&self, id: AppId) -> &Application {
        &self.apps[id.0 as usize]
    }

    /// Adds a service to an application and starts its first instance on
    /// `node`. Returns the instance id.
    ///
    /// # Panics
    ///
    /// Panics if `app` or `node` is unknown.
    pub fn add_service(&mut self, app: AppId, role: ServiceRole, node: NodeId) -> InstanceId {
        assert!((node.0 as usize) < self.node_ids.len(), "unknown node {node}");
        let entry = ServiceEntry {
            role,
            instances: Vec::new(),
        };
        self.apps[app.0 as usize].services.push(entry);
        let svc_idx = self.apps[app.0 as usize].services.len() - 1;
        self.spawn_instance(app, svc_idx, node)
    }

    /// Starts an additional instance (scale-out) of `service` on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`], [`ClusterError::UnknownApp`]
    /// or [`ClusterError::UnknownService`] when the target does not exist;
    /// the cluster is left unchanged.
    pub fn scale_out(
        &mut self,
        app: AppId,
        service: &str,
        node: NodeId,
    ) -> Result<InstanceId, ClusterError> {
        if (node.0 as usize) >= self.node_ids.len() {
            return Err(ClusterError::UnknownNode(node));
        }
        let services = &self
            .apps
            .get(app.0 as usize)
            .ok_or(ClusterError::UnknownApp(app))?
            .services;
        let svc_idx = services
            .iter()
            .position(|s| s.role.name == service)
            .ok_or_else(|| ClusterError::UnknownService {
                app,
                service: service.to_string(),
                known: services.iter().map(|s| s.role.name.clone()).collect(),
            })?;
        obs::counter_add("sim.scale_out", 1);
        Ok(self.spawn_instance(app, svc_idx, node))
    }

    fn spawn_instance(&mut self, app: AppId, svc_idx: usize, node: NodeId) -> InstanceId {
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        let a = &mut self.apps[app.0 as usize];
        let (profile, limits) = {
            let role = &a.services[svc_idx].role;
            (role.profile.clone(), role.limits)
        };
        let container = Container::new(id, profile, limits);
        a.services[svc_idx].instances.push(id);
        a.refresh_caches();
        let (s, p) = self.node_loc[node.0 as usize];
        let entry = &mut self.shards[s as usize].nodes[p as usize];
        debug_assert!(entry.slots.last().is_none_or(|sl| sl.id < id));
        entry.slots.push(Slot::new(id, container));
        entry.topo_dirty = true;
        entry.factors_valid = false;
        self.locator.insert(id, node);
        self.order.push(id); // instance ids strictly increase
        self.topology_dirty = true;
        self.loads_valid = false; // per-instance shares changed
        id
    }

    /// Stops an instance (scale-in). Keeps at least one instance per
    /// service: removing the last instance is rejected.
    ///
    /// Returns `true` if the instance was removed.
    pub fn scale_in(&mut self, id: InstanceId) -> bool {
        self.scale_in_with_floor(id, 1)
    }

    /// Stops an instance even if it is the last one of its service
    /// (serverless-style scale-to-zero). A service with zero instances
    /// simply stops contributing to its application's KPIs — the driver
    /// is responsible for accounting offered load that finds no
    /// capacity (see `EventSim`'s cold-start support).
    ///
    /// Returns `true` if the instance was removed.
    pub fn scale_in_to_zero(&mut self, id: InstanceId) -> bool {
        self.scale_in_with_floor(id, 0)
    }

    fn scale_in_with_floor(&mut self, id: InstanceId, floor: usize) -> bool {
        for ai in 0..self.apps.len() {
            for si in 0..self.apps[ai].services.len() {
                let svc = &mut self.apps[ai].services[si];
                if let Some(pos) = svc.instances.iter().position(|&i| i == id) {
                    if svc.instances.len() <= floor {
                        return false;
                    }
                    svc.instances.remove(pos);
                    self.apps[ai].refresh_caches();
                    self.remove_slot(id);
                    obs::counter_add("sim.scale_in", 1);
                    return true;
                }
            }
        }
        false
    }

    fn remove_slot(&mut self, id: InstanceId) {
        let node = self.locator.remove(&id).expect("instance tracked");
        let (s, p) = self.node_loc[node.0 as usize];
        let entry = &mut self.shards[s as usize].nodes[p as usize];
        let idx = entry
            .slots
            .binary_search_by_key(&id, |sl| sl.id)
            .expect("slot present");
        entry.slots.remove(idx);
        entry.topo_dirty = true;
        entry.factors_valid = false;
        let oidx = self.order.binary_search(&id).expect("ordered");
        self.order.remove(oidx);
        self.topology_dirty = true;
        self.loads_valid = false;
    }

    /// Which node an instance runs on.
    pub fn node_of(&self, id: InstanceId) -> Option<NodeId> {
        self.locator.get(&id).copied()
    }

    /// Which `(application, service-name)` an instance belongs to.
    pub fn owner_of(&self, id: InstanceId) -> Option<(AppId, &str)> {
        for (ai, app) in self.apps.iter().enumerate() {
            for svc in &app.services {
                if svc.instances.contains(&id) {
                    return Some((AppId(ai as u32), svc.role.name.as_str()));
                }
            }
        }
        None
    }

    /// Number of running containers.
    pub fn container_count(&self) -> usize {
        self.order.len()
    }

    /// Number of independent node groups (after pending topology changes
    /// are applied — see [`Cluster::sync_topology`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard hosting `app`'s instances, or `None` if the app has no
    /// instances. All instances of one app share a shard by construction.
    pub fn shard_of_app(&self, app: AppId) -> Option<usize> {
        let a = self.apps.get(app.0 as usize)?;
        let inst = a.all_instances.first()?;
        let node = self.locator.get(inst)?;
        Some(self.node_loc[node.0 as usize].0 as usize)
    }

    /// Applies pending topology changes now: regroups nodes into shards
    /// (connected components of the app-placement graph). Called
    /// automatically at the start of every tick; event loops call it
    /// eagerly after scale actions so queue routing sees fresh shards.
    pub fn sync_topology(&mut self) {
        if self.topology_dirty {
            self.rebuild_shards();
            self.topology_dirty = false;
        }
    }

    fn rebuild_shards(&mut self) {
        let n = self.node_ids.len();
        let mut entries: Vec<Option<NodeEntry>> = (0..n).map(|_| None).collect();
        for shard in self.shards.drain(..) {
            for node in shard.nodes {
                let idx = node.id.0 as usize;
                entries[idx] = Some(node);
            }
        }
        // Union-find over nodes: each app couples every node it runs on.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for app in &self.apps {
            let mut first: Option<u32> = None;
            for &inst in &app.all_instances {
                let node = self.locator[&inst].0;
                match first {
                    None => first = Some(node),
                    Some(f) => {
                        let (ra, rb) = (find(&mut parent, f), find(&mut parent, node));
                        if ra != rb {
                            // Union by smaller root keeps grouping
                            // deterministic regardless of app order.
                            let (lo, hi) = (ra.min(rb), ra.max(rb));
                            parent[hi as usize] = lo;
                        }
                    }
                }
            }
        }
        // Shards ordered by first member node id; nodes ascending within.
        let mut shard_of_root: HashMap<u32, u32> = HashMap::new();
        for i in 0..n as u32 {
            let r = find(&mut parent, i);
            let s = match shard_of_root.get(&r) {
                Some(&s) => s,
                None => {
                    let s = shard_of_root.len() as u32;
                    shard_of_root.insert(r, s);
                    self.shards.push(Shard::default());
                    s
                }
            };
            let pos = self.shards[s as usize].nodes.len() as u32;
            self.node_loc[i as usize] = (s, pos);
            self.shards[s as usize]
                .nodes
                .push(entries[i as usize].take().expect("every node assigned"));
        }
    }

    /// Whether every container sits at its fixed point with no pending
    /// load or topology change — i.e. the cluster state is bitwise frozen
    /// until the next external event, so seconds can be skipped outright
    /// with [`Cluster::fast_forward`].
    pub fn is_settled(&self) -> bool {
        !self.topology_dirty
            && self.caches_valid
            && self.loads_valid
            && self.shards.iter().all(|s| {
                s.nodes.iter().all(|n| {
                    n.factors_valid
                        && n.slots
                            .iter()
                            .all(|sl| sl.settled && !sl.offered_changed && sl.tick.is_some())
                })
            })
    }

    /// Skips `seconds` of simulated time without evaluating anything.
    ///
    /// Sound only when [`Cluster::is_settled`] holds and no load changes
    /// occur in the skipped interval: the container state is then bitwise
    /// frozen, so there is nothing to integrate. Monitoring agents do not
    /// sample skipped seconds (the event loop only skips between
    /// monitoring samples).
    pub fn fast_forward(&mut self, seconds: u64) {
        debug_assert!(self.is_settled(), "fast_forward requires a settled cluster");
        self.time += seconds;
        self.stats.skipped_seconds += seconds;
    }

    fn prepare(&mut self) {
        self.sync_topology();
        if !self.caches_valid {
            for shard in &mut self.shards {
                for node in &mut shard.nodes {
                    node.factors_valid = false;
                    node.host_valid = false;
                    node.topo_dirty = true;
                    for slot in &mut node.slots {
                        slot.settled = false;
                    }
                }
            }
            self.loads_valid = false;
            self.caches_valid = true;
        }
    }

    /// Distributes the offered load to the slots, flagging bitwise
    /// changes. Skipped wholesale when `loads` is bit-identical to the
    /// previous tick's (and nothing else invalidated the distribution).
    fn apply_loads(&mut self, loads: &[(AppId, f64)]) {
        if self.loads_valid && same_loads(&self.prev_loads, loads) {
            return;
        }
        self.offered_scratch.clear();
        for &(app_id, load) in loads {
            let app = &self.apps[app_id.0 as usize];
            for svc in &app.services {
                if svc.instances.is_empty() {
                    continue;
                }
                let per_instance = load * svc.role.fanout / svc.instances.len() as f64;
                for &inst in &svc.instances {
                    *self.offered_scratch.entry(inst).or_insert(0.0) += per_instance;
                }
            }
        }
        let scratch = &self.offered_scratch;
        for shard in &mut self.shards {
            for node in &mut shard.nodes {
                for slot in &mut node.slots {
                    let new = scratch.get(&slot.id).copied().unwrap_or(0.0);
                    if new.to_bits() != slot.offered.to_bits() {
                        slot.offered = new;
                        slot.offered_changed = true;
                    }
                }
            }
        }
        self.prev_loads.clear();
        self.prev_loads.extend_from_slice(loads);
        self.loads_valid = true;
    }

    /// The parallel phase: every shard advances its nodes independently.
    fn eval_nodes(&mut self, time: u64, collect: bool) {
        let jobs = self.n_jobs.min(self.shards.len()).max(1);
        pool::for_each_item_mut(&mut self.shards, jobs, |_i, shard| {
            let mut evals = 0u64;
            let mut cached = 0u64;
            for node in &mut shard.nodes {
                let (e, c) = node.tick(time, collect);
                evals += e;
                cached += c;
            }
            shard.evals = evals;
            shard.cached = cached;
        });
        for shard in &self.shards {
            self.stats.container_evals += shard.evals;
            self.stats.cached_ticks += shard.cached;
        }
    }

    fn slot_ref(&self, id: InstanceId) -> Option<&Slot> {
        let node = *self.locator.get(&id)?;
        let (s, p) = self.node_loc[node.0 as usize];
        let entry = &self.shards[s as usize].nodes[p as usize];
        let idx = entry.slots.binary_search_by_key(&id, |sl| sl.id).ok()?;
        Some(&entry.slots[idx])
    }

    /// The sequential gather phase: observations (ping-ponged into the
    /// report without copying), KPIs and the sorted container list.
    fn emit_report(&mut self, time: u64, loads: &[(AppId, f64)], report: &mut TickReport) {
        report.time = time;
        report.observations.truncate(self.node_ids.len());
        for i in 0..self.node_ids.len() {
            let (s, p) = self.node_loc[i];
            let node = &mut self.shards[s as usize].nodes[p as usize];
            obs::observe("sim.node_queue_depth", node.host.disk_aveq);
            if i < report.observations.len() {
                std::mem::swap(&mut report.observations[i], &mut node.obs_buf);
            } else {
                report.observations.push(node.obs_buf.clone());
            }
        }

        report.kpis.clear();
        for &(app_id, load) in loads {
            let app = &self.apps[app_id.0 as usize];
            let mut success = 1.0_f64;
            let mut rt = 0.0;
            for svc in &app.services {
                if svc.instances.is_empty() {
                    continue;
                }
                let mut svc_offered = 0.0;
                let mut svc_achieved = 0.0;
                let mut svc_rt = 0.0;
                for &inst in &svc.instances {
                    let slot = self.slot_ref(inst).expect("instance has a slot");
                    let tick = slot.tick.as_ref().expect("evaluated");
                    svc_offered += slot.offered;
                    svc_achieved += tick.achieved_rps;
                    svc_rt += tick.response_ms;
                }
                let svc_rt_avg = svc_rt / svc.instances.len() as f64;
                // Other applications may share these instances' offered
                // load; attribute proportionally.
                let frac = if svc_offered > 0.0 {
                    (svc_achieved / svc_offered).min(1.0)
                } else {
                    1.0
                };
                success *= frac;
                rt += svc.role.fanout * svc_rt_avg;
            }
            let throughput = load * success;
            report.kpis.push((
                app_id,
                AppKpi {
                    offered_rps: load,
                    throughput_rps: throughput,
                    response_ms: rt,
                    dropped_rps: load - throughput,
                },
            ));
        }

        report.containers.clear();
        for &id in &self.order {
            let slot = self.slot_ref(id).expect("ordered instance has a slot");
            report
                .containers
                .push((id, slot.tick.clone().expect("evaluated")));
        }
    }

    /// Advances the simulation by one second with the given offered load
    /// per application (applications not listed get zero load).
    ///
    /// # Panics
    ///
    /// Panics if a load entry references an unknown application.
    pub fn step(&mut self, loads: &[(AppId, f64)]) -> TickReport {
        let mut report = TickReport::empty();
        self.step_into(loads, &mut report);
        report
    }

    /// Like [`Cluster::step`], but writes into `report`, reusing its
    /// buffers: a steady-state loop over `step_into` performs no heap
    /// allocation (with `n_jobs == 1`; the worker pool allocates scoped
    /// threads per call when parallel).
    pub fn step_into(&mut self, loads: &[(AppId, f64)], report: &mut TickReport) {
        let _tick_span = obs::Span::enter("sim.tick");
        obs::counter_add("sim.ticks", 1);
        obs::gauge_set("sim.containers", self.order.len() as f64);
        let t = self.time;
        self.prepare();
        self.apply_loads(loads);
        self.eval_nodes(t, true);
        self.emit_report(t, loads, report);
        self.time += 1;
        self.stats.ticks += 1;
    }

    /// Advances the container dynamics by one second *without* producing
    /// monitoring output — the event loop's path for unmonitored seconds
    /// while some container is still converging toward its fixed point.
    ///
    /// # Panics
    ///
    /// Panics if a load entry references an unknown application.
    pub fn tick_state_only(&mut self, loads: &[(AppId, f64)]) {
        obs::counter_add("sim.state_ticks", 1);
        let t = self.time;
        self.prepare();
        self.apply_loads(loads);
        self.eval_nodes(t, false);
        self.time += 1;
        self.stats.state_ticks += 1;
    }

    /// The original dense per-second loop, kept verbatim as the
    /// equivalence oracle and benchmark baseline: every container is
    /// re-evaluated every tick, and the gather phases use the original
    /// linear scans (per-container spec lookup, per-instance tick search
    /// in the KPI pass, full-fleet filter per node in the host pass).
    ///
    /// Produces bit-identical reports to [`Cluster::step`] and leaves the
    /// cluster in a consistent state (the incremental caches are simply
    /// invalidated), so the two paths can be interleaved freely.
    ///
    /// # Panics
    ///
    /// Panics if a load entry references an unknown application.
    pub fn step_dense_legacy(&mut self, loads: &[(AppId, f64)]) -> TickReport {
        let _tick_span = obs::Span::enter("sim.tick");
        obs::counter_add("sim.ticks", 1);
        obs::gauge_set("sim.containers", self.order.len() as f64);
        let t = self.time;
        self.sync_topology();

        // Offered load per instance.
        let mut offered: HashMap<InstanceId, f64> = HashMap::new();
        for &(app_id, load) in loads {
            let app = &self.apps[app_id.0 as usize];
            for svc in &app.services {
                if svc.instances.is_empty() {
                    continue;
                }
                let per_instance = load * svc.role.fanout / svc.instances.len() as f64;
                for &inst in &svc.instances {
                    *offered.entry(inst).or_insert(0.0) += per_instance;
                }
            }
        }

        // Pass 1: demands, aggregated per node in ascending instance-id
        // order (the order fixed by the shared storage layout).
        #[derive(Default, Clone, Copy)]
        struct NodeDemand {
            cpu: f64,
            disk: f64,
            net: f64,
        }
        let mut node_demand: HashMap<NodeId, NodeDemand> = HashMap::new();
        for idx in 0..self.order.len() {
            let id = self.order[idx];
            let node_id = self.locator[&id];
            // Linear spec lookup, as the dense loop always did.
            let spec = self
                .node_ids
                .iter()
                .position(|&n| n == node_id)
                .map(|p| {
                    let (s, q) = self.node_loc[p];
                    self.shards[s as usize].nodes[q as usize].spec
                })
                .expect("node exists");
            let slot = self.slot_ref(id).expect("slot present");
            let load = offered.get(&id).copied().unwrap_or(0.0);
            let d = slot.container.demands(&spec, load);
            let nd = node_demand.entry(node_id).or_default();
            // Demand the host actually sees is capped by the cgroup limit.
            nd.cpu += d
                .cpu_cores
                .min(slot.container.limits().effective_cpu(&spec));
            nd.disk += d.disk_read_bps + d.disk_write_bps;
            nd.net += d.net_in_bps + d.net_out_bps;
        }

        // Contention factors per node.
        let mut factors: HashMap<NodeId, (f64, f64, f64)> = HashMap::new();
        for i in 0..self.node_ids.len() {
            let (s, p) = self.node_loc[i];
            let spec = self.shards[s as usize].nodes[p as usize].spec;
            let node_id = self.node_ids[i];
            let d = node_demand.get(&node_id).copied().unwrap_or_default();
            let cpu_share = if d.cpu > spec.cores {
                spec.cores / d.cpu
            } else {
                1.0
            };
            let disk_share = if d.disk > spec.disk_bytes_per_sec() {
                spec.disk_bytes_per_sec() / d.disk
            } else {
                1.0
            };
            let net_share = if d.net > spec.net_bytes_per_sec() {
                spec.net_bytes_per_sec() / d.net
            } else {
                1.0
            };
            factors.insert(node_id, (cpu_share, disk_share, net_share));
        }

        // Pass 2: evaluate containers in ascending id order.
        let mut ticks: Vec<(InstanceId, ContainerTick)> = Vec::new();
        for idx in 0..self.order.len() {
            let id = self.order[idx];
            let node_id = self.locator[&id];
            let pos = match self.node_ids.iter().position(|&n| n == node_id) {
                Some(p) => p,
                None => continue,
            };
            let (s, p) = self.node_loc[pos];
            let entry = &mut self.shards[s as usize].nodes[p as usize];
            let spec = entry.spec;
            let (cpu_s, disk_s, net_s) = factors[&node_id];
            let load = offered.get(&id).copied().unwrap_or(0.0);
            let sidx = entry
                .slots
                .binary_search_by_key(&id, |sl| sl.id)
                .expect("slot");
            let tick = entry.slots[sidx]
                .container
                .evaluate(&spec, load, cpu_s, disk_s, net_s);
            ticks.push((id, tick));
        }

        // KPIs per application.
        let mut kpis = Vec::new();
        for &(app_id, load) in loads {
            let app = &self.apps[app_id.0 as usize];
            let mut success = 1.0_f64;
            let mut rt = 0.0;
            for svc in &app.services {
                if svc.instances.is_empty() {
                    continue;
                }
                let mut svc_offered = 0.0;
                let mut svc_achieved = 0.0;
                let mut svc_rt = 0.0;
                for &inst in &svc.instances {
                    if let Some((_, tick)) = ticks.iter().find(|(i, _)| *i == inst) {
                        svc_offered += offered.get(&inst).copied().unwrap_or(0.0);
                        svc_achieved += tick.achieved_rps;
                        svc_rt += tick.response_ms;
                    }
                }
                let svc_rt_avg = svc_rt / svc.instances.len() as f64;
                let frac = if svc_offered > 0.0 {
                    (svc_achieved / svc_offered).min(1.0)
                } else {
                    1.0
                };
                success *= frac;
                rt += svc.role.fanout * svc_rt_avg;
            }
            let throughput = load * success;
            kpis.push((
                app_id,
                AppKpi {
                    offered_rps: load,
                    throughput_rps: throughput,
                    response_ms: rt,
                    dropped_rps: load - throughput,
                },
            ));
        }

        // Host signals and agent collection per node, scanning the whole
        // fleet per node as the dense loop always did.
        let mut observations = Vec::new();
        for i in 0..self.node_ids.len() {
            let node_id = self.node_ids[i];
            let (s, p) = self.node_loc[i];
            let entry = &self.shards[s as usize].nodes[p as usize];
            let spec = &entry.spec;
            let mut cpu_used = 0.0;
            let mut disk_read = 0.0;
            let mut disk_write = 0.0;
            let mut net_in = 0.0;
            let mut net_out = 0.0;
            let mut conns = 0.0;
            let mut procs = 0.0;
            let mut queue = 0.0;
            let mut pgfault = 0.0;
            let mut mem_used = 6.0; // GiB of host OS overhead
            let mut ctr_signals = Vec::new();
            for (id, tick) in &ticks {
                if self.locator.get(id).copied() != Some(node_id) {
                    continue;
                }
                let s = &tick.signals;
                cpu_used += s.cpu_usage_cores;
                disk_read += s.disk_read_bytes;
                disk_write += s.disk_write_bytes;
                net_in += s.net_in_bytes;
                net_out += s.net_out_bytes;
                conns += s.tcp_conns;
                procs += s.nprocs;
                queue += s.disk_queue;
                pgfault += s.pgfault_rate;
                mem_used += s.mem_usage_bytes / (1024.0 * 1024.0 * 1024.0);
                ctr_signals.push((*id, *s));
            }
            let cpu_util = (cpu_used / spec.cores).clamp(0.0, 1.0);
            let disk_bps = disk_read + disk_write;
            let disk_util = (disk_bps / spec.disk_bytes_per_sec()).clamp(0.0, 1.0);
            let net_util = ((net_in + net_out) / spec.net_bytes_per_sec()).clamp(0.0, 1.0);
            let mem_util = (mem_used / spec.memory_gb).clamp(0.0, 1.0);
            let iowait = 0.3 * disk_util * (1.0 - cpu_util);
            let host = HostSignals {
                cpu_util,
                cpu_user: cpu_util * 0.72,
                cpu_sys: cpu_util * 0.25,
                cpu_iowait: iowait,
                ctx_switch_rate: 2000.0 + 40.0 * conns + 8000.0 * cpu_util * spec.cores,
                intr_rate: 1000.0 + (net_in + net_out) / 6000.0,
                syscall_rate: 5000.0 + 100.0 * conns,
                nprocs: 180.0 + procs,
                runnable: cpu_util * spec.cores * 1.2,
                load1: cpu_util * spec.cores + queue * 0.5,
                mem_util,
                mem_used_bytes: mem_used * 1024.0 * 1024.0 * 1024.0,
                mem_cached_bytes: (spec.memory_gb - mem_used).max(0.0)
                    * 0.4
                    * 1024.0
                    * 1024.0
                    * 1024.0,
                mem_dirty_bytes: disk_write * 2.0,
                pgin_rate: disk_read / 4096.0,
                pgout_rate: disk_write / 4096.0,
                pgfault_rate: pgfault + 500.0,
                swap_rate: if mem_util > 0.95 {
                    (mem_util - 0.95) * 1e5
                } else {
                    0.0
                },
                net_in_bytes: net_in,
                net_out_bytes: net_out,
                net_in_pkts: net_in / 800.0,
                net_out_pkts: net_out / 800.0,
                net_err_rate: net_util * net_util * 20.0,
                net_util,
                tcp_estab: conns + 15.0,
                tcp_inuse: conns * 1.2 + 30.0,
                tcp_retrans: net_util.powi(3) * 200.0,
                disk_read_bytes: disk_read,
                disk_write_bytes: disk_write,
                disk_iops: disk_bps / 16_384.0,
                disk_aveq: queue,
                disk_util,
                inodes_free: 1_500_000.0 - 100.0 * procs,
            };
            obs::observe("sim.node_queue_depth", queue);
            observations.push(entry.agent.collect(t, &host, &ctr_signals));
        }

        self.time += 1;
        self.stats.ticks += 1;
        // The dense pass evaluated containers behind the incremental
        // caches' back: force a from-scratch recompute next tick.
        self.caches_valid = false;
        TickReport {
            time: t,
            observations,
            kpis,
            containers: ticks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_node_cluster() -> (Cluster, AppId, InstanceId) {
        let mut cluster = Cluster::new(vec![NodeSpec::training_server()], 1);
        let app = cluster.add_app("svc-app");
        let inst = cluster.add_service(
            app,
            ServiceRole {
                name: "web".into(),
                profile: ServiceProfile::test_cpu_bound("web", 10.0),
                fanout: 1.0,
                limits: ContainerLimits::cpu(1.0),
            },
            NodeId(0),
        );
        (cluster, app, inst)
    }

    #[test]
    fn step_produces_observations_and_kpis() {
        let (mut cluster, app, inst) = one_node_cluster();
        let report = cluster.step(&[(app, 50.0)]);
        assert_eq!(report.observations.len(), 1);
        assert_eq!(report.observations[0].host.len(), 952);
        assert!(report.observations[0].instance_vector(inst).is_some());
        let kpi = report.kpi(app).unwrap();
        assert!((kpi.throughput_rps - 50.0).abs() < 1.0);
        assert!(kpi.response_ms < 100.0);
    }

    #[test]
    fn overload_degrades_kpi() {
        let (mut cluster, app, _) = one_node_cluster();
        // Capacity is ~100 rps; offered 300 rps must eventually drop.
        let mut last = None;
        for _ in 0..10 {
            last = Some(cluster.step(&[(app, 300.0)]));
        }
        let report = last.unwrap();
        let kpi = report.kpi(app).unwrap();
        assert!(kpi.throughput_rps < 150.0);
        assert!(kpi.dropped_rps > 0.0);
        assert!(kpi.response_ms > 1000.0);
    }

    #[test]
    fn scale_out_increases_capacity() {
        let (mut cluster, app, _) = one_node_cluster();
        for _ in 0..5 {
            cluster.step(&[(app, 300.0)]);
        }
        let before = cluster
            .step(&[(app, 300.0)])
            .kpi(app)
            .unwrap()
            .throughput_rps;
        let extra = cluster.scale_out(app, "web", NodeId(0)).unwrap();
        // Let queues drain relative to the new capacity.
        for _ in 0..10 {
            cluster.step(&[(app, 300.0)]);
        }
        let after = cluster
            .step(&[(app, 300.0)])
            .kpi(app)
            .unwrap()
            .throughput_rps;
        assert!(after > before * 1.5, "{before} -> {after}");
        assert!(cluster.scale_in(extra));
        assert_eq!(cluster.container_count(), 1);
    }

    #[test]
    fn scale_out_unknown_targets_are_errors() {
        let (mut cluster, app, _) = one_node_cluster();
        match cluster.scale_out(app, "nope", NodeId(0)) {
            Err(ClusterError::UnknownService { service, known, .. }) => {
                assert_eq!(service, "nope");
                assert_eq!(known, vec!["web".to_string()]);
            }
            other => panic!("expected UnknownService, got {other:?}"),
        }
        assert_eq!(
            cluster.scale_out(app, "web", NodeId(9)),
            Err(ClusterError::UnknownNode(NodeId(9)))
        );
        assert_eq!(
            cluster.scale_out(AppId(7), "web", NodeId(0)),
            Err(ClusterError::UnknownApp(AppId(7)))
        );
        // Failed scale-outs leave the cluster untouched.
        assert_eq!(cluster.container_count(), 1);
    }

    #[test]
    fn scale_in_keeps_last_instance() {
        let (mut cluster, app, inst) = one_node_cluster();
        assert!(!cluster.scale_in(inst));
        let _ = app;
        assert_eq!(cluster.container_count(), 1);
    }

    #[test]
    fn scale_in_to_zero_removes_last_instance() {
        let (mut cluster, app, inst) = one_node_cluster();
        assert!(cluster.scale_in_to_zero(inst));
        assert_eq!(cluster.container_count(), 0);
        // An empty service serves nothing but the cluster still ticks:
        // the report simply carries no container rows for it.
        let report = cluster.step(&[(app, 50.0)]);
        assert!(report.containers.is_empty());
        // Scale-out from zero restores capacity.
        let back = cluster.scale_out(app, "web", NodeId(0)).unwrap();
        assert_ne!(back, inst);
        assert_eq!(cluster.container_count(), 1);
    }

    #[test]
    fn colocated_containers_interfere() {
        let mut cluster = Cluster::new(vec![NodeSpec::m3()], 2); // 8 cores
        let a = cluster.add_app("a");
        let b = cluster.add_app("b");
        // Each wants 6 cores at full load: together they exceed the node.
        for (app, name) in [(a, "sa"), (b, "sb")] {
            cluster.add_service(
                app,
                ServiceRole {
                    name: name.into(),
                    profile: ServiceProfile::test_cpu_bound(name, 10.0),
                    fanout: 1.0,
                    limits: ContainerLimits::unlimited(),
                },
                NodeId(0),
            );
        }
        // Alone, app A at 590 rps (5.9 cores) is fine.
        let solo = cluster.step(&[(a, 590.0)]);
        assert!(solo.kpi(a).unwrap().response_ms < 200.0);
        // Together, 590 + 590 rps exceed 8 cores: both degrade.
        let mut both = None;
        for _ in 0..8 {
            both = Some(cluster.step(&[(a, 590.0), (b, 590.0)]));
        }
        let both = both.unwrap();
        assert!(both.kpi(a).unwrap().response_ms > solo.kpi(a).unwrap().response_ms * 2.0);
        assert!(both.kpi(b).unwrap().dropped_rps > 0.0);
    }

    #[test]
    fn owner_and_node_lookup() {
        let (cluster, app, inst) = one_node_cluster();
        assert_eq!(cluster.node_of(inst), Some(NodeId(0)));
        let (owner, svc) = cluster.owner_of(inst).unwrap();
        assert_eq!(owner, app);
        assert_eq!(svc, "web");
        assert_eq!(cluster.app(app).instances(), vec![inst]);
    }

    #[test]
    fn multi_service_chain_sums_response_times() {
        let mut cluster = Cluster::new(vec![NodeSpec::training_server()], 3);
        let app = cluster.add_app("chain");
        for name in ["front", "back"] {
            cluster.add_service(
                app,
                ServiceRole {
                    name: name.into(),
                    profile: ServiceProfile::test_cpu_bound(name, 5.0),
                    fanout: 1.0,
                    limits: ContainerLimits::unlimited(),
                },
                NodeId(0),
            );
        }
        let report = cluster.step(&[(app, 10.0)]);
        let kpi = report.kpi(app).unwrap();
        // Two services, each ~5 ms base latency.
        assert!(kpi.response_ms > 9.0 && kpi.response_ms < 30.0);
    }

    #[test]
    fn time_advances() {
        let (mut cluster, app, _) = one_node_cluster();
        assert_eq!(cluster.time(), 0);
        cluster.step(&[(app, 1.0)]);
        cluster.step(&[(app, 1.0)]);
        assert_eq!(cluster.time(), 2);
    }

    // --- incremental-path invariants ---

    fn two_app_cluster(seed: u64) -> (Cluster, AppId, AppId) {
        // Four nodes: app A spans nodes 0 and 2 (two services), app B
        // lives on node 1, node 3 stays empty.
        let mut cluster = Cluster::new(
            vec![
                NodeSpec::m3(),
                NodeSpec::m2(),
                NodeSpec::m3(),
                NodeSpec::m1(),
            ],
            seed,
        );
        let a = cluster.add_app("a");
        let b = cluster.add_app("b");
        cluster.add_service(
            a,
            ServiceRole {
                name: "front".into(),
                profile: ServiceProfile::test_cpu_bound("front", 8.0),
                fanout: 1.0,
                limits: ContainerLimits::cpu(2.0),
            },
            NodeId(0),
        );
        cluster.add_service(
            a,
            ServiceRole {
                name: "back".into(),
                profile: ServiceProfile::test_cpu_bound("back", 4.0),
                fanout: 2.0,
                limits: ContainerLimits::unlimited(),
            },
            NodeId(2),
        );
        cluster.add_service(
            b,
            ServiceRole {
                name: "solo".into(),
                profile: ServiceProfile::test_cpu_bound("solo", 12.0),
                fanout: 1.0,
                limits: ContainerLimits::cpu(1.0),
            },
            NodeId(1),
        );
        (cluster, a, b)
    }

    fn assert_reports_identical(fast: &TickReport, dense: &TickReport, t: u64) {
        assert_eq!(fast.time, dense.time, "t={t}");
        assert_eq!(fast.observations.len(), dense.observations.len());
        for (f, d) in fast.observations.iter().zip(&dense.observations) {
            assert_eq!(f.node, d.node, "t={t}");
            assert_eq!(f.time, d.time, "t={t}");
            assert_eq!(f.host.len(), d.host.len());
            for (i, (a, b)) in f.host.iter().zip(&d.host).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "t={t} node {} host[{i}]", f.node);
            }
            assert_eq!(f.containers.len(), d.containers.len());
            for ((fi, fv), (di, dv)) in f.containers.iter().zip(&d.containers) {
                assert_eq!(fi, di, "t={t}");
                for (i, (a, b)) in fv.iter().zip(dv).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "t={t} inst {fi} metric[{i}]");
                }
            }
        }
        assert_eq!(fast.kpis.len(), dense.kpis.len());
        for ((fa, fk), (da, dk)) in fast.kpis.iter().zip(&dense.kpis) {
            assert_eq!(fa, da);
            assert_eq!(fk.offered_rps.to_bits(), dk.offered_rps.to_bits(), "t={t}");
            assert_eq!(fk.throughput_rps.to_bits(), dk.throughput_rps.to_bits(), "t={t}");
            assert_eq!(fk.response_ms.to_bits(), dk.response_ms.to_bits(), "t={t}");
            assert_eq!(fk.dropped_rps.to_bits(), dk.dropped_rps.to_bits(), "t={t}");
        }
        assert_eq!(fast.containers.len(), dense.containers.len());
        for ((fi, ft), (di, dt)) in fast.containers.iter().zip(&dense.containers) {
            assert_eq!(fi, di, "t={t}");
            assert_eq!(ft, dt, "t={t} instance {fi}");
        }
    }

    #[test]
    fn incremental_step_matches_dense_legacy_bitwise() {
        let (mut fast, a, b) = two_app_cluster(11);
        let (mut dense, _, _) = two_app_cluster(11);
        let mut report = TickReport::empty();
        for t in 0..60u64 {
            // Constant stretches (cache-friendly), load steps, and a
            // mid-episode scale-out/in to exercise the topology barrier.
            let la = if t < 20 { 200.0 } else { 650.0 };
            let lb = if t % 10 < 5 { 40.0 } else { 90.0 };
            if t == 30 {
                let f = fast.scale_out(a, "front", NodeId(3)).unwrap();
                let d = dense.scale_out(a, "front", NodeId(3)).unwrap();
                assert_eq!(f, d);
            }
            if t == 45 {
                let victim = fast.app(a).instances_of("front")[1];
                assert!(fast.scale_in(victim));
                assert!(dense.scale_in(victim));
            }
            let loads = [(a, la), (b, lb)];
            fast.step_into(&loads, &mut report);
            let want = dense.step_dense_legacy(&loads);
            assert_reports_identical(&report, &want, t);
        }
        // Long constant-load tail: memory relaxation converges bitwise
        // after ~150 ticks, after which the fixed-point cache kicks in.
        for t in 60..300u64 {
            let loads = [(a, 300.0), (b, 50.0)];
            fast.step_into(&loads, &mut report);
            let want = dense.step_dense_legacy(&loads);
            assert_reports_identical(&report, &want, t);
        }
        assert!(fast.stats().cached_ticks > 0, "{:?}", fast.stats());
        assert!(dense.stats().cached_ticks == 0);
    }

    #[test]
    fn dense_and_incremental_interleave_consistently() {
        let (mut mixed, a, b) = two_app_cluster(5);
        let (mut dense, _, _) = two_app_cluster(5);
        for t in 0..12u64 {
            let loads = [(a, 120.0), (b, 60.0)];
            let want = dense.step_dense_legacy(&loads);
            let got = if t % 3 == 2 {
                mixed.step_dense_legacy(&loads)
            } else {
                mixed.step(&loads)
            };
            assert_reports_identical(&got, &want, t);
        }
    }

    #[test]
    fn shards_group_by_app_placement() {
        let (mut cluster, a, b) = two_app_cluster(7);
        cluster.sync_topology();
        // {0,2} coupled by app A, {1} for app B, {3} empty.
        assert_eq!(cluster.shard_count(), 3);
        assert_eq!(cluster.shard_of_app(a), Some(0));
        assert_eq!(cluster.shard_of_app(b), Some(1));
        // Scale A onto node 3: its group absorbs the empty node.
        cluster.scale_out(a, "front", NodeId(3)).unwrap();
        cluster.sync_topology();
        assert_eq!(cluster.shard_count(), 2);
        assert_eq!(cluster.shard_of_app(a), Some(0));
    }

    #[test]
    fn parallel_shards_match_serial_bitwise() {
        let (mut serial, a, b) = two_app_cluster(13);
        let (mut parallel, _, _) = two_app_cluster(13);
        parallel.set_n_jobs(4);
        let mut rs = TickReport::empty();
        let mut rp = TickReport::empty();
        for t in 0..10u64 {
            let loads = [(a, 150.0 + t as f64), (b, 70.0)];
            serial.step_into(&loads, &mut rs);
            parallel.step_into(&loads, &mut rp);
            assert_reports_identical(&rp, &rs, t);
        }
    }

    #[test]
    fn settled_cluster_fast_forwards() {
        let (mut cluster, app, _) = one_node_cluster();
        for _ in 0..200 {
            cluster.step(&[(app, 50.0)]);
        }
        assert!(cluster.is_settled(), "constant load must reach a fixed point");
        let before = cluster.step(&[(app, 50.0)]);
        cluster.fast_forward(1000);
        assert_eq!(cluster.time(), 201 + 1000);
        let after = cluster.step(&[(app, 50.0)]);
        // State was frozen: the KPI is bit-identical across the gap.
        let (b, a) = (before.kpi(app).unwrap(), after.kpi(app).unwrap());
        assert_eq!(b.throughput_rps.to_bits(), a.throughput_rps.to_bits());
        assert_eq!(b.response_ms.to_bits(), a.response_ms.to_bits());
        assert!(cluster.stats().skipped_seconds == 1000);
    }

    #[test]
    fn report_container_lookup_is_sorted() {
        let (mut c, a, b) = two_app_cluster(3);
        c.scale_out(a, "back", NodeId(2)).unwrap();
        let report = c.step(&[(a, 100.0), (b, 30.0)]);
        assert!(report.containers.windows(2).all(|w| w[0].0 < w[1].0));
        for (id, tick) in &report.containers {
            assert_eq!(report.container(*id), Some(tick));
        }
        assert_eq!(report.container(InstanceId(999)), None);
    }
}
