//! Discrete-time cloud/container simulator for the *monitorless*
//! reproduction.
//!
//! The paper's substrate is a physical testbed (HP ProLiant servers,
//! Docker, cgroups, CloudSuite services). This crate replaces it with an
//! explicit resource/queueing model that produces, per monitored second,
//! exactly what the real testbed produced:
//!
//! * per-node **host signals** and per-container **container signals**
//!   (expanded to the full 1040-metric PCP catalog by
//!   [`monitorless_metrics`]);
//! * per-application **KPIs**: achieved throughput, average end-to-end
//!   response time, dropped and failed requests.
//!
//! The model captures the phenomena the classifier must learn:
//!
//! * **cgroup-style limits** — a container's CPU capacity is the minimum
//!   of its core limit and its fair share of the node; exceeding the CPU
//!   limit shows up as cgroup throttling, exceeding the memory limit as
//!   cache misses that spill to disk (page thrashing);
//! * **queueing** — response time grows hyperbolically with utilization
//!   (`R = S / (1 − ρ)`); a bounded backlog queue produces drops and
//!   3-second timeouts at overload, exactly the latency effects that
//!   motivate the paper's lagged `F1_k` metrics;
//! * **co-location interference** — containers on the same node contend
//!   for host CPU, disk bandwidth and network capacity;
//! * **multi-service applications** — requests fan out over service
//!   chains (TeaStore's 7 services, Sockshop's 14), so the application
//!   KPI degrades when *any* service on the critical path saturates.
//!
//! [`apps`] provides calibrated service profiles for every system the
//! paper uses: Solr, Memcache, Cassandra (training), and the Elgg
//! three-tier stack, TeaStore and Sockshop (evaluation).
//!
//! Two execution modes share one engine. [`Cluster::step`] advances one
//! second incrementally (fixed-point container caching, per-node
//! contention factors, shard-parallel evaluation);
//! [`Cluster::step_dense_legacy`] is the original dense per-second loop,
//! kept as the equivalence oracle. [`event::EventSim`] drives the
//! cluster from an event queue — load change points, scheduled scale
//! actions, monitoring samples — skipping idle seconds entirely, with a
//! monitoring-boundary report stream that is bit-identical to the dense
//! loop's.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod container;
pub mod engine;
pub mod error;
pub mod event;
pub mod kpi;
pub mod resources;
pub mod service;

pub use container::{Bottleneck, Container, ContainerState};
pub use engine::{AppId, Application, Cluster, ServiceRole, SimStats, TickReport};
pub use error::ClusterError;
pub use event::{EventSim, EventStats, ScaleOutcome};
pub use kpi::AppKpi;
pub use resources::{ContainerLimits, NodeSpec};
pub use service::ServiceProfile;
