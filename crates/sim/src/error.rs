//! Simulator error types.

use monitorless_metrics::NodeId;

use crate::engine::AppId;

/// Errors produced by cluster topology operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The application id does not refer to a registered application.
    UnknownApp(AppId),
    /// The application has no service with the given name.
    UnknownService {
        /// Application whose services were searched.
        app: AppId,
        /// The requested service name.
        service: String,
        /// Names of the services that do exist, for diagnostics.
        known: Vec<String>,
    },
    /// The node id does not refer to a node in the cluster.
    UnknownNode(NodeId),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownApp(app) => {
                write!(f, "unknown application id {}", app.0)
            }
            ClusterError::UnknownService {
                app,
                service,
                known,
            } => write!(
                f,
                "application {} has no service {service:?} (known services: {})",
                app.0,
                known.join(", ")
            ),
            ClusterError::UnknownNode(node) => write!(f, "unknown node {node}"),
        }
    }
}

impl std::error::Error for ClusterError {}
