//! Property-based tests for the simulator's physical invariants.

use monitorless_metrics::NodeId;
use monitorless_sim::apps::build_single;
use monitorless_sim::{Cluster, ContainerLimits, NodeSpec, ServiceProfile};
use proptest::prelude::*;

fn cluster_with(limit_cores: f64, cpu_ms: f64, seed: u64) -> (Cluster, monitorless_sim::AppId) {
    let mut cluster = Cluster::new(vec![NodeSpec::training_server()], seed);
    let (app, _) = build_single(
        &mut cluster,
        ServiceProfile::test_cpu_bound("svc", cpu_ms),
        ContainerLimits::cpu(limit_cores),
        NodeId(0),
    );
    (cluster, app)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn throughput_never_exceeds_offered_load(
        load in 0.0_f64..2000.0,
        cores in 0.5_f64..8.0,
        seed in 0u64..50,
    ) {
        let (mut cluster, app) = cluster_with(cores, 10.0, seed);
        for _ in 0..5 {
            let report = cluster.step(&[(app, load)]);
            let kpi = report.kpi(app).unwrap();
            prop_assert!(kpi.throughput_rps <= load + 1e-9);
            prop_assert!(kpi.throughput_rps >= 0.0);
            prop_assert!(kpi.dropped_rps >= 0.0);
        }
    }

    #[test]
    fn throughput_respects_cpu_capacity(
        load in 500.0_f64..5000.0,
        cores in 1.0_f64..4.0,
        seed in 0u64..50,
    ) {
        // 10 ms/request: capacity = cores * 100 rps.
        let (mut cluster, app) = cluster_with(cores, 10.0, seed);
        let mut last = 0.0;
        for _ in 0..8 {
            let report = cluster.step(&[(app, load)]);
            last = report.kpi(app).unwrap().throughput_rps;
        }
        prop_assert!(last <= cores * 100.0 * 1.01, "tp {last} vs cap {}", cores * 100.0);
    }

    #[test]
    fn response_time_is_monotone_in_utilization(
        cores in 1.0_f64..4.0,
        seed in 0u64..50,
    ) {
        let capacity = cores * 100.0;
        let (mut c1, a1) = cluster_with(cores, 10.0, seed);
        let (mut c2, a2) = cluster_with(cores, 10.0, seed);
        let low = c1.step(&[(a1, capacity * 0.2)]).kpi(a1).unwrap().response_ms;
        let high = c2.step(&[(a2, capacity * 0.9)]).kpi(a2).unwrap().response_ms;
        prop_assert!(high >= low, "{low} -> {high}");
    }

    #[test]
    fn observations_always_cover_all_instances(
        load in 0.0_f64..500.0,
        seed in 0u64..50,
    ) {
        let (mut cluster, app) = cluster_with(2.0, 10.0, seed);
        cluster.scale_out(app, "svc", NodeId(0)).unwrap();
        let report = cluster.step(&[(app, load)]);
        let instances = cluster.app(app).instances();
        prop_assert_eq!(instances.len(), 2);
        for &inst in instances {
            prop_assert!(
                report.observations.iter().any(|o| o.instance_vector(inst).is_some())
            );
        }
    }

    #[test]
    fn kpi_response_time_is_capped_at_timeout(
        load in 5000.0_f64..50_000.0,
        seed in 0u64..20,
    ) {
        let (mut cluster, app) = cluster_with(1.0, 10.0, seed);
        for _ in 0..6 {
            cluster.step(&[(app, load)]);
        }
        let report = cluster.step(&[(app, load)]);
        let per_container = &report.containers[0].1;
        prop_assert!(per_container.response_ms <= monitorless_sim::container::TIMEOUT_MS + 1e-9);
    }
}
