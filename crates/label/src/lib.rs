//! KPI labeling for the *monitorless* reproduction.
//!
//! Section 2.2 of the paper labels training data by finding the knee of
//! the workload→KPI curve from a linearly increasing load test:
//!
//! 1. smooth the curve with a Savitzky-Golay filter ([`savgol`]);
//! 2. normalize both axes to the unit square;
//! 3. compute the difference curve `β_i − α_i`;
//! 4. take a local maximum of the difference curve as the knee
//!    (Satopää et al.'s *Kneedle*, [`kneedle`]);
//! 5. use the KPI value at the knee as the saturation threshold `Υ` and
//!    label every sample with `KPI > Υ` as saturated ([`threshold`]).
//!
//! ```
//! use monitorless_label::kneedle::{detect_knee, KneedleParams};
//!
//! // A saturating curve: linear then flat, knee near x = 50.
//! let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
//! let y: Vec<f64> = x.iter().map(|&v| v.min(50.0)).collect();
//! let knee = detect_knee(&x, &y, &KneedleParams::default()).unwrap();
//! assert!((knee.x - 50.0).abs() < 5.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod kneedle;
pub mod savgol;
pub mod threshold;

pub use kneedle::{detect_knee, Knee, KneedleParams};
pub use savgol::SavitzkyGolay;
pub use threshold::{label_series, SaturationDirection, SaturationThreshold};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Input series was too short for the requested operation.
    TooShort {
        /// Minimum length required.
        needed: usize,
        /// Length received.
        got: usize,
    },
    /// Two parallel series differ in length.
    LengthMismatch,
    /// A parameter was out of range.
    InvalidParameter(String),
    /// No knee/local maximum could be found.
    NoKnee,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::TooShort { needed, got } => {
                write!(f, "series too short: need at least {needed}, got {got}")
            }
            Error::LengthMismatch => write!(f, "series lengths do not match"),
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::NoKnee => write!(f, "no knee found in the difference curve"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(Error::NoKnee.to_string().contains("knee"));
        assert!(Error::TooShort { needed: 5, got: 2 }
            .to_string()
            .contains('5'));
    }
}
