//! Saturation-threshold labeling (`P̃_A` in the paper).

use crate::kneedle::{detect_knee, KneedleParams};
use crate::Error;

/// Which side of the threshold means "saturated".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaturationDirection {
    /// KPI values *above* the threshold are saturated (throughput-like:
    /// past the knee the service is at capacity).
    Above,
    /// KPI values *below* the threshold are saturated (e.g. goodput
    /// collapse or availability KPIs).
    Below,
}

/// A calibrated saturation threshold `Υ` for one application.
///
/// ```
/// use monitorless_label::{SaturationThreshold, SaturationDirection};
///
/// let t = SaturationThreshold::new(700.0, SaturationDirection::Above);
/// assert_eq!(t.label(650.0), 0);
/// assert_eq!(t.label(710.0), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationThreshold {
    upsilon: f64,
    direction: SaturationDirection,
}

impl SaturationThreshold {
    /// Creates a threshold directly from a known `Υ`.
    pub fn new(upsilon: f64, direction: SaturationDirection) -> Self {
        SaturationThreshold { upsilon, direction }
    }

    /// Calibrates `Υ` from a linearly increasing load test: detects the
    /// knee of `(workload, kpi)` and uses the KPI at the knee
    /// (paper Section 2.2).
    ///
    /// # Errors
    ///
    /// Propagates knee-detection errors.
    pub fn calibrate(
        workload: &[f64],
        kpi: &[f64],
        params: &KneedleParams,
        direction: SaturationDirection,
    ) -> Result<Self, Error> {
        let knee = detect_knee(workload, kpi, params)?;
        Ok(SaturationThreshold {
            upsilon: knee.y,
            direction,
        })
    }

    /// The threshold value `Υ`.
    pub fn upsilon(&self) -> f64 {
        self.upsilon
    }

    /// The saturation direction.
    pub fn direction(&self) -> SaturationDirection {
        self.direction
    }

    /// Labels one KPI observation: 1 = saturated, 0 = not saturated.
    ///
    /// Matches the paper's `P̃_A(t)`: 0 iff `P_A(t) ≤ Υ` for
    /// [`SaturationDirection::Above`].
    pub fn label(&self, kpi: f64) -> u8 {
        match self.direction {
            SaturationDirection::Above => u8::from(kpi > self.upsilon),
            SaturationDirection::Below => u8::from(kpi < self.upsilon),
        }
    }
}

/// Labels a whole KPI series.
pub fn label_series(kpi: &[f64], threshold: &SaturationThreshold) -> Vec<u8> {
    kpi.iter().map(|&v| threshold.label(v)).collect()
}

monitorless_std::json_enum!(SaturationDirection { Above, Below });
monitorless_std::json_struct!(SaturationThreshold { upsilon, direction });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn above_direction_labels_high_values() {
        let t = SaturationThreshold::new(100.0, SaturationDirection::Above);
        assert_eq!(t.label(100.0), 0, "boundary is not saturated");
        assert_eq!(t.label(100.1), 1);
        assert_eq!(t.label(0.0), 0);
    }

    #[test]
    fn below_direction_labels_low_values() {
        let t = SaturationThreshold::new(10.0, SaturationDirection::Below);
        assert_eq!(t.label(5.0), 1);
        assert_eq!(t.label(10.0), 0);
        assert_eq!(t.label(15.0), 0);
    }

    #[test]
    fn calibrate_from_ramp() {
        // Throughput saturates at 60: the calibrated threshold should be
        // near 60 and label the flat region as saturated.
        let workload: Vec<f64> = (0..150).map(|i| i as f64).collect();
        let kpi: Vec<f64> = workload.iter().map(|&v| v.min(60.0)).collect();
        let t = SaturationThreshold::calibrate(
            &workload,
            &kpi,
            &KneedleParams::default(),
            SaturationDirection::Above,
        )
        .unwrap();
        assert!((t.upsilon() - 60.0).abs() < 6.0, "upsilon = {}", t.upsilon());
        let labels = label_series(&kpi, &t);
        assert_eq!(labels[10], 0);
        // Points just below the cap but above the knee's smoothed value
        // may or may not be labeled; far past the knee the cap value is
        // only saturated if upsilon sits strictly below it.
        let saturated: usize = labels.iter().map(|&l| l as usize).sum();
        let expected_saturated = kpi.iter().filter(|&&v| v > t.upsilon()).count();
        assert_eq!(saturated, expected_saturated);
    }

    #[test]
    fn series_labeling_matches_pointwise() {
        let t = SaturationThreshold::new(5.0, SaturationDirection::Above);
        assert_eq!(label_series(&[1.0, 6.0, 5.0], &t), vec![0, 1, 0]);
    }

    #[test]
    fn threshold_serializes() {
        let t = SaturationThreshold::new(42.0, SaturationDirection::Above);
        let back: SaturationThreshold =
            monitorless_std::json::from_str(&monitorless_std::json::to_string(&t)).unwrap();
        assert_eq!(back, t);
    }
}
