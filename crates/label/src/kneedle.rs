//! The Kneedle knee/elbow detector (Satopää et al. 2011), as specialized
//! by the paper (Section 2.2).

use crate::savgol::SavitzkyGolay;
use crate::Error;

/// Parameters for [`detect_knee`].
#[derive(Debug, Clone, PartialEq)]
pub struct KneedleParams {
    /// Savitzky-Golay window (odd, ≥ 3).
    pub smooth_window: usize,
    /// Savitzky-Golay polynomial degree.
    pub smooth_degree: usize,
    /// If true, the curve is assumed concave-down (throughput-like,
    /// positive concavity in the paper's phrasing). If false the inputs
    /// are flipped as described in Section 2.2 for the opposite case.
    pub concave_down: bool,
    /// Minimum normalized height of the difference curve for a local
    /// maximum to count as a knee candidate; filters numerical noise on
    /// (near-)linear curves.
    pub min_strength: f64,
}

impl Default for KneedleParams {
    fn default() -> Self {
        KneedleParams {
            smooth_window: 11,
            smooth_degree: 2,
            concave_down: true,
            min_strength: 0.01,
        }
    }
}

/// A detected knee.
#[derive(Debug, Clone, PartialEq)]
pub struct Knee {
    /// Index of the knee in the input series.
    pub index: usize,
    /// Workload intensity at the knee (original scale).
    pub x: f64,
    /// KPI value at the knee (original scale) — the saturation threshold
    /// `Υ` of the paper.
    pub y: f64,
    /// Height of the difference curve at the knee (normalized units).
    pub strength: f64,
    /// All candidate knees (indices of local maxima of the difference
    /// curve), mirroring the paper's "manually choose the local maximum";
    /// [`detect_knee`] auto-selects the strongest.
    pub candidates: Vec<usize>,
    /// The smoothed KPI curve (original scale), useful for plotting
    /// (Figure 2's orange curve).
    pub smoothed: Vec<f64>,
    /// The difference curve `β_i − α_i` in normalized units (Figure 2's
    /// green curve).
    pub difference: Vec<f64>,
}

/// Normalizes a series to `[0, 1]`; constant series map to all-zeros.
pub fn normalize_unit(v: &[f64]) -> Vec<f64> {
    let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = max - min;
    v.iter()
        .map(|&x| if range > 0.0 { (x - min) / range } else { 0.0 })
        .collect()
}

/// Detects the knee of the discrete function `f(x_i) = y_i`.
///
/// Implements the paper's four labeling steps: Savitzky-Golay smoothing,
/// unit-square normalization, difference curve, local-maximum selection.
/// The strongest local maximum is returned; all candidates are listed in
/// [`Knee::candidates`] for the "visual sanity check" the paper
/// recommends.
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] when `x` and `y` differ in length,
/// [`Error::TooShort`] when the series is shorter than the smoothing
/// window, and [`Error::NoKnee`] when the difference curve has no local
/// maximum (e.g. a perfectly linear KPI).
pub fn detect_knee(x: &[f64], y: &[f64], params: &KneedleParams) -> Result<Knee, Error> {
    if x.len() != y.len() {
        return Err(Error::LengthMismatch);
    }
    let sg = SavitzkyGolay::new(params.smooth_window, params.smooth_degree)?;
    let smoothed = sg.smooth(y)?;

    // Flip for curves with the opposite concavity (Section 2.2).
    let (xs, ys): (Vec<f64>, Vec<f64>) = if params.concave_down {
        (x.to_vec(), smoothed.clone())
    } else {
        let xmax = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let ymax = smoothed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (x.iter().map(|&v| xmax - v).collect(), smoothed.iter().map(|&v| ymax - v).collect())
    };

    let xn = normalize_unit(&xs);
    let yn = normalize_unit(&ys);
    let difference: Vec<f64> = yn.iter().zip(&xn).map(|(b, a)| b - a).collect();

    // Local maxima of the difference curve (strictly greater than the
    // previous point, at least as great as the next).
    let mut candidates = Vec::new();
    for i in 1..difference.len() - 1 {
        if difference[i] > difference[i - 1]
            && difference[i] >= difference[i + 1]
            && difference[i] >= params.min_strength
        {
            candidates.push(i);
        }
    }
    let &best = candidates
        .iter()
        .max_by(|&&a, &&b| {
            difference[a]
                .partial_cmp(&difference[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .ok_or(Error::NoKnee)?;

    Ok(Knee {
        index: best,
        x: x[best],
        y: smoothed[best],
        strength: difference[best],
        candidates,
        smoothed,
        difference,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saturating_curve(n: usize, knee_at: f64, cap: f64) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        // Smooth saturating curve: y = cap * (1 - exp(-x/knee)).
        let y: Vec<f64> = x
            .iter()
            .map(|&v| cap * (1.0 - (-v / knee_at).exp()))
            .collect();
        (x, y)
    }

    #[test]
    fn knee_of_piecewise_linear() {
        let x: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| v.min(60.0)).collect();
        let knee = detect_knee(&x, &y, &KneedleParams::default()).unwrap();
        assert!((knee.x - 60.0).abs() < 5.0, "knee at {}", knee.x);
        assert!((knee.y - 60.0).abs() < 5.0);
    }

    #[test]
    fn knee_of_exponential_saturation() {
        let (x, y) = saturating_curve(200, 40.0, 1000.0);
        let knee = detect_knee(&x, &y, &KneedleParams::default()).unwrap();
        // The Kneedle knee of 1-exp(-x/τ) lands within a couple of τ.
        assert!(knee.x > 20.0 && knee.x < 120.0, "knee at {}", knee.x);
        assert!(knee.strength > 0.1);
    }

    #[test]
    fn noisy_curve_still_finds_knee() {
        let (x, mut y) = saturating_curve(300, 50.0, 700.0);
        for (i, v) in y.iter_mut().enumerate() {
            *v += 30.0 * (((i * 2654435761) % 100) as f64 / 100.0 - 0.5);
        }
        let knee = detect_knee(&x, &y, &KneedleParams::default()).unwrap();
        assert!(knee.x > 20.0 && knee.x < 160.0, "knee at {}", knee.x);
    }

    #[test]
    fn linear_curve_has_no_knee() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y = x.clone();
        let res = detect_knee(&x, &y, &KneedleParams::default());
        assert!(matches!(res, Err(Error::NoKnee)));
    }

    #[test]
    fn concave_up_curves_are_flipped() {
        // Response-time-like hockey stick: flat then rising steeply.
        let x: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| {
                if v < 80.0 {
                    10.0
                } else {
                    10.0 + (v - 80.0).powi(2)
                }
            })
            .collect();
        let params = KneedleParams {
            concave_down: false,
            ..KneedleParams::default()
        };
        let knee = detect_knee(&x, &y, &params).unwrap();
        assert!(knee.x > 60.0 && knee.x < 115.0, "knee at {}", knee.x);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(matches!(
            detect_knee(&[1.0], &[1.0, 2.0], &KneedleParams::default()),
            Err(Error::LengthMismatch)
        ));
    }

    #[test]
    fn candidates_include_best() {
        let (x, y) = saturating_curve(150, 30.0, 500.0);
        let knee = detect_knee(&x, &y, &KneedleParams::default()).unwrap();
        assert!(knee.candidates.contains(&knee.index));
        assert_eq!(knee.smoothed.len(), 150);
        assert_eq!(knee.difference.len(), 150);
    }

    #[test]
    fn normalize_unit_handles_constant() {
        assert_eq!(normalize_unit(&[5.0, 5.0]), vec![0.0, 0.0]);
        assert_eq!(normalize_unit(&[0.0, 10.0]), vec![0.0, 1.0]);
    }
}
