//! Savitzky-Golay smoothing (Savitzky & Golay 1964).
//!
//! A window of `2m+1` points is fit with a least-squares polynomial; the
//! smoothed value is the polynomial evaluated at the window position.
//! Coefficients are computed exactly by solving the small normal-equation
//! system with Gaussian elimination — no external linear algebra.

use crate::Error;

/// A configured Savitzky-Golay filter.
///
/// ```
/// use monitorless_label::SavitzkyGolay;
///
/// # fn main() -> Result<(), monitorless_label::Error> {
/// let sg = SavitzkyGolay::new(7, 2)?;
/// // A quadratic is reproduced exactly by a degree-2 fit.
/// let y: Vec<f64> = (0..30).map(|i| (i * i) as f64).collect();
/// let s = sg.smooth(&y)?;
/// for (a, b) in y.iter().zip(&s) {
///     assert!((a - b).abs() < 1e-6);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SavitzkyGolay {
    window: usize,
    degree: usize,
}

impl SavitzkyGolay {
    /// Creates a filter with the given odd `window` length and polynomial
    /// `degree`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the window is even, smaller
    /// than 3, or not larger than the degree.
    pub fn new(window: usize, degree: usize) -> Result<Self, Error> {
        if window < 3 || window.is_multiple_of(2) {
            return Err(Error::InvalidParameter("window must be odd and at least 3".into()));
        }
        if degree + 1 >= window {
            return Err(Error::InvalidParameter("degree must be smaller than window - 1".into()));
        }
        Ok(SavitzkyGolay { window, degree })
    }

    /// The window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The polynomial degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Smooths `y`, returning a series of the same length.
    ///
    /// Boundary points are handled by fitting the first/last full window
    /// and evaluating the polynomial off-center (the standard approach).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooShort`] if `y` is shorter than the window.
    #[allow(clippy::needless_range_loop)]
    pub fn smooth(&self, y: &[f64]) -> Result<Vec<f64>, Error> {
        if y.len() < self.window {
            return Err(Error::TooShort {
                needed: self.window,
                got: y.len(),
            });
        }
        let m = self.window / 2;
        let n = y.len();
        let mut out = vec![0.0; n];

        // Central weights (evaluation at x = 0).
        let center = self.weights_for(0)?;
        for i in m..n - m {
            out[i] = convolve(&y[i - m..=i + m], &center);
        }
        // Left edge: window [0, 2m], evaluate at x = i - m.
        for i in 0..m {
            let w = self.weights_for(i as isize - m as isize)?;
            out[i] = convolve(&y[0..self.window], &w);
        }
        // Right edge: window [n-2m-1, n-1], evaluate at x = i - (n-1-m).
        for i in n - m..n {
            let x = i as isize - (n - 1 - m) as isize;
            let w = self.weights_for(x)?;
            out[i] = convolve(&y[n - self.window..n], &w);
        }
        Ok(out)
    }

    /// Convolution weights that evaluate the least-squares polynomial of
    /// the window at offset `x` (in samples from the window center).
    fn weights_for(&self, x: isize) -> Result<Vec<f64>, Error> {
        let m = self.window as isize / 2;
        let p = self.degree + 1;
        // Normal matrix JᵀJ with J[i][j] = i^j for i in -m..=m.
        let mut jtj = vec![vec![0.0; p]; p];
        for i in -m..=m {
            let fi = i as f64;
            let mut powers = vec![1.0; 2 * p - 1];
            for k in 1..2 * p - 1 {
                powers[k] = powers[k - 1] * fi;
            }
            for (r, row) in jtj.iter_mut().enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v += powers[r + c];
                }
            }
        }
        // Solve JᵀJ · a_k = (x^0, …)ᵀ-projected basis columns; we need
        // w_i = Σ_j x^j · [(JᵀJ)⁻¹ Jᵀ]_{j,i}. Compute u = (JᵀJ)⁻¹ xvec,
        // then w_i = Σ_j u_j i^j.
        let xvec: Vec<f64> = (0..p).map(|j| (x as f64).powi(j as i32)).collect();
        let u = solve(jtj, xvec)?;
        let mut w = Vec::with_capacity(self.window);
        for i in -m..=m {
            let fi = i as f64;
            let mut acc = 0.0;
            let mut pow = 1.0;
            for &uj in &u {
                acc += uj * pow;
                pow *= fi;
            }
            w.push(acc);
        }
        Ok(w)
    }
}

fn convolve(window: &[f64], weights: &[f64]) -> f64 {
    window.iter().zip(weights).map(|(a, b)| a * b).sum()
}

/// Gaussian elimination with partial pivoting for the small SG system.
#[allow(clippy::needless_range_loop)]
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, Error> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&r1, &r2| {
                a[r1][col]
                    .abs()
                    .partial_cmp(&a[r2][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("nonempty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(Error::InvalidParameter(
                "singular normal matrix in savitzky-golay fit".into(),
            ));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(SavitzkyGolay::new(4, 2).is_err());
        assert!(SavitzkyGolay::new(1, 0).is_err());
        assert!(SavitzkyGolay::new(5, 4).is_err());
        assert!(SavitzkyGolay::new(5, 2).is_ok());
    }

    #[test]
    fn too_short_series_rejected() {
        let sg = SavitzkyGolay::new(7, 2).unwrap();
        assert!(matches!(sg.smooth(&[1.0, 2.0]), Err(Error::TooShort { needed: 7, got: 2 })));
    }

    #[test]
    fn preserves_linear_series_exactly() {
        let sg = SavitzkyGolay::new(9, 2).unwrap();
        let y: Vec<f64> = (0..50).map(|i| 3.0 * i as f64 + 2.0).collect();
        let s = sg.smooth(&y).unwrap();
        for (a, b) in y.iter().zip(&s) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn preserves_cubic_with_degree_three() {
        let sg = SavitzkyGolay::new(11, 3).unwrap();
        let y: Vec<f64> = (0..40)
            .map(|i| {
                let x = i as f64 * 0.1;
                x * x * x - 2.0 * x
            })
            .collect();
        let s = sg.smooth(&y).unwrap();
        for (a, b) in y.iter().zip(&s) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn reduces_noise_variance() {
        let sg = SavitzkyGolay::new(11, 2).unwrap();
        // Deterministic pseudo-noise around a sine.
        let y: Vec<f64> = (0..200)
            .map(|i| {
                let t = i as f64 * 0.05;
                t.sin() + 0.3 * ((i * 2654435761u64 as usize) % 100) as f64 / 100.0
            })
            .collect();
        let s = sg.smooth(&y).unwrap();
        let rough = |v: &[f64]| -> f64 { v.windows(2).map(|w| (w[1] - w[0]).powi(2)).sum::<f64>() };
        assert!(rough(&s) < rough(&y) * 0.5);
    }

    #[test]
    fn center_weights_sum_to_one() {
        let sg = SavitzkyGolay::new(9, 3).unwrap();
        let w = sg.weights_for(0).unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn output_length_matches_input() {
        let sg = SavitzkyGolay::new(5, 2).unwrap();
        let y: Vec<f64> = (0..13).map(|i| i as f64).collect();
        assert_eq!(sg.smooth(&y).unwrap().len(), 13);
    }
}
