//! Property-based tests for labeling invariants.

use monitorless_label::kneedle::{detect_knee, normalize_unit, KneedleParams};
use monitorless_label::{label_series, SaturationDirection, SaturationThreshold, SavitzkyGolay};
use proptest::prelude::*;

proptest! {
    #[test]
    fn normalize_unit_is_bounded_and_monotone(
        v in proptest::collection::vec(-1e9_f64..1e9, 2..50),
    ) {
        let n = normalize_unit(&v);
        for x in &n {
            prop_assert!((0.0..=1.0).contains(x));
        }
        for i in 0..v.len() {
            for j in 0..v.len() {
                if v[i] < v[j] {
                    prop_assert!(n[i] <= n[j]);
                }
            }
        }
    }

    #[test]
    fn savgol_reproduces_polynomials_up_to_degree(
        a in -5.0_f64..5.0,
        b in -5.0_f64..5.0,
        c in -0.5_f64..0.5,
    ) {
        let sg = SavitzkyGolay::new(9, 2).unwrap();
        let y: Vec<f64> = (0..40)
            .map(|i| {
                let x = i as f64;
                a + b * x + c * x * x
            })
            .collect();
        let s = sg.smooth(&y).unwrap();
        for (orig, sm) in y.iter().zip(&s) {
            prop_assert!((orig - sm).abs() < 1e-6 * (1.0 + orig.abs()));
        }
    }

    #[test]
    fn savgol_preserves_length_and_mean_roughly(
        y in proptest::collection::vec(0.0_f64..1000.0, 15..80),
    ) {
        let sg = SavitzkyGolay::new(7, 2).unwrap();
        let s = sg.smooth(&y).unwrap();
        prop_assert_eq!(s.len(), y.len());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // Smoothing is a local least-squares fit: the mean stays close.
        prop_assert!((mean(&s) - mean(&y)).abs() < 0.25 * (mean(&y).abs() + 1.0));
    }

    #[test]
    fn threshold_labels_are_monotone_in_kpi(
        upsilon in 1.0_f64..1000.0,
        kpis in proptest::collection::vec(0.0_f64..2000.0, 1..50),
    ) {
        let t = SaturationThreshold::new(upsilon, SaturationDirection::Above);
        let labels = label_series(&kpis, &t);
        for (kpi, label) in kpis.iter().zip(&labels) {
            prop_assert_eq!(*label, u8::from(*kpi > upsilon));
        }
    }

    #[test]
    fn knee_of_capped_linear_curve_is_near_the_cap(
        cap in 20.0_f64..80.0,
    ) {
        let x: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| v.min(cap)).collect();
        let knee = detect_knee(&x, &y, &KneedleParams::default()).unwrap();
        prop_assert!((knee.x - cap).abs() < 8.0, "knee at {} for cap {cap}", knee.x);
    }
}
