//! AdaBoost over decision trees (Freund & Schapire 1997).
//!
//! Both multi-class variants examined by the paper's grid search
//! (Table 2) are implemented for the binary case: discrete `SAMME` and
//! real-valued `SAMME.R`. The base estimator exposes the grid's
//! `DT_criterion`, `DT_splitter` and `DT_min_samples_split` knobs.

use crate::presort::{FitCache, PresortedDataset};
use crate::tree::{DecisionTree, DecisionTreeParams, MaxFeatures, SplitCriterion, Splitter};
use crate::{validate_fit_input, Classifier, Error, Matrix};

/// The boosting variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BoostAlgorithm {
    /// Discrete AdaBoost (stagewise additive, hard votes).
    Samme,
    /// Real AdaBoost using class probabilities (`SAMME.R`).
    #[default]
    SammeR,
}

/// Hyper-parameters for [`AdaBoost`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBoostParams {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Boosting variant.
    pub algorithm: BoostAlgorithm,
    /// Split criterion of the base trees (`DT_criterion`).
    pub criterion: SplitCriterion,
    /// Splitter of the base trees (`DT_splitter`).
    pub splitter: Splitter,
    /// `min_samples_split` of the base trees (`DT_min_samples_split`).
    pub min_samples_split: usize,
    /// Depth limit of the base trees (AdaBoost commonly uses shallow trees).
    pub max_depth: Option<usize>,
    /// Learning rate shrinking each stage's contribution.
    pub learning_rate: f64,
    /// RNG seed forwarded to base trees.
    pub seed: u64,
}

impl Default for AdaBoostParams {
    fn default() -> Self {
        AdaBoostParams {
            n_estimators: 50,
            algorithm: BoostAlgorithm::SammeR,
            criterion: SplitCriterion::Gini,
            splitter: Splitter::Best,
            min_samples_split: 5,
            max_depth: Some(3),
            learning_rate: 1.0,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Stage {
    tree: DecisionTree,
    alpha: f64,
}

/// AdaBoost binary classifier.
///
/// ```
/// use monitorless_learn::prelude::*;
///
/// # fn main() -> Result<(), monitorless_learn::Error> {
/// let x = Matrix::from_rows(&[
///     &[0.0], &[0.1], &[0.2], &[0.3], &[0.7], &[0.8], &[0.9], &[1.0],
/// ]);
/// let y = vec![0, 0, 0, 0, 1, 1, 1, 1];
/// let mut ab = AdaBoost::new(AdaBoostParams::default());
/// ab.fit(&x, &y, None)?;
/// assert_eq!(ab.predict(&x), y);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBoost {
    params: AdaBoostParams,
    stages: Vec<Stage>,
    n_features: usize,
}

impl AdaBoost {
    /// Creates an unfitted ensemble with the given hyper-parameters.
    pub fn new(params: AdaBoostParams) -> Self {
        AdaBoost {
            params,
            stages: Vec::new(),
            n_features: 0,
        }
    }

    /// The hyper-parameters this ensemble was configured with.
    pub fn params(&self) -> &AdaBoostParams {
        &self.params
    }

    /// Whether `fit` has completed successfully.
    pub fn is_fitted(&self) -> bool {
        !self.stages.is_empty()
    }

    /// Number of fitted boosting stages (may be fewer than requested if
    /// boosting terminated early).
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    fn base_tree(&self, stage: usize) -> DecisionTree {
        DecisionTree::new(DecisionTreeParams {
            criterion: self.params.criterion,
            splitter: self.params.splitter,
            max_depth: self.params.max_depth,
            min_samples_split: self.params.min_samples_split,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            seed: self.params.seed.wrapping_add(stage as u64),
        })
    }

    fn fit_samme(
        &mut self,
        x: &Matrix,
        ps: &PresortedDataset,
        y: &[u8],
        w: &mut [f64],
    ) -> Result<(), Error> {
        for m in 0..self.params.n_estimators {
            let mut tree = self.base_tree(m);
            tree.fit_presorted(ps, y, Some(w))?;
            let pred = tree.predict(x);
            let total: f64 = w.iter().sum();
            let err: f64 = w
                .iter()
                .zip(pred.iter().zip(y))
                .filter(|(_, (p, t))| p != t)
                .map(|(wi, _)| wi)
                .sum::<f64>()
                / total;
            if err >= 0.5 {
                // Worse than chance: stop boosting (keep earlier stages).
                if self.stages.is_empty() {
                    self.stages.push(Stage { tree, alpha: 1.0 });
                }
                break;
            }
            let err = err.max(1e-10);
            let alpha = self.params.learning_rate * ((1.0 - err) / err).ln();
            for (wi, (p, t)) in w.iter_mut().zip(pred.iter().zip(y)) {
                if p != t {
                    *wi *= alpha.exp();
                }
            }
            let sum: f64 = w.iter().sum();
            for wi in w.iter_mut() {
                *wi /= sum;
            }
            self.stages.push(Stage { tree, alpha });
            if err < 1e-10 {
                break;
            }
        }
        Ok(())
    }

    fn fit_samme_r(
        &mut self,
        x: &Matrix,
        ps: &PresortedDataset,
        y: &[u8],
        w: &mut [f64],
    ) -> Result<(), Error> {
        const CLIP: f64 = 1e-5;
        for m in 0..self.params.n_estimators {
            let mut tree = self.base_tree(m);
            tree.fit_presorted(ps, y, Some(w))?;
            let proba = tree.predict_proba(x);
            // h(x) = 0.5 * lr * log(p1 / p0); weight update uses the signed
            // margin y± * h(x).
            let mut any_error = false;
            for ((wi, &p), &t) in w.iter_mut().zip(&proba).zip(y) {
                let p1 = p.clamp(CLIP, 1.0 - CLIP);
                let h = 0.5 * self.params.learning_rate * (p1 / (1.0 - p1)).ln();
                let y_pm = if t == 1 { 1.0 } else { -1.0 };
                *wi *= (-y_pm * h).exp();
                if (p >= 0.5) != (t == 1) {
                    any_error = true;
                }
            }
            let sum: f64 = w.iter().sum();
            if !(sum.is_finite() && sum > 0.0) {
                return Err(Error::NoConvergence("adaboost sample weights degenerated".into()));
            }
            for wi in w.iter_mut() {
                *wi /= sum;
            }
            self.stages.push(Stage { tree, alpha: 1.0 });
            if !any_error {
                break;
            }
        }
        Ok(())
    }

    /// Compiles the fitted ensemble into a
    /// [`FlatEnsemble`](crate::flat::FlatEnsemble). Leaf values carry
    /// the per-stage contribution already (SAMME: the alpha-weighted
    /// vote; SAMME.R: the shrunk log-odds term), so the flat walk is
    /// load-and-add and predictions are bit-identical to
    /// [`AdaBoost::predict_proba_legacy`].
    ///
    /// # Panics
    ///
    /// Panics if the ensemble is unfitted.
    pub fn to_flat(&self) -> crate::flat::FlatEnsemble {
        assert!(self.is_fitted(), "adaboost must be fitted before flattening");
        const CLIP: f64 = 1e-5;
        match self.params.algorithm {
            BoostAlgorithm::Samme => {
                let norm = self.stages.iter().map(|s| s.alpha).sum::<f64>().max(1e-12);
                let mut builder = crate::flat::FlatBuilder::new(
                    self.n_features,
                    0.0,
                    crate::flat::Finalize::Logit(norm),
                );
                for stage in &self.stages {
                    let alpha = stage.alpha;
                    stage
                        .tree
                        .flatten_into(&mut builder, |p| alpha * if p >= 0.5 { 1.0 } else { -1.0 });
                }
                builder.build()
            }
            BoostAlgorithm::SammeR => {
                let lr = self.params.learning_rate;
                let mut builder = crate::flat::FlatBuilder::new(
                    self.n_features,
                    0.0,
                    crate::flat::Finalize::Logit(1.0),
                );
                for stage in &self.stages {
                    stage.tree.flatten_into(&mut builder, |p| {
                        let p1 = p.clamp(CLIP, 1.0 - CLIP);
                        0.5 * lr * (p1 / (1.0 - p1)).ln()
                    });
                }
                builder.build()
            }
        }
    }

    /// Reference implementation of [`Classifier::predict_proba`]: the
    /// legacy per-stage recursive walk, kept for the flat-equivalence
    /// property suite.
    ///
    /// # Panics
    ///
    /// Panics if the ensemble is unfitted.
    pub fn predict_proba_legacy(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.is_fitted(), "adaboost must be fitted before predicting");
        let norm: f64 = match self.params.algorithm {
            BoostAlgorithm::Samme => self.stages.iter().map(|s| s.alpha).sum::<f64>().max(1e-12),
            BoostAlgorithm::SammeR => 1.0,
        };
        self.decision_function(x)
            .into_iter()
            .map(|s| {
                let z = s / norm;
                // Map the (normalized) margin through a logistic link.
                1.0 / (1.0 + (-2.0 * z).exp())
            })
            .collect()
    }

    // Uses the trees' recursive `predict_row` walk directly so this
    // stays an independent reference path for `predict_proba_legacy`
    // (the trees' own `predict_proba` now routes through `flat`).
    fn decision_function(&self, x: &Matrix) -> Vec<f64> {
        const CLIP: f64 = 1e-5;
        let mut score = vec![0.0; x.rows()];
        match self.params.algorithm {
            BoostAlgorithm::Samme => {
                for stage in &self.stages {
                    for (s, row) in score.iter_mut().zip(x.iter_rows()) {
                        let p = u8::from(stage.tree.predict_row(row) >= 0.5);
                        *s += stage.alpha * if p == 1 { 1.0 } else { -1.0 };
                    }
                }
            }
            BoostAlgorithm::SammeR => {
                for stage in &self.stages {
                    for (s, row) in score.iter_mut().zip(x.iter_rows()) {
                        let p1 = stage.tree.predict_row(row).clamp(CLIP, 1.0 - CLIP);
                        *s += 0.5 * self.params.learning_rate * (p1 / (1.0 - p1)).ln();
                    }
                }
            }
        }
        score
    }
}

impl Classifier for AdaBoost {
    fn fit(&mut self, x: &Matrix, y: &[u8], sample_weight: Option<&[f64]>) -> Result<(), Error> {
        let cache = FitCache::new();
        self.fit_cached(x, &cache, y, sample_weight)
    }

    fn fit_cached(
        &mut self,
        x: &Matrix,
        cache: &FitCache,
        y: &[u8],
        sample_weight: Option<&[f64]>,
    ) -> Result<(), Error> {
        validate_fit_input(x, y, sample_weight)?;
        if self.params.n_estimators == 0 {
            return Err(Error::InvalidParameter("n_estimators must be at least 1".into()));
        }
        if self.params.learning_rate <= 0.0 {
            return Err(Error::InvalidParameter("learning_rate must be positive".into()));
        }
        self.stages.clear();
        self.n_features = x.cols();
        let n = x.rows();
        let mut w: Vec<f64> = match sample_weight {
            Some(sw) => {
                let sum: f64 = sw.iter().sum();
                sw.iter().map(|v| v / sum).collect()
            }
            None => vec![1.0 / n as f64; n],
        };
        // One presort serves every boosting round: reweighting changes
        // the samples' importance, never their sort order.
        let ps = cache.presorted(x);
        match self.params.algorithm {
            BoostAlgorithm::Samme => self.fit_samme(x, ps, y, &mut w),
            BoostAlgorithm::SammeR => self.fit_samme_r(x, ps, y, &mut w),
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.is_fitted(), "adaboost must be fitted before predicting");
        assert_eq!(x.cols(), self.n_features, "feature count must match training data");
        self.to_flat().predict_proba(x, 1)
    }

    fn name(&self) -> &'static str {
        "AdaBoost"
    }
}

monitorless_std::json_enum!(BoostAlgorithm { Samme, SammeR });
monitorless_std::json_struct!(AdaBoostParams {
    n_estimators,
    algorithm,
    criterion,
    splitter,
    min_samples_split,
    max_depth,
    learning_rate,
    seed,
});
monitorless_std::json_struct!(Stage { tree, alpha });
monitorless_std::json_struct!(AdaBoost {
    params,
    stages,
    n_features,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes() -> (Matrix, Vec<u8>) {
        // Alternating stripes need several stumps: a real boosting test.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let v = i as f64 / 10.0;
            rows.push(vec![v]);
            y.push(u8::from((i / 10) % 2 == 1));
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y)
    }

    #[test]
    fn samme_learns_stripes() {
        let (x, y) = stripes();
        let mut ab = AdaBoost::new(AdaBoostParams {
            algorithm: BoostAlgorithm::Samme,
            max_depth: Some(1),
            n_estimators: 100,
            ..AdaBoostParams::default()
        });
        ab.fit(&x, &y, None).unwrap();
        let acc = crate::metrics::accuracy(&y, &ab.predict(&x));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn samme_r_learns_stripes() {
        let (x, y) = stripes();
        let mut ab = AdaBoost::new(AdaBoostParams {
            algorithm: BoostAlgorithm::SammeR,
            max_depth: Some(1),
            n_estimators: 100,
            ..AdaBoostParams::default()
        });
        ab.fit(&x, &y, None).unwrap();
        let acc = crate::metrics::accuracy(&y, &ab.predict(&x));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn stops_early_on_perfect_fit() {
        let x = Matrix::from_rows(&[
            &[0.0],
            &[1.0],
            &[2.0],
            &[3.0],
            &[10.0],
            &[11.0],
            &[12.0],
            &[13.0],
        ]);
        let y = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let mut ab = AdaBoost::new(AdaBoostParams {
            n_estimators: 50,
            min_samples_split: 2,
            ..AdaBoostParams::default()
        });
        ab.fit(&x, &y, None).unwrap();
        assert!(ab.n_stages() < 50);
        assert_eq!(ab.predict(&x), y);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = stripes();
        for algo in [BoostAlgorithm::Samme, BoostAlgorithm::SammeR] {
            let mut ab = AdaBoost::new(AdaBoostParams {
                algorithm: algo,
                n_estimators: 20,
                ..AdaBoostParams::default()
            });
            ab.fit(&x, &y, None).unwrap();
            assert!(ab
                .predict_proba(&x)
                .iter()
                .all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn invalid_learning_rate_rejected() {
        let mut ab = AdaBoost::new(AdaBoostParams {
            learning_rate: 0.0,
            ..AdaBoostParams::default()
        });
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        assert!(matches!(ab.fit(&x, &[0, 1], None), Err(Error::InvalidParameter(_))));
    }

    #[test]
    fn initial_sample_weights_respected() {
        // Heavily weighting the positive corner changes the prediction there.
        let x = Matrix::from_rows(&[&[0.0], &[0.0], &[1.0], &[1.0]]);
        let y = vec![0, 1, 0, 1];
        let mut ab = AdaBoost::new(AdaBoostParams {
            n_estimators: 5,
            min_samples_split: 2,
            ..AdaBoostParams::default()
        });
        ab.fit(&x, &y, Some(&[0.1, 10.0, 10.0, 0.1])).unwrap();
        let p = ab.predict_proba(&x);
        assert!(p[1] > 0.5 || p[2] < 0.5);
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let (x, y) = stripes();
        let mut ab = AdaBoost::new(AdaBoostParams {
            n_estimators: 10,
            ..AdaBoostParams::default()
        });
        ab.fit(&x, &y, None).unwrap();
        let json = monitorless_std::json::to_string(&ab);
        let back: AdaBoost = monitorless_std::json::from_str(&json).unwrap();
        assert_eq!(back.predict_proba(&x), ab.predict_proba(&x));
    }
}
