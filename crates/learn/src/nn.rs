//! A small fully-connected neural network.
//!
//! Reproduces the paper's "three-layer, fully connected, sequential neural
//! network" (Keras/TensorFlow in the original). Each of the three layers
//! has a configurable activation — the Table 2 grid searches over
//! `softmax`, `relu`, `sigmoid` and `linear` per layer. Training uses
//! mini-batch Adam on binary cross-entropy with a sigmoid output link.

use monitorless_std::rng::{Rng, StdRng};

use crate::{validate_fit_input, Classifier, Error, Matrix};

/// Activation functions from the Table 2 grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Rectified linear unit.
    #[default]
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity.
    Linear,
    /// Softmax over the layer's units (reduces to a constant for width-1
    /// layers, exactly as in Keras).
    Softmax,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    fn apply(self, z: &mut [f64]) {
        match self {
            Activation::Relu => {
                for v in z.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            Activation::Sigmoid => {
                for v in z.iter_mut() {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
            Activation::Linear => {}
            Activation::Tanh => {
                for v in z.iter_mut() {
                    *v = v.tanh();
                }
            }
            Activation::Softmax => {
                let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for v in z.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                for v in z.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// Derivative with respect to pre-activation, given the activated value.
    /// For softmax we use the diagonal term (standard simplification when
    /// the loss is not categorical cross-entropy).
    fn derivative(self, activated: f64) -> f64 {
        match self {
            Activation::Relu => {
                if activated > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid | Activation::Softmax => activated * (1.0 - activated),
            Activation::Linear => 1.0,
            Activation::Tanh => 1.0 - activated * activated,
        }
    }
}

/// Hyper-parameters for [`NeuralNet`].
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralNetParams {
    /// Widths of the two hidden layers.
    pub hidden: [usize; 2],
    /// Activations of layer 1, layer 2 and the output layer.
    pub activations: [Activation; 3],
    /// Number of training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// RNG seed for weight init and shuffling.
    pub seed: u64,
}

impl Default for NeuralNetParams {
    fn default() -> Self {
        NeuralNetParams {
            hidden: [32, 16],
            activations: [Activation::Relu, Activation::Relu, Activation::Sigmoid],
            epochs: 100,
            batch_size: 32,
            learning_rate: 1e-2,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Layer {
    // weights[out][in], row-major.
    weights: Vec<f64>,
    bias: Vec<f64>,
    n_in: usize,
    n_out: usize,
    activation: Activation,
}

impl Layer {
    fn forward(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.weights[o * self.n_in..(o + 1) * self.n_in];
            let z: f64 = self.bias[o] + row.iter().zip(input).map(|(w, x)| w * x).sum::<f64>();
            out.push(z);
        }
        self.activation.apply(out);
    }
}

#[derive(Debug, Clone, Default, PartialEq)]
struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

/// Three-layer MLP binary classifier.
///
/// ```
/// use monitorless_learn::prelude::*;
///
/// # fn main() -> Result<(), monitorless_learn::Error> {
/// let x = Matrix::from_rows(&[&[0.0], &[0.1], &[0.9], &[1.0]]);
/// let y = vec![0, 0, 1, 1];
/// let mut nn = NeuralNet::new(NeuralNetParams { epochs: 300, ..NeuralNetParams::default() });
/// nn.fit(&x, &y, None)?;
/// assert_eq!(nn.predict(&x), y);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralNet {
    params: NeuralNetParams,
    layers: Vec<Layer>,
}

impl NeuralNet {
    /// Creates an unfitted network with the given hyper-parameters.
    pub fn new(params: NeuralNetParams) -> Self {
        NeuralNet {
            params,
            layers: Vec::new(),
        }
    }

    /// The hyper-parameters this network was configured with.
    pub fn params(&self) -> &NeuralNetParams {
        &self.params
    }

    /// Whether `fit` has completed successfully.
    pub fn is_fitted(&self) -> bool {
        !self.layers.is_empty()
    }

    fn init_layers(&mut self, n_features: usize, rng: &mut StdRng) {
        let sizes = [n_features, self.params.hidden[0], self.params.hidden[1], 1];
        self.layers = (0..3)
            .map(|l| {
                let (n_in, n_out) = (sizes[l], sizes[l + 1]);
                // Glorot-uniform initialization.
                let limit = (6.0 / (n_in + n_out) as f64).sqrt();
                Layer {
                    weights: (0..n_in * n_out)
                        .map(|_| rng.gen_range(-limit..limit))
                        .collect(),
                    bias: vec![0.0; n_out],
                    n_in,
                    n_out,
                    activation: self.params.activations[l],
                }
            })
            .collect();
    }

    fn forward(&self, row: &[f64]) -> Vec<Vec<f64>> {
        let mut activations: Vec<Vec<f64>> = Vec::with_capacity(4);
        activations.push(row.to_vec());
        let mut buf = Vec::new();
        for layer in &self.layers {
            layer.forward(activations.last().expect("nonempty"), &mut buf);
            activations.push(buf.clone());
        }
        activations
    }

    fn output_proba(&self, row: &[f64]) -> f64 {
        let acts = self.forward(row);
        // Width-1 output; clamp so non-sigmoid output activations (linear,
        // relu) still give a usable probability.
        acts.last().expect("output layer exists")[0].clamp(1e-9, 1.0 - 1e-9)
    }
}

impl Classifier for NeuralNet {
    #[allow(clippy::needless_range_loop)]
    fn fit(&mut self, x: &Matrix, y: &[u8], sample_weight: Option<&[f64]>) -> Result<(), Error> {
        validate_fit_input(x, y, sample_weight)?;
        if self.params.hidden.contains(&0) {
            return Err(Error::InvalidParameter("hidden layer widths must be positive".into()));
        }
        if self.params.batch_size == 0 || self.params.epochs == 0 {
            return Err(Error::InvalidParameter("batch_size and epochs must be positive".into()));
        }
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        self.init_layers(x.cols(), &mut rng);

        let n = x.rows();
        let mut adam: Vec<(AdamState, AdamState)> = self
            .layers
            .iter()
            .map(|l| {
                (
                    AdamState {
                        m: vec![0.0; l.weights.len()],
                        v: vec![0.0; l.weights.len()],
                        t: 0,
                    },
                    AdamState {
                        m: vec![0.0; l.bias.len()],
                        v: vec![0.0; l.bias.len()],
                        t: 0,
                    },
                )
            })
            .collect();
        let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);
        let mut order: Vec<usize> = (0..n).collect();

        for _epoch in 0..self.params.epochs {
            rng.shuffle(&mut order);
            for batch in order.chunks(self.params.batch_size) {
                // Accumulate gradients over the batch.
                let mut grad_w: Vec<Vec<f64>> = self
                    .layers
                    .iter()
                    .map(|l| vec![0.0; l.weights.len()])
                    .collect();
                let mut grad_b: Vec<Vec<f64>> = self
                    .layers
                    .iter()
                    .map(|l| vec![0.0; l.bias.len()])
                    .collect();

                for &i in batch {
                    let acts = self.forward(x.row(i));
                    let wi = sample_weight.map_or(1.0, |w| w[i]);
                    let out = acts[3][0].clamp(1e-9, 1.0 - 1e-9);
                    let target = y[i] as f64;
                    // dL/dz for BCE; exact when the output activation is
                    // sigmoid, otherwise chain through the derivative.
                    let mut delta: Vec<f64> = match self.params.activations[2] {
                        Activation::Sigmoid | Activation::Softmax => vec![wi * (out - target)],
                        act => {
                            let dl_da = wi * ((out - target) / (out * (1.0 - out)));
                            vec![dl_da * act.derivative(acts[3][0])]
                        }
                    };

                    for l in (0..3).rev() {
                        let input = &acts[l];
                        let layer = &self.layers[l];
                        for o in 0..layer.n_out {
                            grad_b[l][o] += delta[o];
                            let wrow = o * layer.n_in;
                            for (j, &xv) in input.iter().enumerate() {
                                grad_w[l][wrow + j] += delta[o] * xv;
                            }
                        }
                        if l > 0 {
                            let prev_act = self.layers[l - 1].activation;
                            let mut prev = vec![0.0; layer.n_in];
                            for (j, p) in prev.iter_mut().enumerate() {
                                let mut acc = 0.0;
                                for o in 0..layer.n_out {
                                    acc += delta[o] * layer.weights[o * layer.n_in + j];
                                }
                                *p = acc * prev_act.derivative(acts[l][j]);
                            }
                            delta = prev;
                        }
                    }
                }

                // Adam update.
                let scale = 1.0 / batch.len() as f64;
                for l in 0..3 {
                    let (ws, bs) = &mut adam[l];
                    ws.t += 1;
                    bs.t += 1;
                    let lr = self.params.learning_rate;
                    for (k, g) in grad_w[l].iter().enumerate() {
                        let g = g * scale;
                        ws.m[k] = beta1 * ws.m[k] + (1.0 - beta1) * g;
                        ws.v[k] = beta2 * ws.v[k] + (1.0 - beta2) * g * g;
                        let mhat = ws.m[k] / (1.0 - beta1.powi(ws.t as i32));
                        let vhat = ws.v[k] / (1.0 - beta2.powi(ws.t as i32));
                        self.layers[l].weights[k] -= lr * mhat / (vhat.sqrt() + eps);
                    }
                    for (k, g) in grad_b[l].iter().enumerate() {
                        let g = g * scale;
                        bs.m[k] = beta1 * bs.m[k] + (1.0 - beta1) * g;
                        bs.v[k] = beta2 * bs.v[k] + (1.0 - beta2) * g * g;
                        let mhat = bs.m[k] / (1.0 - beta1.powi(bs.t as i32));
                        let vhat = bs.v[k] / (1.0 - beta2.powi(bs.t as i32));
                        self.layers[l].bias[k] -= lr * mhat / (vhat.sqrt() + eps);
                    }
                }
            }
        }
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.is_fitted(), "network must be fitted before predicting");
        x.iter_rows().map(|row| self.output_proba(row)).collect()
    }

    fn name(&self) -> &'static str {
        "NeuralNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Matrix, Vec<u8>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            rows.push(vec![rng.gen::<f64>() * 0.3, rng.gen::<f64>() * 0.3]);
            y.push(0);
            rows.push(vec![0.7 + rng.gen::<f64>() * 0.3, 0.7 + rng.gen::<f64>() * 0.3]);
            y.push(1);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y)
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, y) = blobs();
        let mut nn = NeuralNet::new(NeuralNetParams {
            epochs: 150,
            ..NeuralNetParams::default()
        });
        nn.fit(&x, &y, None).unwrap();
        let acc = crate::metrics::accuracy(&y, &nn.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn learns_xor_with_hidden_layers() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for k in 0..8 {
                rows.push(vec![a + 0.01 * k as f64, b - 0.01 * k as f64]);
                y.push(u8::from((a > 0.5) != (b > 0.5)));
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut nn = NeuralNet::new(NeuralNetParams {
            epochs: 400,
            hidden: [16, 8],
            learning_rate: 2e-2,
            ..NeuralNetParams::default()
        });
        nn.fit(&x, &y, None).unwrap();
        let acc = crate::metrics::accuracy(&y, &nn.predict(&x));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn tanh_and_sigmoid_hidden_also_learn() {
        let (x, y) = blobs();
        let mut nn = NeuralNet::new(NeuralNetParams {
            activations: [Activation::Tanh, Activation::Sigmoid, Activation::Sigmoid],
            epochs: 200,
            ..NeuralNetParams::default()
        });
        nn.fit(&x, &y, None).unwrap();
        let acc = crate::metrics::accuracy(&y, &nn.predict(&x));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = blobs();
        let mut nn = NeuralNet::new(NeuralNetParams {
            epochs: 20,
            ..NeuralNetParams::default()
        });
        nn.fit(&x, &y, None).unwrap();
        assert!(nn
            .predict_proba(&x)
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn invalid_params_rejected() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let mut nn = NeuralNet::new(NeuralNetParams {
            hidden: [0, 4],
            ..NeuralNetParams::default()
        });
        assert!(nn.fit(&x, &[0, 1], None).is_err());
        let mut nn = NeuralNet::new(NeuralNetParams {
            epochs: 0,
            ..NeuralNetParams::default()
        });
        assert!(nn.fit(&x, &[0, 1], None).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs();
        let make = || {
            let mut nn = NeuralNet::new(NeuralNetParams {
                epochs: 10,
                seed: 99,
                ..NeuralNetParams::default()
            });
            nn.fit(&x, &y, None).unwrap();
            nn.predict_proba(&x)
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn activation_derivatives_match_definitions() {
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
        assert_eq!(Activation::Relu.derivative(0.0), 0.0);
        assert_eq!(Activation::Linear.derivative(5.0), 1.0);
        let s = 0.7;
        assert!((Activation::Sigmoid.derivative(s) - s * (1.0 - s)).abs() < 1e-12);
        let t: f64 = 0.5;
        assert!((Activation::Tanh.derivative(t) - (1.0 - t * t)).abs() < 1e-12);
    }

    #[test]
    fn softmax_normalizes() {
        let mut z = vec![1.0, 2.0, 3.0];
        Activation::Softmax.apply(&mut z);
        assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(z[2] > z[1] && z[1] > z[0]);
    }
}
