//! Presorted column-oriented training cache for tree learners.
//!
//! CART split search needs each candidate feature's values in sorted
//! order at every node. The legacy path re-sorts per node: an
//! `O(n log n)` comparison sort of `(f64, label, weight)` tuples per
//! feature per node, gathered through the strided row-major
//! [`Matrix`]. This module replaces the expensive part of that work
//! with a once-per-dataset presort:
//!
//! * [`PresortedDataset::build`] sorts every feature **once** and keeps
//!   each row's per-feature *value rank* (ties share a rank; ranks
//!   increase in `f64::total_cmp` order), the distinct values per rank,
//!   and a contiguous column-major copy of the values.
//! * With unit sample weights — every non-boosted fit —
//!   [`PresortTraversal::group_node`] turns a node into its per-rank
//!   class histogram in two `O(len)` passes, and the split sweep runs
//!   over *distinct values*, not rows. No sort, no gather, no per-row
//!   scan survives on this path.
//! * Weighted fits ([`PresortTraversal::gather_node`]) recover the
//!   node's sorted order from the ranks — a packed-integer-key sort for
//!   small nodes, an offset counting sort when the node spans a narrow
//!   local rank range (quantized counter-style metrics anywhere, any
//!   column deep in the tree), a stable byte-wise radix sort otherwise.
//!   All are far cheaper than comparison-sorting float tuples, and only
//!   the features a node actually evaluates pay anything.
//! * Partitioning a node into its children touches the membership list
//!   alone (`O(len)`), not any per-feature state.
//!
//! The cache is immutable and shared: all trees of a forest fit, all
//! AdaBoost rounds, all gradient-boosting stages and all grid-search
//! candidates evaluating the same fold reuse one build. Bootstrap
//! resampling does not invalidate it either — a bootstrap sample only
//! *duplicates and reorders* rows, so ranks keep working through the
//! traversal's virtual-row map.
//!
//! Everything here is bit-identity-preserving with respect to the
//! legacy per-node re-sort (see `DecisionTree::fit_resorting`): equal
//! ranks mean bit-identical values, the `(rank, position)` key order is
//! exactly `(total_cmp value, row-ascending)` — what the legacy stable
//! sort produced for its always row-ascending node index lists — and
//! key uniqueness makes the unstable sort deterministic.
//! `tests/presort_equivalence.rs` pins the equivalence property-test
//! style.

use std::sync::OnceLock;

use monitorless_obs as obs;

use crate::matrix::{ColumnsView, Matrix};

/// A column-major snapshot of a feature matrix with per-row value ranks.
///
/// Built once per `(Matrix, y)` pair and shared (by reference) across
/// trees, boosting rounds and cross-validation candidates.
#[derive(Debug, Clone)]
pub struct PresortedDataset {
    /// Column-major copy of the matrix values (carries the row
    /// capacity shared with `ranks`).
    columns: ColumnsView,
    /// Per-feature value rank of each row (feature `f` owns
    /// `ranks[f*row_cap .. f*row_cap + n]`; the tail up to `row_cap`
    /// is append slack): rows with bit-identical values share a rank,
    /// and ranks increase with the `total_cmp` value order.
    ranks: Vec<u32>,
    /// Per-feature stride of `ranks` — kept equal to
    /// `columns.capacity_rows()` so in-capacity appends touch no
    /// existing rank.
    row_cap: usize,
    /// Number of distinct ranks per feature.
    n_ranks: Vec<u32>,
    /// Every feature's distinct values in rank order, concatenated
    /// (feature `f` occupies `rank_offsets[f]..rank_offsets[f] +
    /// n_ranks[f]`). `rank_values_of(f)[r]` is the bit-exact value all
    /// rows of rank `r` share, so consumers can turn ranks back into
    /// values without touching the columns.
    rank_values: Vec<f64>,
    /// Start of each feature's block in `rank_values`.
    rank_offsets: Vec<usize>,
}

/// Logical equality: shape, column contents, ranks and distinct
/// values. Capacity slack never participates, so an appended-into
/// cache with headroom still compares equal to a fresh build — except
/// through NaN cells, which (as everywhere in `f64` comparison) are
/// unequal to themselves; use [`PresortedDataset::bit_identical`] to
/// prove NaN-holding caches identical.
impl PartialEq for PresortedDataset {
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns
            && self.n_ranks == other.n_ranks
            && (0..self.n_features()).all(|f| {
                self.ranks_of(f) == other.ranks_of(f)
                    && self.rank_values_of(f) == other.rank_values_of(f)
            })
    }
}

impl PresortedDataset {
    /// Builds the cache: one column gather plus one `O(n log n)` sort
    /// per feature — the only comparison sort any consumer ever pays.
    pub fn build(x: &Matrix) -> Self {
        let span = obs::Span::enter("presort.build");
        let n = x.rows();
        let d = x.cols();
        let columns = x.columns();
        let mut ranks = vec![0u32; n * d];
        let mut n_ranks = vec![0u32; d];
        let mut rank_values = Vec::with_capacity(d);
        let mut rank_offsets = vec![0usize; d];
        let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(n);
        for f in 0..d {
            rank_offsets[f] = rank_values.len();
            let col = columns.column_slice(f);
            // The order-preserving bit trick: this u64 key compares
            // exactly like `f64::total_cmp`, and key equality is bit
            // equality. Ranks only depend on the value blocks — not on
            // tie order — so an unstable sort of `(key, row)` pairs
            // suffices and beats the comparator-based index sort.
            keyed.clear();
            keyed.extend(col.iter().enumerate().map(|(row, v)| {
                let b = v.to_bits();
                let key = if b >> 63 == 1 { !b } else { b ^ (1u64 << 63) };
                (key, row as u32)
            }));
            keyed.sort_unstable_by_key(|p| p.0);
            let rk = &mut ranks[f * n..(f + 1) * n];
            let mut id = 0u32;
            let mut prev_key = 0u64;
            for (pos, &(key, row)) in keyed.iter().enumerate() {
                if pos == 0 || key != prev_key {
                    if pos > 0 {
                        id += 1;
                    }
                    rank_values.push(col[row as usize]);
                }
                prev_key = key;
                rk[row as usize] = id;
            }
            n_ranks[f] = if n == 0 { 0 } else { id + 1 };
        }
        drop(span);
        obs::counter_add("presort.builds", 1);
        PresortedDataset {
            columns,
            ranks,
            row_cap: n,
            n_ranks,
            rank_values,
            rank_offsets,
        }
    }

    /// Appends `extra`'s rows to the cache incrementally: per feature,
    /// one `O(m log m)` sort of the `m` new rows, one merge pass over
    /// the existing *distinct* values and one `O(n)` rank remap —
    /// instead of the full `O(n log n)` re-sort a fresh
    /// [`PresortedDataset::build`] of the concatenated matrix pays.
    /// Retraining on `old + fresh episodes` therefore pays only for
    /// the delta.
    ///
    /// Bit-identical to that fresh build: ranks depend only on the
    /// multiset of value bit patterns (the order-preserving key makes
    /// key equality bit equality), and each rank's representative
    /// value is the bit pattern all its rows share, so merging old
    /// representatives with first-seen new values reproduces the
    /// from-scratch `rank_values` exactly. `tests/train_equivalence.rs`
    /// pins the property, NaN cells and bootstrap maps included.
    ///
    /// # Panics
    ///
    /// Panics if `extra.cols() != self.n_features()`.
    pub fn append_rows(&mut self, extra: &Matrix) {
        let d = self.n_features();
        assert_eq!(extra.cols(), d, "appended rows must match the cache's feature count");
        let m = extra.rows();
        if m == 0 {
            return;
        }
        let span = obs::Span::enter("presort.append");
        let old_n = self.n_rows();
        let n = old_n + m;
        // Grow first (columns, then the rank stride) while `n_rows()`
        // still reports the old height, then gather the delta into the
        // guaranteed slack.
        if n > self.columns.capacity_rows() {
            self.columns.reserve_total_rows(n + n / 2);
        }
        self.restride_ranks();
        self.columns.append_rows(extra);
        let cap = self.row_cap;
        let key_of = |v: f64| {
            let b = v.to_bits();
            if b >> 63 == 1 {
                !b
            } else {
                b ^ (1u64 << 63)
            }
        };

        // Scratch reused across features.
        let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(m);
        let mut tail_ranks = vec![0u32; m];
        let mut shift: Vec<u32> = Vec::new();
        let mut new_rank_values: Vec<f64> = Vec::with_capacity(self.rank_values.len() + m * d);
        let mut new_rank_offsets = Vec::with_capacity(d);

        for f in 0..d {
            new_rank_offsets.push(new_rank_values.len());
            let vals_start = new_rank_values.len();
            let col = self.columns.column_slice(f);
            let r_old = self.n_ranks[f] as usize;
            let old_start = self.rank_offsets[f];
            let old_vals = &self.rank_values[old_start..old_start + r_old];

            keyed.clear();
            keyed.extend((0..m).map(|j| (key_of(col[old_n + j]), j as u32)));
            keyed.sort_unstable_by_key(|p| p.0);

            // One fused merge over the old distinct values and the
            // sorted new keys. Both sequences ascend, so a single
            // forward walk emits the merged distinct-value block,
            // decides per new key whether it joins an existing rank
            // (bit-equal value) or opens a fresh one, and records —
            // per old value — how many new ranks were inserted before
            // it (`shift`). Element-wise pushes beat bulk copies here:
            // the runs between new keys are short, so per-call
            // overhead would dominate the memcpy.
            shift.clear();
            let mut lo = 0usize;
            let mut ki = 0usize;
            let mut count = 0u32;
            while ki < m {
                let key = keyed[ki].0;
                while lo < r_old {
                    let v = old_vals[lo];
                    if key_of(v) >= key {
                        break;
                    }
                    new_rank_values.push(v);
                    shift.push(count);
                    lo += 1;
                }
                let id = (new_rank_values.len() - vals_start) as u32;
                if lo < r_old && key_of(old_vals[lo]) == key {
                    new_rank_values.push(old_vals[lo]);
                    shift.push(count);
                    lo += 1;
                } else {
                    new_rank_values.push(col[old_n + keyed[ki].1 as usize]);
                    count += 1;
                }
                while ki < m && keyed[ki].0 == key {
                    tail_ranks[keyed[ki].1 as usize] = id;
                    ki += 1;
                }
            }
            new_rank_values.extend_from_slice(&old_vals[lo..]);
            self.n_ranks[f] = r_old as u32 + count;

            // Remap the existing rows' ranks in place — old id `i`
            // gains `shift[i]`, the number of inserts at positions
            // <= `i` — and write the appended rows' ranks into the
            // slack tail.
            let rk = &mut self.ranks[f * cap..f * cap + n];
            if count > 0 {
                shift.resize(r_old, count);
                for v in rk[..old_n].iter_mut() {
                    *v += shift[*v as usize];
                }
            }
            for (j, &id) in tail_ranks.iter().enumerate() {
                rk[old_n + j] = id;
            }
        }
        self.rank_values = new_rank_values;
        self.rank_offsets = new_rank_offsets;
        drop(span);
        obs::counter_add("presort.appends", 1);
    }

    /// Pre-sizes the cache for `additional` more rows, so the coming
    /// appends land in existing slack instead of re-striding — the
    /// retraining loop calls this once when it adopts a cache.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.columns.reserve_total_rows(self.n_rows() + additional);
        self.restride_ranks();
    }

    /// Brings the `ranks` stride back in line with the columns' row
    /// capacity after the columns grew. Features move right-to-left,
    /// so each `copy_within` reads a region not yet overwritten.
    fn restride_ranks(&mut self) {
        let cap = self.columns.capacity_rows();
        if cap == self.row_cap {
            return;
        }
        let d = self.n_features();
        let n = self.n_rows();
        self.ranks.resize(cap * d, 0);
        for f in (0..d).rev() {
            self.ranks
                .copy_within(f * self.row_cap..f * self.row_cap + n, f * cap);
        }
        self.row_cap = cap;
    }

    /// Bit-exact structural equality: like `==`, but `f64` buffers
    /// compare by bit pattern, so NaN-holding caches can still be
    /// proven identical to their independently built twins (derived
    /// `PartialEq` makes any NaN cell unequal to itself). This is the
    /// relation the append-vs-fresh-build equivalence proofs use.
    pub fn bit_identical(&self, other: &Self) -> bool {
        fn same_bits(a: &[f64], b: &[f64]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        self.n_rows() == other.n_rows()
            && self.n_features() == other.n_features()
            && self.n_ranks == other.n_ranks
            && (0..self.n_features()).all(|f| {
                same_bits(self.column(f), other.column(f))
                    && self.ranks_of(f) == other.ranks_of(f)
                    && same_bits(self.rank_values_of(f), other.rank_values_of(f))
            })
    }

    /// Number of rows in the underlying matrix.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.columns.rows()
    }

    /// Number of features (columns) in the underlying matrix.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.columns.cols()
    }

    /// Borrowed contiguous values of feature `f`.
    #[inline]
    pub fn column(&self, f: usize) -> &[f64] {
        self.columns.column_slice(f)
    }

    /// Whether feature `f` holds one bit-identical non-NaN value in
    /// every row. Such a feature can never split — and, unlike the NaN
    /// case, skipping it does not consume splitter randomness.
    #[inline]
    pub fn is_constant(&self, f: usize) -> bool {
        self.n_ranks[f] == 1 && !self.column(f)[0].is_nan()
    }

    /// The value ranks of feature `f`, indexed by row.
    #[inline]
    fn ranks_of(&self, f: usize) -> &[u32] {
        &self.ranks[f * self.row_cap..f * self.row_cap + self.n_rows()]
    }

    /// Feature `f`'s distinct values in rank order: entry `r` is the
    /// bit-exact value every row of rank `r` holds.
    #[inline]
    pub fn rank_values_of(&self, f: usize) -> &[f64] {
        let start = self.rank_offsets[f];
        &self.rank_values[start..start + self.n_ranks[f] as usize]
    }
}

/// Mutable per-fit traversal state over a shared [`PresortedDataset`]:
/// the node-segmented row-membership list plus sorting scratch.
///
/// Rows are *virtual*: with a bootstrap `map` of length `m`, virtual
/// row `j` refers to original row `map[j]` (duplicates allowed). The
/// identity traversal (`map = None`) trains on the matrix as-is.
#[derive(Debug)]
pub struct PresortTraversal<'a> {
    ps: &'a PresortedDataset,
    /// Virtual-row → original-row map (`None` = identity).
    map: Option<Vec<u32>>,
    /// Virtual-row ids in ascending order, segmented per node — the
    /// exact analogue of the legacy builder's `indices` lists.
    rows: Vec<u32>,
    /// Partition / counting-sort placement scratch.
    scratch: Vec<u32>,
    /// Goes-left flag per virtual row for the split being applied.
    side: Vec<bool>,
    /// `(rank, virtual row)` keys for the radix-sort path.
    keys: Vec<u64>,
    /// Ping-pong buffer for radix place passes.
    keys_alt: Vec<u64>,
    /// Per-rank counters for the counting-sort path.
    counts: Vec<u32>,
    /// Per-item rank cache for the counting-sort path.
    rank_scratch: Vec<u32>,
    /// Per-group label-one counters for the grouped split search.
    ones: Vec<u32>,
}

/// Per-rank-group histogram of a node for one feature, produced by
/// [`PresortTraversal::group_node`]. Group `g` covers local rank
/// `min_rank + g`; absent ranks simply have `counts[g] == 0`.
#[derive(Debug)]
pub struct NodeGroups<'t> {
    /// Smallest rank present in the node.
    pub min_rank: usize,
    /// Rows per group (node-local).
    pub counts: &'t [u32],
    /// Label-one rows per group (node-local).
    pub ones: &'t [u32],
}

impl<'a> PresortTraversal<'a> {
    fn with_rows(ps: &'a PresortedDataset, map: Option<Vec<u32>>, m: usize) -> Self {
        PresortTraversal {
            ps,
            map,
            rows: (0..m as u32).collect(),
            scratch: vec![0u32; m],
            side: vec![false; m],
            keys: Vec::new(),
            keys_alt: Vec::new(),
            counts: Vec::new(),
            rank_scratch: Vec::new(),
            ones: Vec::new(),
        }
    }

    /// Traversal over the matrix rows as-is (no resampling).
    pub fn identity(ps: &'a PresortedDataset) -> Self {
        Self::with_rows(ps, None, ps.n_rows())
    }

    /// Resets an identity traversal for reuse (e.g. the next boosting
    /// round) without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the traversal was built with a bootstrap map.
    pub fn reset_identity(&mut self) {
        assert!(self.map.is_none(), "reset_identity on a mapped traversal");
        for (j, r) in self.rows.iter_mut().enumerate() {
            *r = j as u32;
        }
    }

    /// Traversal over a (bootstrap) sample: virtual row `j` is original
    /// row `map[j]`.
    pub fn with_map(ps: &'a PresortedDataset, map: Vec<u32>) -> Self {
        let m = map.len();
        Self::with_rows(ps, Some(map), m)
    }

    /// The shared dataset this traversal walks.
    #[inline]
    pub fn dataset(&self) -> &'a PresortedDataset {
        self.ps
    }

    /// Number of (virtual) rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the traversal covers no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Original row behind virtual row `v`.
    #[inline]
    fn original(&self, v: u32) -> u32 {
        match &self.map {
            Some(map) => map[v as usize],
            None => v,
        }
    }

    /// Value of feature `f` at virtual row `v`.
    #[inline]
    pub fn value(&self, f: usize, v: u32) -> f64 {
        self.ps.column(f)[self.original(v) as usize]
    }

    /// Ascending virtual-row ids of the node spanning `[lo, hi)`.
    #[inline]
    pub fn rows_segment(&self, lo: usize, hi: usize) -> &[u32] {
        &self.rows[lo..hi]
    }

    /// Calls `emit(slot, virtual_row, value)` exactly once for every
    /// row of the node `[lo, hi)`, where `slot` is the row's position
    /// in `(total_cmp value, row-ascending)` order — the exact order
    /// the legacy builder's per-node stable sort produced. Calls may
    /// arrive out of order; the caller writes `slot` of its own
    /// pre-sized buffers, so the sorted gather is built in one pass
    /// fused into the final placement.
    ///
    /// Returns `false` — without emitting anything — when the feature
    /// is constant and non-NaN across the node, i.e. exactly when the
    /// caller's `lo_v == hi_v` guard would discard the gather unread
    /// (bit-identical non-NaN values always compare equal). The caller
    /// must still keep that guard: a node mixing `-0.0` and `+0.0`
    /// spans two ranks yet compares equal.
    ///
    /// Small nodes take a comparison sort of packed `(rank, row)` keys;
    /// nodes spanning a narrow local rank range — quantized columns
    /// anywhere, any column deep in the tree — take an offset counting
    /// sort (`O(len + range)`, no comparisons); the rest take a stable
    /// byte-wise LSD radix sort of the offset ranks with uniform bytes
    /// skipped. All placement passes walk the segment in order, so ties
    /// stay row-ascending.
    pub fn gather_node(
        &mut self,
        feature: usize,
        lo: usize,
        hi: usize,
        mut emit: impl FnMut(usize, u32, f64),
    ) -> bool {
        let col = self.ps.column(feature);
        let rk = self.ps.ranks_of(feature);
        let seg = &self.rows[lo..hi];
        let len = seg.len();
        let map = self.map.as_deref();
        let row_of = |v: u32| -> usize {
            match map {
                Some(map) => map[v as usize] as usize,
                None => v as usize,
            }
        };
        // One gather of the segment's ranks feeds every strategy below
        // and yields the node-local rank range: deep nodes span few
        // distinct ranks even for continuous features, so the cheap
        // offset counting sort applies far beyond globally quantized
        // columns.
        let cached = &mut self.rank_scratch;
        cached.clear();
        let (mut min_rank, mut max_rank) = (u32::MAX, 0u32);
        cached.extend(seg.iter().map(|&v| {
            let r = rk[row_of(v)];
            min_rank = min_rank.min(r);
            max_rank = max_rank.max(r);
            r
        }));
        let range = (max_rank - min_rank) as usize + 1;
        if range == 1 && !col[row_of(seg[0])].is_nan() {
            return false;
        }
        if len < 64 {
            // Small node: a comparison sort of the packed keys beats
            // any histogram setup. Segments are always ascending in
            // virtual row, so `(rank, virtual_row)` order is exactly
            // `(rank, segment position)` — stable-equivalent — and key
            // uniqueness makes the unstable sort deterministic.
            let keys = &mut self.keys;
            keys.clear();
            keys.extend(
                seg.iter()
                    .zip(cached.iter())
                    .map(|(&v, &r)| (u64::from(r) << 32) | u64::from(v)),
            );
            keys.sort_unstable();
            for (slot, &key) in keys.iter().enumerate() {
                let v = key as u32;
                emit(slot, v, col[row_of(v)]);
            }
        } else if range <= 2 * len {
            // Counting sort keyed by rank offset into the node-local
            // range; the placement pass writes the finished tuples
            // directly. Both passes walk the segment in order, so ties
            // stay row-ascending.
            let counts = &mut self.counts;
            counts.clear();
            counts.resize(range + 1, 0);
            for &r in cached.iter() {
                counts[(r - min_rank) as usize + 1] += 1;
            }
            for i in 1..=range {
                counts[i] += counts[i - 1];
            }
            for (&v, &r) in seg.iter().zip(cached.iter()) {
                let slot = &mut counts[(r - min_rank) as usize];
                emit(*slot as usize, v, col[row_of(v)]);
                *slot += 1;
            }
        } else {
            // Wide-range node: stable LSD radix sort of
            // `(rank << 32) | virtual_row` keys by the offset-rank
            // bytes. Stability keeps equal ranks in segment
            // (row-ascending) order, all byte histograms come from one
            // pass, uniform bytes are skipped, and the last live pass
            // places the finished tuples.
            let keys = &mut self.keys;
            keys.clear();
            keys.extend(
                seg.iter()
                    .zip(cached.iter())
                    .map(|(&v, &r)| (u64::from(r - min_rank) << 32) | u64::from(v)),
            );
            let rank_bytes =
                (64 - u64::leading_zeros((range as u64 - 1).max(1)) as usize).div_ceil(8);
            let mut hist = [[0u32; 256]; 4];
            for &key in keys.iter() {
                let r = key >> 32;
                for (b, h) in hist.iter_mut().enumerate().take(rank_bytes) {
                    h[(r >> (8 * b)) as usize & 0xFF] += 1;
                }
            }
            let mut active = [false; 4];
            for b in 0..rank_bytes {
                let first = (keys[0] >> (32 + 8 * b)) as usize & 0xFF;
                active[b] = hist[b][first] as usize != len;
            }
            let Some(last) = (0..rank_bytes).rev().find(|&b| active[b]) else {
                // Every rank byte is uniform: all ranks equal, so the
                // segment order is already the sorted order.
                for (slot, &v) in seg.iter().enumerate() {
                    emit(slot, v, col[row_of(v)]);
                }
                return true;
            };
            let alt = &mut self.keys_alt;
            alt.resize(len, 0);
            let (mut src, mut dst) = (keys, alt);
            for b in 0..rank_bytes {
                if !active[b] {
                    continue;
                }
                let h = &mut hist[b];
                let mut offset = 0u32;
                for c in h.iter_mut() {
                    let n = *c;
                    *c = offset;
                    offset += n;
                }
                if b == last {
                    for &key in src.iter() {
                        let slot = &mut h[(key >> (32 + 8 * b)) as usize & 0xFF];
                        let v = key as u32;
                        emit(*slot as usize, v, col[row_of(v)]);
                        *slot += 1;
                    }
                    break;
                }
                for &key in src.iter() {
                    let slot = &mut h[(key >> (32 + 8 * b)) as usize & 0xFF];
                    dst[*slot as usize] = key;
                    *slot += 1;
                }
                std::mem::swap(&mut src, &mut dst);
            }
        }
        true
    }

    /// Builds the per-rank-group class histogram of the node `[lo, hi)`
    /// for `feature`: two `O(len)` passes, no sort, no placement. `y`
    /// holds the virtual-row labels (`1` = positive class).
    ///
    /// This is the unit-weight split search's whole input: with all
    /// sample weights exactly `1.0`, class-weight sums are exact
    /// integer counts, so a sweep over rank groups — `O(distinct
    /// values)` — reproduces the legacy per-row sweep bit for bit
    /// (integer addition is order-independent, and each group's value
    /// comes back bit-exact via
    /// [`PresortedDataset::rank_values_of`]).
    ///
    /// Returns `None` when the feature is constant and non-NaN across
    /// the node — exactly when the caller's `lo_v == hi_v` guard would
    /// discard the result (see [`Self::gather_node`]).
    pub fn group_node(
        &mut self,
        feature: usize,
        lo: usize,
        hi: usize,
        y: &[u8],
    ) -> Option<NodeGroups<'_>> {
        let rk = self.ps.ranks_of(feature);
        let seg = &self.rows[lo..hi];
        let map = self.map.as_deref();
        let row_of = |v: u32| -> usize {
            match map {
                Some(map) => map[v as usize] as usize,
                None => v as usize,
            }
        };
        let cached = &mut self.rank_scratch;
        cached.clear();
        let (mut min_rank, mut max_rank) = (u32::MAX, 0u32);
        cached.extend(seg.iter().map(|&v| {
            let r = rk[row_of(v)];
            min_rank = min_rank.min(r);
            max_rank = max_rank.max(r);
            r
        }));
        let range = (max_rank - min_rank) as usize + 1;
        if range == 1 && !self.ps.rank_values_of(feature)[min_rank as usize].is_nan() {
            return None;
        }
        let counts = &mut self.counts;
        counts.clear();
        counts.resize(range, 0);
        let ones = &mut self.ones;
        ones.clear();
        ones.resize(range, 0);
        for (&v, &r) in seg.iter().zip(cached.iter()) {
            let g = (r - min_rank) as usize;
            counts[g] += 1;
            ones[g] += u32::from(y[v as usize] == 1);
        }
        Some(NodeGroups {
            min_rank: min_rank as usize,
            counts,
            ones,
        })
    }

    /// Stably partitions the node `[lo, hi)` by
    /// `value(feature, v) <= threshold` and returns the left child's
    /// size. Only the membership list moves — per-feature sorted orders
    /// are re-derived from the ranks on demand, so unevaluated features
    /// cost nothing.
    pub fn partition(&mut self, lo: usize, hi: usize, feature: usize, threshold: f64) -> usize {
        let mut n_left = 0usize;
        for &v in &self.rows[lo..hi] {
            let left = self.value(feature, v) <= threshold;
            self.side[v as usize] = left;
            n_left += usize::from(left);
        }
        let side = &self.side;
        let scratch = &mut self.scratch[..hi - lo];
        stable_split(&mut self.rows[lo..hi], scratch, side, n_left);
        n_left
    }
}

/// Stable two-way partition of `seg` by `side[v]`, via `scratch`.
fn stable_split(seg: &mut [u32], scratch: &mut [u32], side: &[bool], n_left: usize) {
    let mut l = 0usize;
    let mut r = n_left;
    for &v in seg.iter() {
        if side[v as usize] {
            scratch[l] = v;
            l += 1;
        } else {
            scratch[r] = v;
            r += 1;
        }
    }
    seg.copy_from_slice(scratch);
}

/// A lazily built, thread-safe per-dataset cache that classifiers can
/// share across fits on the same matrix (grid-search folds, the
/// Table 3 comparison, repeated retraining).
///
/// Only tree-family classifiers request the presorted view, so the sort
/// cost is paid on first use — linear models never trigger it.
#[derive(Debug, Default)]
pub struct FitCache {
    presorted: OnceLock<PresortedDataset>,
}

impl FitCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        FitCache::default()
    }

    /// The presorted view of `x`, building it on first use.
    ///
    /// All calls must pass the same matrix the cache was first used
    /// with; shapes are asserted.
    pub fn presorted(&self, x: &Matrix) -> &PresortedDataset {
        if self.presorted.get().is_some() {
            obs::counter_add("presort.cache_hits", 1);
        }
        let ps = self.presorted.get_or_init(|| PresortedDataset::build(x));
        assert_eq!(
            (ps.n_rows(), ps.n_features()),
            (x.rows(), x.cols()),
            "FitCache reused with a differently shaped matrix"
        );
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix {
        Matrix::from_rows(&[
            &[3.0, 1.0],
            &[1.0, 1.0],
            &[2.0, 1.0],
            &[1.0, 0.0],
            &[3.0, 2.0],
        ])
    }

    fn sorted_rows(t: &mut PresortTraversal<'_>, f: usize, lo: usize, hi: usize) -> Vec<u32> {
        let mut out = vec![u32::MAX; hi - lo];
        let emitted = t.gather_node(f, lo, hi, |slot, v, _| out[slot] = v);
        assert!(emitted, "gather skipped a non-constant node");
        out
    }

    #[test]
    fn ranks_follow_value_order_with_shared_ties() {
        let ps = PresortedDataset::build(&sample_matrix());
        assert_eq!(ps.ranks_of(0), &[2, 0, 1, 0, 2]);
        assert_eq!(ps.ranks_of(1), &[1, 1, 1, 0, 2]);
        assert_eq!(ps.n_ranks, vec![3, 3]);
        assert!(!ps.is_constant(0));
    }

    #[test]
    fn sorted_order_is_value_then_row_ascending() {
        let ps = PresortedDataset::build(&sample_matrix());
        let mut t = PresortTraversal::identity(&ps);
        assert_eq!(sorted_rows(&mut t, 0, 0, 5), vec![1, 3, 2, 0, 4]);
        assert_eq!(sorted_rows(&mut t, 1, 0, 5), vec![3, 0, 1, 2, 4]);
    }

    #[test]
    fn nan_sorts_last_with_total_order() {
        let x = Matrix::from_rows(&[&[f64::NAN], &[1.0], &[f64::NAN], &[0.0]]);
        let ps = PresortedDataset::build(&x);
        let mut t = PresortTraversal::identity(&ps);
        assert_eq!(sorted_rows(&mut t, 0, 0, 4), vec![3, 1, 0, 2]);
        // Bit-identical NaNs share a rank, and an all-NaN-free constant
        // check must not claim a NaN column.
        assert_eq!(ps.n_ranks[0], 3);
        assert!(!ps.is_constant(0));
    }

    #[test]
    fn partition_keeps_children_row_ascending() {
        let ps = PresortedDataset::build(&sample_matrix());
        let mut t = PresortTraversal::identity(&ps);
        // Split on feature 0 at 1.5: rows 1 and 3 go left.
        let n_left = t.partition(0, 5, 0, 1.5);
        assert_eq!(n_left, 2);
        assert_eq!(t.rows_segment(0, 2), &[1, 3]);
        assert_eq!(t.rows_segment(2, 5), &[0, 2, 4]);
        // Sorted orders re-derived per child stay consistent.
        assert_eq!(sorted_rows(&mut t, 1, 0, 2), vec![3, 1]);
        assert_eq!(sorted_rows(&mut t, 1, 2, 5), vec![0, 2, 4]);
    }

    #[test]
    fn mapped_order_matches_stable_sort_of_materialized_sample() {
        let x = sample_matrix();
        let ps = PresortedDataset::build(&x);
        let map = vec![4u32, 0, 0, 2, 1, 3];
        let mut t = PresortTraversal::with_map(&ps, map.clone());
        for f in 0..x.cols() {
            let mut expect: Vec<u32> = (0..map.len() as u32).collect();
            expect.sort_by(|&a, &b| {
                x.get(map[a as usize] as usize, f)
                    .total_cmp(&x.get(map[b as usize] as usize, f))
            });
            assert_eq!(sorted_rows(&mut t, f, 0, map.len()), expect, "feature {f}");
        }
    }

    #[test]
    fn reset_identity_restores_row_order() {
        let ps = PresortedDataset::build(&sample_matrix());
        let mut t = PresortTraversal::identity(&ps);
        t.partition(0, 5, 0, 1.5);
        t.reset_identity();
        assert_eq!(t.rows_segment(0, 5), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn constant_column_is_detected() {
        let x = Matrix::from_rows(&[&[2.5, 1.0], &[2.5, 2.0], &[2.5, 3.0]]);
        let ps = PresortedDataset::build(&x);
        assert!(ps.is_constant(0));
        assert!(!ps.is_constant(1));
    }

    #[test]
    fn node_constant_gather_is_skipped_unless_nan() {
        // Column 0: constant within the node [0, 3) only; column 1 is
        // NaN-constant and must still emit (the caller's `lo_v == hi_v`
        // guard is false for NaN, so legacy would proceed).
        let x = Matrix::from_rows(&[
            &[5.0, f64::NAN],
            &[5.0, f64::NAN],
            &[5.0, f64::NAN],
            &[7.0, f64::NAN],
        ]);
        let ps = PresortedDataset::build(&x);
        let mut t = PresortTraversal::identity(&ps);
        let mut hits = 0usize;
        assert!(!t.gather_node(0, 0, 3, |_, _, _| hits += 1));
        assert_eq!(hits, 0);
        assert!(t.gather_node(1, 0, 3, |_, _, _| hits += 1));
        assert_eq!(hits, 3);
        assert!(t.gather_node(0, 0, 4, |_, _, _| hits += 1));
        assert_eq!(hits, 7);
    }

    #[test]
    fn append_rows_matches_fresh_build() {
        let base = sample_matrix();
        let extra = Matrix::from_rows(&[&[2.0, 5.0], &[0.5, 1.0], &[3.0, -1.0]]);
        let mut ps = PresortedDataset::build(&base);
        ps.append_rows(&extra);
        assert_eq!(ps, PresortedDataset::build(&base.vstack(&extra)));
        // Appending nothing changes nothing.
        let before = ps.clone();
        ps.append_rows(&Matrix::zeros(0, 2));
        assert_eq!(ps, before);
    }

    #[test]
    fn append_rows_handles_nan_zero_signs_and_ties() {
        let base = Matrix::from_rows(&[&[f64::NAN, -0.0], &[1.0, 0.0], &[1.0, 3.0]]);
        let extra = Matrix::from_rows(&[
            &[f64::NAN, 0.0],
            &[-1.0, -0.0],
            &[1.0, f64::NAN],
            &[f64::INFINITY, 3.0],
        ]);
        let mut ps = PresortedDataset::build(&base);
        ps.append_rows(&extra);
        let fresh = PresortedDataset::build(&base.vstack(&extra));
        // Derived `PartialEq` cannot see through NaN cells; the
        // bit-exact relation can (and `==` must disagree here, proving
        // the NaN cells are really present).
        assert!(ps.bit_identical(&fresh));
        assert_ne!(ps, fresh);
    }

    #[test]
    fn append_into_empty_cache_matches_fresh_build() {
        let extra = sample_matrix();
        let mut ps = PresortedDataset::build(&Matrix::zeros(0, 2));
        ps.append_rows(&extra);
        assert_eq!(ps, PresortedDataset::build(&extra));
    }

    #[test]
    #[should_panic(expected = "feature count")]
    fn append_rejects_width_mismatch() {
        PresortedDataset::build(&sample_matrix()).append_rows(&Matrix::zeros(1, 3));
    }

    #[test]
    fn fit_cache_builds_once() {
        let x = sample_matrix();
        let cache = FitCache::new();
        let a = cache.presorted(&x) as *const PresortedDataset;
        let b = cache.presorted(&x) as *const PresortedDataset;
        assert_eq!(a, b);
    }
}
