//! Random-forest classifier (Breiman 2001).
//!
//! This is the algorithm the paper ultimately selects for *monitorless*
//! (Table 3: F1₂ = 0.997): 250 trees, `min_samples_leaf` around 20,
//! information-gain splitting and no class weighting, with the decision
//! threshold later lowered to 0.4 to favour recall (Section 4).

use monitorless_obs as obs;
use monitorless_std::rng::{Rng, StdRng};

use crate::presort::{FitCache, PresortTraversal, PresortedDataset};
use crate::tree::{DecisionTree, DecisionTreeParams, MaxFeatures, SplitCriterion, Splitter};
use crate::{validate_fit_input, Classifier, Error, Matrix};

/// Class weighting schemes from the Table 2 grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClassWeight {
    /// No reweighting (the value the grid search selected).
    #[default]
    None,
    /// Weights inversely proportional to class frequencies in the full
    /// training set.
    Balanced,
    /// Like `Balanced`, but computed per bootstrap sample.
    BalancedSubsample,
}

/// Hyper-parameters for [`RandomForest`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_estimators: usize,
    /// Split criterion for every tree.
    pub criterion: SplitCriterion,
    /// Maximum depth per tree (`None` = unbounded).
    pub max_depth: Option<usize>,
    /// Minimum samples to split a node.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split (defaults to `sqrt`).
    pub max_features: MaxFeatures,
    /// Whether to draw bootstrap samples.
    pub bootstrap: bool,
    /// Class weighting scheme.
    pub class_weight: ClassWeight,
    /// Number of worker threads for training (1 = sequential).
    pub n_jobs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams {
            n_estimators: 100,
            criterion: SplitCriterion::Gini,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
            class_weight: ClassWeight::None,
            n_jobs: 1,
            seed: 0,
        }
    }
}

impl RandomForestParams {
    /// The configuration the paper's grid search selected (Section 3.4):
    /// 250 trees, 20 samples per leaf, information gain, no class weights.
    pub fn paper_selected() -> Self {
        RandomForestParams {
            n_estimators: 250,
            criterion: SplitCriterion::Entropy,
            min_samples_leaf: 20,
            min_samples_split: 2,
            class_weight: ClassWeight::None,
            ..RandomForestParams::default()
        }
    }
}

/// Random-forest binary classifier with impurity feature importances.
///
/// ```
/// use monitorless_learn::prelude::*;
///
/// # fn main() -> Result<(), monitorless_learn::Error> {
/// let x = Matrix::from_rows(&[
///     &[0.0, 1.0], &[0.1, 0.9], &[0.2, 1.1], &[0.9, 1.0], &[1.0, 0.9], &[1.1, 1.1],
/// ]);
/// let y = vec![0, 0, 0, 1, 1, 1];
/// let mut rf = RandomForest::new(RandomForestParams {
///     n_estimators: 25,
///     ..RandomForestParams::default()
/// });
/// rf.fit(&x, &y, None)?;
/// assert_eq!(rf.predict(&x), y);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    params: RandomForestParams,
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Creates an unfitted forest with the given hyper-parameters.
    pub fn new(params: RandomForestParams) -> Self {
        RandomForest {
            params,
            trees: Vec::new(),
            n_features: 0,
        }
    }

    /// The hyper-parameters this forest was configured with.
    pub fn params(&self) -> &RandomForestParams {
        &self.params
    }

    /// Whether `fit` has completed successfully.
    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }

    /// The fitted trees (empty before fitting).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Mean impurity-decrease feature importances across trees,
    /// normalized to sum to 1.
    ///
    /// Used to reproduce the Table 4 top-30 feature ranking and the
    /// Section 3.3.4 filtering step (union of per-dataset top-30 lists).
    ///
    /// # Panics
    ///
    /// Panics if the forest is unfitted.
    pub fn feature_importances(&self) -> Vec<f64> {
        assert!(self.is_fitted(), "forest must be fitted");
        let mut acc = vec![0.0; self.n_features];
        for tree in &self.trees {
            for (a, &i) in acc.iter_mut().zip(tree.feature_importances()) {
                *a += i;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }

    /// Indices of the `k` most important features, descending by
    /// importance (ties broken by index).
    ///
    /// # Panics
    ///
    /// Panics if the forest is unfitted.
    pub fn top_features(&self, k: usize) -> Vec<usize> {
        let imp = self.feature_importances();
        let mut idx: Vec<usize> = (0..imp.len()).collect();
        idx.sort_by(|&a, &b| imp[b].total_cmp(&imp[a]).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }

    /// Compiles the fitted forest into a
    /// [`FlatEnsemble`](crate::flat::FlatEnsemble): all trees' nodes in
    /// one SoA table, finalized by the mean over trees. Predictions are
    /// bit-identical to [`RandomForest::predict_proba_legacy`].
    ///
    /// Long-lived callers (the monitorless model) compile once and
    /// reuse; [`Classifier::predict_proba`] compiles per call.
    ///
    /// # Panics
    ///
    /// Panics if the forest is unfitted.
    pub fn to_flat(&self) -> crate::flat::FlatEnsemble {
        assert!(self.is_fitted(), "forest must be fitted before flattening");
        let mut builder = crate::flat::FlatBuilder::new(
            self.n_features,
            0.0,
            crate::flat::Finalize::Mean(self.trees.len() as f64),
        );
        for tree in &self.trees {
            tree.flatten_into(&mut builder, |p| p);
        }
        builder.build()
    }

    /// Reference implementation of [`Classifier::predict_proba`]: the
    /// legacy recursive per-row walk, kept for the flat-equivalence
    /// property suite and the `table7_predict` bench baseline.
    ///
    /// # Panics
    ///
    /// Panics if the forest is unfitted or `x` has a different column
    /// count than the training matrix.
    pub fn predict_proba_legacy(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.is_fitted(), "forest must be fitted before predicting");
        assert_eq!(x.cols(), self.n_features, "feature count must match training data");
        // Walk the trees block-by-block so every tree's nodes stay hot
        // in cache while a block of rows streams through. Per row, trees
        // still accumulate in tree order — results are bit-identical to
        // the per-tree sweep.
        const BLOCK: usize = 256;
        let mut acc = vec![0.0; x.rows()];
        let mut start = 0;
        while start < x.rows() {
            let end = (start + BLOCK).min(x.rows());
            for tree in &self.trees {
                for (off, a) in acc[start..end].iter_mut().enumerate() {
                    *a += tree.predict_row(x.row(start + off));
                }
            }
            start = end;
        }
        let n = self.trees.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }

    fn class_weights_for(y: &[u8], indices: &[usize]) -> (f64, f64) {
        let n = indices.len() as f64;
        let n1 = indices.iter().filter(|&&i| y[i] == 1).count() as f64;
        let n0 = n - n1;
        // sklearn "balanced": n_samples / (n_classes * bincount).
        let w0 = if n0 > 0.0 { n / (2.0 * n0) } else { 0.0 };
        let w1 = if n1 > 0.0 { n / (2.0 * n1) } else { 0.0 };
        (w0, w1)
    }

    fn train_one(
        &self,
        ps: &PresortedDataset,
        y: &[u8],
        base_weight: &[f64],
        global_cw: (f64, f64),
        tree_idx: usize,
    ) -> DecisionTree {
        let _tree_span = obs::Span::enter("forest.tree_fit");
        let mut rng = StdRng::seed_from_u64(
            self.params
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(tree_idx as u64),
        );
        let n = ps.n_rows();
        let indices: Vec<usize> = if self.params.bootstrap {
            (0..n).map(|_| rng.gen_range(0..n)).collect()
        } else {
            (0..n).collect()
        };

        let cw = match self.params.class_weight {
            ClassWeight::None => (1.0, 1.0),
            ClassWeight::Balanced => global_cw,
            ClassWeight::BalancedSubsample => Self::class_weights_for(y, &indices),
        };

        let yb: Vec<u8> = indices.iter().map(|&i| y[i]).collect();
        let wb: Vec<f64> = indices
            .iter()
            .map(|&i| base_weight[i] * if y[i] == 1 { cw.1 } else { cw.0 })
            .collect();

        let mut tree = DecisionTree::new(DecisionTreeParams {
            criterion: self.params.criterion,
            splitter: Splitter::Best,
            max_depth: self.params.max_depth,
            min_samples_split: self.params.min_samples_split,
            min_samples_leaf: self.params.min_samples_leaf,
            max_features: self.params.max_features,
            seed: rng.gen(),
        });
        // Instead of materializing the bootstrap matrix, derive its
        // sorted order from the shared presorted cache.
        let mut trav = if self.params.bootstrap {
            PresortTraversal::with_map(ps, indices.iter().map(|&i| i as u32).collect())
        } else {
            PresortTraversal::identity(ps)
        };
        // A bootstrap sample may contain a single class; fall back to a
        // stump trained on the full data in that unlikely case.
        if tree.fit_traversal(&mut trav, &yb, Some(&wb)).is_err() {
            let mut fallback = DecisionTree::new(DecisionTreeParams {
                max_depth: Some(1),
                ..DecisionTreeParams::default()
            });
            fallback
                .fit_presorted(ps, y, Some(base_weight))
                .expect("full training data was validated in fit");
            return fallback;
        }
        tree
    }

    /// Fits on an already presorted view of the training matrix — the
    /// entry point shared classifiers use via [`Classifier::fit_cached`].
    pub fn fit_presorted(
        &mut self,
        ps: &PresortedDataset,
        y: &[u8],
        sample_weight: Option<&[f64]>,
    ) -> Result<(), Error> {
        crate::validate_fit_parts(ps.n_rows(), ps.n_features(), y, sample_weight)?;
        if self.params.n_estimators == 0 {
            return Err(Error::InvalidParameter("n_estimators must be at least 1".into()));
        }
        self.n_features = ps.n_features();
        let base_weight: Vec<f64> = match sample_weight {
            Some(w) => w.to_vec(),
            None => vec![1.0; ps.n_rows()],
        };
        let all: Vec<usize> = (0..ps.n_rows()).collect();
        let global_cw = Self::class_weights_for(y, &all);

        let n_jobs = self.params.n_jobs.max(1);
        let n_trees = self.params.n_estimators;
        let fit_span = obs::Span::enter("forest.fit");
        obs::gauge_set("forest.workers", n_jobs as f64);
        if n_jobs == 1 {
            self.trees = (0..n_trees)
                .map(|t| self.train_one(ps, y, &base_weight, global_cw, t))
                .collect();
        } else {
            let mut trees: Vec<Option<DecisionTree>> = vec![None; n_trees];
            let this = &*self;
            let bw = &base_weight;
            // Summed busy time across workers; together with the wall
            // clock of the whole scope this yields worker utilization.
            let busy_us = std::sync::atomic::AtomicU64::new(0);
            let busy = &busy_us;
            let chunk_size = n_trees.div_ceil(n_jobs);
            monitorless_std::pool::for_each_chunk_mut(&mut trees, n_jobs, |chunk_id, chunk| {
                let started = obs::enabled().then(std::time::Instant::now);
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let t = chunk_id * chunk_size + off;
                    *slot = Some(this.train_one(ps, y, bw, global_cw, t));
                }
                if let Some(started) = started {
                    let us = started.elapsed().as_micros() as u64;
                    obs::observe("forest.worker_busy_us", us as f64);
                    busy.fetch_add(us, std::sync::atomic::Ordering::Relaxed);
                }
            });
            if let Some(wall_us) = fit_span.elapsed_us() {
                if wall_us > 0.0 {
                    let total_busy = busy_us.load(std::sync::atomic::Ordering::Relaxed) as f64;
                    obs::gauge_set(
                        "forest.worker_utilization",
                        total_busy / (n_jobs as f64 * wall_us),
                    );
                }
            }
            self.trees = trees
                .into_iter()
                .map(|t| t.expect("all tree slots are filled by workers"))
                .collect();
        }
        drop(fit_span);
        obs::counter_add("forest.fits", 1);
        obs::counter_add("forest.trees_trained", n_trees as u64);
        Ok(())
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[u8], sample_weight: Option<&[f64]>) -> Result<(), Error> {
        validate_fit_input(x, y, sample_weight)?;
        let ps = PresortedDataset::build(x);
        self.fit_presorted(&ps, y, sample_weight)
    }

    fn fit_cached(
        &mut self,
        x: &Matrix,
        cache: &FitCache,
        y: &[u8],
        sample_weight: Option<&[f64]>,
    ) -> Result<(), Error> {
        validate_fit_input(x, y, sample_weight)?;
        self.fit_presorted(cache.presorted(x), y, sample_weight)
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.is_fitted(), "forest must be fitted before predicting");
        assert_eq!(x.cols(), self.n_features, "feature count must match training data");
        // Compile to the flat SoA table and run the blocked lockstep
        // evaluator, sharding rows over the training worker count.
        // Bit-identical to `predict_proba_legacy` for every `n_jobs`.
        self.to_flat().predict_proba(x, self.params.n_jobs)
    }

    fn name(&self) -> &'static str {
        "RandomForest"
    }
}

monitorless_std::json_enum!(ClassWeight {
    None,
    Balanced,
    BalancedSubsample,
});
monitorless_std::json_struct!(RandomForestParams {
    n_estimators,
    criterion,
    max_depth,
    min_samples_split,
    min_samples_leaf,
    max_features,
    bootstrap,
    class_weight,
    n_jobs,
    seed,
});
monitorless_std::json_struct!(RandomForest {
    params,
    trees,
    n_features,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(n_per_class: usize) -> (Matrix, Vec<u8>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..n_per_class {
            rows.push(vec![rng.gen::<f64>() * 0.4, rng.gen::<f64>() * 0.4]);
            y.push(0);
            rows.push(vec![0.6 + rng.gen::<f64>() * 0.4, 0.6 + rng.gen::<f64>() * 0.4]);
            y.push(1);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y)
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, y) = blob_data(30);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 30,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y, None).unwrap();
        assert_eq!(rf.predict(&x), y);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (x, y) = blob_data(20);
        let mut seq = RandomForest::new(RandomForestParams {
            n_estimators: 16,
            n_jobs: 1,
            seed: 3,
            ..RandomForestParams::default()
        });
        let mut par = RandomForest::new(RandomForestParams {
            n_estimators: 16,
            n_jobs: 4,
            seed: 3,
            ..RandomForestParams::default()
        });
        seq.fit(&x, &y, None).unwrap();
        par.fit(&x, &y, None).unwrap();
        assert_eq!(seq.predict_proba(&x), par.predict_proba(&x));
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let (x, y) = blob_data(15);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 10,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y, None).unwrap();
        assert!(rf
            .predict_proba(&x)
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn importances_identify_informative_feature() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..60 {
            let informative = if i % 2 == 0 { 0.1 } else { 0.9 };
            rows.push(vec![informative + rng.gen::<f64>() * 0.05, rng.gen()]);
            y.push(u8::from(i % 2 == 1));
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 20,
            max_features: MaxFeatures::All,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y, None).unwrap();
        let imp = rf.feature_importances();
        assert!(imp[0] > imp[1]);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(rf.top_features(1), vec![0]);
    }

    #[test]
    fn class_weight_balanced_raises_minority_probability() {
        // 90/10 imbalance on inseparable data: balancing raises the
        // positive-class probability.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            rows.push(vec![0.5]);
            y.push(u8::from(i < 10));
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut plain = RandomForest::new(RandomForestParams {
            n_estimators: 10,
            class_weight: ClassWeight::None,
            seed: 1,
            ..RandomForestParams::default()
        });
        let mut balanced = RandomForest::new(RandomForestParams {
            n_estimators: 10,
            class_weight: ClassWeight::Balanced,
            seed: 1,
            ..RandomForestParams::default()
        });
        plain.fit(&x, &y, None).unwrap();
        balanced.fit(&x, &y, None).unwrap();
        let p_plain = plain.predict_proba(&x)[0];
        let p_bal = balanced.predict_proba(&x)[0];
        assert!(p_bal > p_plain);
        assert!((p_bal - 0.5).abs() < 0.15);
    }

    #[test]
    fn threshold_04_is_more_recall_oriented() {
        let (x, y) = blob_data(20);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 15,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y, None).unwrap();
        let at_05: usize = rf
            .predict_with_threshold(&x, 0.5)
            .iter()
            .map(|&v| v as usize)
            .sum();
        let at_04: usize = rf
            .predict_with_threshold(&x, 0.4)
            .iter()
            .map(|&v| v as usize)
            .sum();
        assert!(at_04 >= at_05);
    }

    #[test]
    fn zero_estimators_rejected() {
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 0,
            ..RandomForestParams::default()
        });
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        assert!(matches!(rf.fit(&x, &[0, 1], None), Err(Error::InvalidParameter(_))));
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let (x, y) = blob_data(10);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 8,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y, None).unwrap();
        let json = monitorless_std::json::to_string(&rf);
        let back: RandomForest = monitorless_std::json::from_str(&json).unwrap();
        assert_eq!(back.predict_proba(&x), rf.predict_proba(&x));
    }
}
