//! Linear models: logistic regression (SAG) and a linear SVC.
//!
//! The paper's grid (Table 2) examines `C`, `tol` and `class_weight` for
//! logistic regression — trained with the stochastic average gradient
//! optimizer (Schmidt et al. 2017), matching scikit-learn's `solver="sag"`
//! — and `C`, `tol`, `penalty` (l1/l2) and `class_weight` for the
//! LIBLINEAR-based SVC, which we train with a Pegasos-style projected
//! subgradient method plus an L1 proximal step when requested.

use monitorless_std::rng::{Rng, StdRng};

use crate::{validate_fit_input, Classifier, Error, Matrix};

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Regularization penalty for [`LinearSvc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Penalty {
    /// Lasso penalty (sparse weights) — the value the grid search chose.
    L1,
    /// Ridge penalty.
    #[default]
    L2,
}

/// Class weights shared by the linear models.
fn class_weights(y: &[u8], balanced: bool) -> (f64, f64) {
    if !balanced {
        return (1.0, 1.0);
    }
    let n = y.len() as f64;
    let n1 = y.iter().filter(|&&t| t == 1).count() as f64;
    let n0 = n - n1;
    (n / (2.0 * n0.max(1.0)), n / (2.0 * n1.max(1.0)))
}

/// Hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegressionParams {
    /// Inverse regularization strength (larger = less regularization).
    pub c: f64,
    /// Convergence tolerance on the maximum weight change per epoch.
    pub tol: f64,
    /// Maximum number of SAG epochs.
    pub max_iter: usize,
    /// Whether to balance class weights.
    pub balanced: bool,
    /// RNG seed for sample ordering.
    pub seed: u64,
}

impl Default for LogisticRegressionParams {
    fn default() -> Self {
        LogisticRegressionParams {
            c: 1.0,
            tol: 1e-4,
            max_iter: 100,
            balanced: false,
            seed: 0,
        }
    }
}

/// L2-regularized logistic regression trained with SAG.
///
/// ```
/// use monitorless_learn::prelude::*;
///
/// # fn main() -> Result<(), monitorless_learn::Error> {
/// let x = Matrix::from_rows(&[&[0.0], &[0.1], &[0.9], &[1.0]]);
/// let y = vec![0, 0, 1, 1];
/// let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
/// lr.fit(&x, &y, None)?;
/// assert_eq!(lr.predict(&x), y);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    params: LogisticRegressionParams,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LogisticRegression {
    /// Creates an unfitted model with the given hyper-parameters.
    pub fn new(params: LogisticRegressionParams) -> Self {
        LogisticRegression {
            params,
            weights: Vec::new(),
            bias: 0.0,
            fitted: false,
        }
    }

    /// The hyper-parameters this model was configured with.
    pub fn params(&self) -> &LogisticRegressionParams {
        &self.params
    }

    /// Whether `fit` has completed successfully.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Learned coefficients (empty before fitting).
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn intercept(&self) -> f64 {
        self.bias
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[u8], sample_weight: Option<&[f64]>) -> Result<(), Error> {
        validate_fit_input(x, y, sample_weight)?;
        if self.params.c <= 0.0 {
            return Err(Error::InvalidParameter("C must be positive".into()));
        }
        let n = x.rows();
        let d = x.cols();
        let (cw0, cw1) = class_weights(y, self.params.balanced);
        let base_w: Vec<f64> = (0..n)
            .map(|i| {
                let sw = sample_weight.map_or(1.0, |w| w[i]);
                sw * if y[i] == 1 { cw1 } else { cw0 }
            })
            .collect();

        // SAG: keep the last residual per sample; the update direction is
        // the running average gradient plus the L2 term.
        let lambda = 1.0 / (self.params.c * n as f64);
        let max_row_sq = x
            .iter_rows()
            .map(|r| r.iter().map(|v| v * v).sum::<f64>())
            .fold(0.0_f64, f64::max);
        // sklearn's SAG step size: 1 / (L) with L = 0.25 * max||x||^2 + lambda.
        let step = 1.0 / (0.25 * (max_row_sq + 1.0) + lambda).max(1e-12);

        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let mut residual_mem = vec![0.0_f64; n];
        let mut grad_sum = vec![0.0_f64; d];
        let mut grad_sum_bias = 0.0_f64;
        let mut seen = 0usize;
        let mut rng = StdRng::seed_from_u64(self.params.seed);

        for _epoch in 0..self.params.max_iter {
            let mut max_change = 0.0_f64;
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                let row = x.row(i);
                let z = self.bias
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, b)| a * b)
                        .sum::<f64>();
                let resid = base_w[i] * (sigmoid(z) - y[i] as f64);
                let delta = resid - residual_mem[i];
                if residual_mem[i] == 0.0 && seen < n {
                    seen += 1;
                }
                residual_mem[i] = resid;
                for (g, &xv) in grad_sum.iter_mut().zip(row) {
                    *g += delta * xv;
                }
                grad_sum_bias += delta;
                let m = seen.max(1) as f64;
                for (w, &g) in self.weights.iter_mut().zip(grad_sum.iter()) {
                    let upd = step * (g / m + lambda * *w);
                    *w -= upd;
                    max_change = max_change.max(upd.abs());
                }
                let upd_b = step * (grad_sum_bias / m);
                self.bias -= upd_b;
                max_change = max_change.max(upd_b.abs());
            }
            if max_change < self.params.tol {
                break;
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.fitted, "model must be fitted before predicting");
        x.iter_rows()
            .map(|row| {
                let z = self.bias
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, b)| a * b)
                        .sum::<f64>();
                sigmoid(z)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "LogisticRegression"
    }
}

/// Hyper-parameters for [`LinearSvc`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvcParams {
    /// Inverse regularization strength.
    pub c: f64,
    /// Convergence tolerance on the epoch-average weight change.
    pub tol: f64,
    /// Regularization penalty.
    pub penalty: Penalty,
    /// Maximum number of epochs.
    pub max_iter: usize,
    /// Whether to balance class weights.
    pub balanced: bool,
    /// RNG seed for sample ordering.
    pub seed: u64,
}

impl Default for LinearSvcParams {
    fn default() -> Self {
        LinearSvcParams {
            c: 1.0,
            tol: 1e-3,
            penalty: Penalty::L2,
            max_iter: 200,
            balanced: false,
            seed: 0,
        }
    }
}

/// Linear support-vector classifier (hinge loss).
///
/// `predict_proba` maps the signed margin through a logistic link, which
/// is enough for thresholded decisions (the paper does not use calibrated
/// SVC probabilities).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvc {
    params: LinearSvcParams,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LinearSvc {
    /// Creates an unfitted model with the given hyper-parameters.
    pub fn new(params: LinearSvcParams) -> Self {
        LinearSvc {
            params,
            weights: Vec::new(),
            bias: 0.0,
            fitted: false,
        }
    }

    /// The hyper-parameters this model was configured with.
    pub fn params(&self) -> &LinearSvcParams {
        &self.params
    }

    /// Whether `fit` has completed successfully.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Learned coefficients (empty before fitting).
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }

    /// Signed margin for each row.
    ///
    /// # Panics
    ///
    /// Panics if the model is unfitted.
    pub fn decision_function(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.fitted, "model must be fitted before predicting");
        x.iter_rows()
            .map(|row| {
                self.bias
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
            })
            .collect()
    }
}

impl Classifier for LinearSvc {
    fn fit(&mut self, x: &Matrix, y: &[u8], sample_weight: Option<&[f64]>) -> Result<(), Error> {
        validate_fit_input(x, y, sample_weight)?;
        if self.params.c <= 0.0 {
            return Err(Error::InvalidParameter("C must be positive".into()));
        }
        let n = x.rows();
        let d = x.cols();
        let (cw0, cw1) = class_weights(y, self.params.balanced);
        let lambda = 1.0 / (self.params.c * n as f64);
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut t = 1u64;

        for _epoch in 0..self.params.max_iter {
            let mut change = 0.0_f64;
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                let row = x.row(i);
                let y_pm = if y[i] == 1 { 1.0 } else { -1.0 };
                let wi = sample_weight.map_or(1.0, |w| w[i]) * if y[i] == 1 { cw1 } else { cw0 };
                let margin = y_pm
                    * (self.bias
                        + row
                            .iter()
                            .zip(&self.weights)
                            .map(|(a, b)| a * b)
                            .sum::<f64>());
                let eta = 1.0 / (lambda * t as f64);
                t += 1;
                // L2 shrinkage happens implicitly for the L2 penalty;
                // for L1 a proximal soft-threshold is applied instead.
                match self.params.penalty {
                    Penalty::L2 => {
                        for w in &mut self.weights {
                            *w *= 1.0 - (eta * lambda).min(0.5);
                        }
                    }
                    Penalty::L1 => {
                        let shrink = eta * lambda;
                        for w in &mut self.weights {
                            *w = w.signum() * (w.abs() - shrink).max(0.0);
                        }
                    }
                }
                if margin < 1.0 {
                    let scale = (eta * wi).min(1.0);
                    for (w, &xv) in self.weights.iter_mut().zip(row) {
                        *w += scale * y_pm * xv;
                    }
                    self.bias += scale * y_pm;
                    change += scale;
                }
            }
            if change / (n as f64) < self.params.tol {
                break;
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.decision_function(x).into_iter().map(sigmoid).collect()
    }

    fn name(&self) -> &'static str {
        "LinearSVC"
    }
}

monitorless_std::json_enum!(Penalty { L1, L2 });
monitorless_std::json_struct!(LogisticRegressionParams {
    c,
    tol,
    max_iter,
    balanced,
    seed,
});
monitorless_std::json_struct!(LogisticRegression {
    params,
    weights,
    bias,
    fitted,
});
monitorless_std::json_struct!(LinearSvcParams {
    c,
    tol,
    penalty,
    max_iter,
    balanced,
    seed,
});
monitorless_std::json_struct!(LinearSvc {
    params,
    weights,
    bias,
    fitted,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n: usize) -> (Matrix, Vec<u8>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..n {
            rows.push(vec![rng.gen::<f64>() * 0.4, rng.gen::<f64>() * 0.4]);
            y.push(0);
            rows.push(vec![0.6 + rng.gen::<f64>() * 0.4, 0.6 + rng.gen::<f64>() * 0.4]);
            y.push(1);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y)
    }

    #[test]
    fn logreg_learns_separable() {
        let (x, y) = separable(30);
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        lr.fit(&x, &y, None).unwrap();
        let acc = crate::metrics::accuracy(&y, &lr.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn logreg_probabilities_monotone_in_margin() {
        let (x, y) = separable(20);
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        lr.fit(&x, &y, None).unwrap();
        let far_neg = Matrix::from_rows(&[&[0.0, 0.0]]);
        let far_pos = Matrix::from_rows(&[&[1.0, 1.0]]);
        assert!(lr.predict_proba(&far_neg)[0] < lr.predict_proba(&far_pos)[0]);
    }

    #[test]
    fn logreg_strong_regularization_shrinks_weights() {
        let (x, y) = separable(20);
        let mut weak = LogisticRegression::new(LogisticRegressionParams {
            c: 100.0,
            ..LogisticRegressionParams::default()
        });
        let mut strong = LogisticRegression::new(LogisticRegressionParams {
            c: 0.001,
            ..LogisticRegressionParams::default()
        });
        weak.fit(&x, &y, None).unwrap();
        strong.fit(&x, &y, None).unwrap();
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(strong.coefficients()) < norm(weak.coefficients()));
    }

    #[test]
    fn logreg_balanced_shifts_imbalanced_probability() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            rows.push(vec![0.5]);
            y.push(u8::from(i < 5));
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut plain = LogisticRegression::new(LogisticRegressionParams::default());
        let mut bal = LogisticRegression::new(LogisticRegressionParams {
            balanced: true,
            ..LogisticRegressionParams::default()
        });
        plain.fit(&x, &y, None).unwrap();
        bal.fit(&x, &y, None).unwrap();
        assert!(bal.predict_proba(&x)[0] > plain.predict_proba(&x)[0]);
    }

    #[test]
    fn logreg_rejects_nonpositive_c() {
        let mut lr = LogisticRegression::new(LogisticRegressionParams {
            c: 0.0,
            ..LogisticRegressionParams::default()
        });
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        assert!(lr.fit(&x, &[0, 1], None).is_err());
    }

    #[test]
    fn svc_learns_separable() {
        let (x, y) = separable(30);
        let mut svc = LinearSvc::new(LinearSvcParams::default());
        svc.fit(&x, &y, None).unwrap();
        let acc = crate::metrics::accuracy(&y, &svc.predict(&x));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn svc_l1_produces_sparser_weights() {
        // Add noise features; the L1 penalty should zero more of them.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..60 {
            let informative = if i % 2 == 0 { 0.0 } else { 1.0 };
            let mut row = vec![informative];
            for _ in 0..8 {
                row.push(rng.gen::<f64>() * 0.01);
            }
            rows.push(row);
            y.push(u8::from(i % 2 == 1));
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut l1 = LinearSvc::new(LinearSvcParams {
            penalty: Penalty::L1,
            c: 0.05,
            ..LinearSvcParams::default()
        });
        l1.fit(&x, &y, None).unwrap();
        // The proximal step drives noise weights to (numerically) zero while
        // the informative weight stays large.
        let near_zero = l1.coefficients()[1..]
            .iter()
            .filter(|w| w.abs() < 1e-3)
            .count();
        assert!(
            near_zero >= 6 && l1.coefficients()[0].abs() > 0.1,
            "expected sparse weights, got {:?}",
            l1.coefficients()
        );
    }

    #[test]
    fn svc_decision_function_sign_matches_predictions() {
        let (x, y) = separable(15);
        let mut svc = LinearSvc::new(LinearSvcParams::default());
        svc.fit(&x, &y, None).unwrap();
        for (df, p) in svc.decision_function(&x).iter().zip(svc.predict(&x)) {
            assert_eq!(p == 1, *df >= 0.0);
        }
    }

    #[test]
    fn svc_rejects_nonpositive_c() {
        let mut svc = LinearSvc::new(LinearSvcParams {
            c: -1.0,
            ..LinearSvcParams::default()
        });
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        assert!(svc.fit(&x, &[0, 1], None).is_err());
    }

    #[test]
    fn linear_models_serde_roundtrip() {
        let (x, y) = separable(10);
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        lr.fit(&x, &y, None).unwrap();
        let back: LogisticRegression =
            monitorless_std::json::from_str(&monitorless_std::json::to_string(&lr)).unwrap();
        assert_eq!(back.predict_proba(&x), lr.predict_proba(&x));
    }
}
