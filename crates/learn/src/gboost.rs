//! Second-order gradient boosting (XGBoost-style) with logistic loss.
//!
//! Reproduces the `XGBoost` entry of the paper's comparison (Tables 2/3):
//! exact greedy split finding on first/second-order gradients, with the
//! grid's `min_child_weight`, `max_depth` and `gamma` regularizers plus an
//! L2 leaf penalty `lambda` and shrinkage.

use crate::presort::{FitCache, PresortTraversal};
use crate::{validate_fit_input, Classifier, Error, Matrix};

/// Hyper-parameters for [`GradientBoosting`].
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoostingParams {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Maximum depth of each regression tree.
    pub max_depth: usize,
    /// Minimum sum of hessians required in each child (`min_child_weight`).
    pub min_child_weight: f64,
    /// Minimum loss reduction required to make a split (`gamma`).
    pub gamma: f64,
    /// L2 regularization on leaf weights (`lambda`).
    pub lambda: f64,
    /// Shrinkage applied to each tree's output (`eta`).
    pub learning_rate: f64,
}

impl Default for GradientBoostingParams {
    fn default() -> Self {
        GradientBoostingParams {
            n_rounds: 50,
            max_depth: 4,
            min_child_weight: 1.0,
            gamma: 0.0,
            lambda: 1.0,
            learning_rate: 0.3,
        }
    }
}

impl GradientBoostingParams {
    /// The configuration the paper's grid search selected (Table 2):
    /// `min_child_weight = 1`, `max_depth = 64`, `gamma = 0`.
    ///
    /// Depth 64 is effectively unbounded for moderate datasets; rounds and
    /// shrinkage follow the XGBoost defaults the paper used.
    pub fn paper_selected() -> Self {
        GradientBoostingParams {
            min_child_weight: 1.0,
            max_depth: 64,
            gamma: 0.0,
            ..GradientBoostingParams::default()
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum RegNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct RegTree {
    nodes: Vec<RegNode>,
}

impl RegTree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                RegNode::Leaf { value } => return *value,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    }
                }
            }
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Gradient-boosted trees for binary classification.
///
/// ```
/// use monitorless_learn::prelude::*;
///
/// # fn main() -> Result<(), monitorless_learn::Error> {
/// let x = Matrix::from_rows(&[
///     &[0.0], &[0.1], &[0.2], &[0.3], &[0.7], &[0.8], &[0.9], &[1.0],
/// ]);
/// let y = vec![0, 0, 0, 0, 1, 1, 1, 1];
/// let mut gb = GradientBoosting::new(GradientBoostingParams::default());
/// gb.fit(&x, &y, None)?;
/// assert_eq!(gb.predict(&x), y);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoosting {
    params: GradientBoostingParams,
    trees: Vec<RegTree>,
    base_score: f64,
    n_features: usize,
}

impl GradientBoosting {
    /// Creates an unfitted booster with the given hyper-parameters.
    pub fn new(params: GradientBoostingParams) -> Self {
        GradientBoosting {
            params,
            trees: Vec::new(),
            base_score: 0.0,
            n_features: 0,
        }
    }

    /// The hyper-parameters this booster was configured with.
    pub fn params(&self) -> &GradientBoostingParams {
        &self.params
    }

    /// Whether `fit` has completed successfully.
    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }

    /// Number of fitted boosting rounds.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Raw log-odds decision function.
    fn decision_function(&self, x: &Matrix) -> Vec<f64> {
        let mut score = vec![self.base_score; x.rows()];
        for tree in &self.trees {
            for (s, row) in score.iter_mut().zip(x.iter_rows()) {
                *s += self.params.learning_rate * tree.predict_row(row);
            }
        }
        score
    }

    /// Compiles the fitted booster into a
    /// [`FlatEnsemble`](crate::flat::FlatEnsemble). Leaf values arrive
    /// pre-shrunk (`learning_rate * value`) and the accumulator starts
    /// at `base_score`, so predictions are bit-identical to
    /// [`GradientBoosting::predict_proba_legacy`].
    ///
    /// # Panics
    ///
    /// Panics if the booster is unfitted.
    pub fn to_flat(&self) -> crate::flat::FlatEnsemble {
        assert!(self.is_fitted(), "booster must be fitted before flattening");
        let lr = self.params.learning_rate;
        let mut builder = crate::flat::FlatBuilder::new(
            self.n_features,
            self.base_score,
            crate::flat::Finalize::Sigmoid,
        );
        for tree in &self.trees {
            builder.begin_tree();
            for node in &tree.nodes {
                match node {
                    RegNode::Leaf { value } => builder.push_leaf(lr * value),
                    RegNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        builder.push_split(*feature as u32, *threshold, *left as u32, *right as u32)
                    }
                }
            }
        }
        builder.build()
    }

    /// Reference implementation of [`Classifier::predict_proba`]: the
    /// legacy per-tree recursive walk, kept for the flat-equivalence
    /// property suite.
    ///
    /// # Panics
    ///
    /// Panics if the booster is unfitted.
    pub fn predict_proba_legacy(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.is_fitted(), "booster must be fitted before predicting");
        self.decision_function(x).into_iter().map(sigmoid).collect()
    }

    // `!(next > cur)` is deliberate: unlike `next <= cur` it also
    // rejects NaN boundaries (see the comment at the comparison site).
    #[allow(clippy::too_many_arguments, clippy::neg_cmp_op_on_partial_ord)]
    fn build_tree(
        &self,
        trav: &mut PresortTraversal<'_>,
        grad: &[f64],
        hess: &[f64],
        lo: usize,
        hi: usize,
        depth: usize,
        nodes: &mut Vec<RegNode>,
        sorted: &mut Vec<(f64, f64, f64)>,
    ) -> usize {
        let g: f64 = trav
            .rows_segment(lo, hi)
            .iter()
            .map(|&i| grad[i as usize])
            .sum();
        let h: f64 = trav
            .rows_segment(lo, hi)
            .iter()
            .map(|&i| hess[i as usize])
            .sum();
        let leaf_value = -g / (h + self.params.lambda);

        if depth >= self.params.max_depth || hi - lo < 2 {
            nodes.push(RegNode::Leaf { value: leaf_value });
            return nodes.len() - 1;
        }

        // Exact greedy split search over all features, sweeping the
        // presorted per-feature segments (no per-node sort).
        let parent_score = g * g / (h + self.params.lambda);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for feature in 0..self.n_features {
            if trav.dataset().is_constant(feature) {
                continue;
            }
            // gboost never resamples rows, so virtual row == matrix row.
            sorted.resize(hi - lo, (0.0, 0.0, 0.0));
            let emitted = trav.gather_node(feature, lo, hi, |slot, v, value| {
                let vi = v as usize;
                sorted[slot] = (value, grad[vi], hess[vi]);
            });
            if !emitted {
                // Node-constant non-NaN feature: no boundary satisfies
                // `next > cur`, so the sweep below could never yield a
                // candidate anyway.
                continue;
            }
            if sorted[0].0 == sorted[sorted.len() - 1].0 {
                continue;
            }
            let (mut gl, mut hl) = (0.0, 0.0);
            for i in 0..sorted.len() - 1 {
                gl += sorted[i].1;
                hl += sorted[i].2;
                let next = sorted[i + 1].0;
                let cur = sorted[i].0;
                // `!(next > cur)` also rejects a NaN boundary (sorted
                // last under `total_cmp`): a NaN midpoint threshold
                // would send every row right and never make progress.
                if !(next > cur) {
                    continue;
                }
                let gr = g - gl;
                let hr = h - hl;
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                // Zero-gain ties are accepted when gamma = 0 so symmetric
                // problems (XOR) can still make progress, as in tree.rs.
                let gain = 0.5
                    * (gl * gl / (hl + self.params.lambda) + gr * gr / (hr + self.params.lambda)
                        - parent_score)
                    - self.params.gamma;
                if gain >= 0.0 && best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((feature, cur + (next - cur) / 2.0, gain));
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            nodes.push(RegNode::Leaf { value: leaf_value });
            return nodes.len() - 1;
        };
        let n_left = trav.partition(lo, hi, feature, threshold);
        let pos = nodes.len();
        nodes.push(RegNode::Split {
            feature,
            threshold,
            left: 0,
            right: 0,
        });
        let l = self.build_tree(trav, grad, hess, lo, lo + n_left, depth + 1, nodes, sorted);
        let r = self.build_tree(trav, grad, hess, lo + n_left, hi, depth + 1, nodes, sorted);
        if let RegNode::Split { left, right, .. } = &mut nodes[pos] {
            *left = l;
            *right = r;
        }
        pos
    }
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, x: &Matrix, y: &[u8], sample_weight: Option<&[f64]>) -> Result<(), Error> {
        let cache = FitCache::new();
        self.fit_cached(x, &cache, y, sample_weight)
    }

    fn fit_cached(
        &mut self,
        x: &Matrix,
        cache: &FitCache,
        y: &[u8],
        sample_weight: Option<&[f64]>,
    ) -> Result<(), Error> {
        validate_fit_input(x, y, sample_weight)?;
        if self.params.n_rounds == 0 {
            return Err(Error::InvalidParameter("n_rounds must be at least 1".into()));
        }
        if self.params.learning_rate <= 0.0 || self.params.lambda < 0.0 {
            return Err(Error::InvalidParameter(
                "learning_rate must be positive and lambda non-negative".into(),
            ));
        }
        self.trees.clear();
        self.n_features = x.cols();
        let n = x.rows();
        let w: Vec<f64> = match sample_weight {
            Some(sw) => sw.to_vec(),
            None => vec![1.0; n],
        };
        let pos_w: f64 = y
            .iter()
            .zip(&w)
            .filter(|(&t, _)| t == 1)
            .map(|(_, &wi)| wi)
            .sum();
        let tot_w: f64 = w.iter().sum();
        let p0 = (pos_w / tot_w).clamp(1e-6, 1.0 - 1e-6);
        self.base_score = (p0 / (1.0 - p0)).ln();

        let fit_span = monitorless_obs::Span::enter("gboost.fit");
        // One presort serves every boosting round: gradients change, the
        // per-feature sort order does not.
        let ps = cache.presorted(x);
        let mut trav = PresortTraversal::identity(ps);
        let mut sorted: Vec<(f64, f64, f64)> = Vec::with_capacity(n);
        let mut score = vec![self.base_score; n];
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        for round in 0..self.params.n_rounds {
            let _round_span = monitorless_obs::Span::enter("gboost.tree_fit");
            for i in 0..n {
                let p = sigmoid(score[i]);
                grad[i] = w[i] * (p - y[i] as f64);
                hess[i] = w[i] * (p * (1.0 - p)).max(1e-12);
            }
            let mut nodes = Vec::new();
            if round > 0 {
                trav.reset_identity();
            }
            self.build_tree(&mut trav, &grad, &hess, 0, n, 0, &mut nodes, &mut sorted);
            let tree = RegTree { nodes };
            for (s, row) in score.iter_mut().zip(x.iter_rows()) {
                *s += self.params.learning_rate * tree.predict_row(row);
            }
            self.trees.push(tree);
        }
        drop(fit_span);
        monitorless_obs::counter_add("gboost.fits", 1);
        monitorless_obs::counter_add("gboost.trees_trained", self.params.n_rounds as u64);
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.is_fitted(), "booster must be fitted before predicting");
        assert_eq!(x.cols(), self.n_features, "feature count must match training data");
        self.to_flat().predict_proba(x, 1)
    }

    fn name(&self) -> &'static str {
        "XGBoost-style GradientBoosting"
    }
}

monitorless_std::json_struct!(GradientBoostingParams {
    n_rounds,
    max_depth,
    min_child_weight,
    gamma,
    lambda,
    learning_rate,
});
monitorless_std::json_struct!(RegTree { nodes });
monitorless_std::json_struct!(GradientBoosting {
    params,
    trees,
    base_score,
    n_features,
});

// `RegNode` variants carry data, so they keep the externally tagged
// encoding by hand.
impl monitorless_std::json::ToJson for RegNode {
    fn to_json(&self) -> monitorless_std::json::Json {
        use monitorless_std::json::Json;
        match self {
            RegNode::Leaf { value } => {
                Json::Obj(vec![("Leaf".into(), Json::Obj(vec![("value".into(), value.to_json())]))])
            }
            RegNode::Split {
                feature,
                threshold,
                left,
                right,
            } => Json::Obj(vec![(
                "Split".into(),
                Json::Obj(vec![
                    ("feature".into(), feature.to_json()),
                    ("threshold".into(), threshold.to_json()),
                    ("left".into(), left.to_json()),
                    ("right".into(), right.to_json()),
                ]),
            )]),
        }
    }
}

impl monitorless_std::json::FromJson for RegNode {
    fn from_json(
        json: &monitorless_std::json::Json,
    ) -> Result<Self, monitorless_std::json::JsonError> {
        use monitorless_std::json::{field, Json, JsonError};
        match json {
            Json::Obj(members) => match members.first().map(|(k, v)| (k.as_str(), v)) {
                Some(("Leaf", body)) => Ok(RegNode::Leaf {
                    value: field(body, "value")?,
                }),
                Some(("Split", body)) => Ok(RegNode::Split {
                    feature: field(body, "feature")?,
                    threshold: field(body, "threshold")?,
                    left: field(body, "left")?,
                    right: field(body, "right")?,
                }),
                _ => Err(JsonError("unknown RegNode variant".into())),
            },
            _ => Err(JsonError("expected RegNode object".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<u8>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for k in 0..4 {
                rows.push(vec![a + 0.02 * k as f64, b + 0.02 * k as f64]);
                y.push(u8::from((a > 0.5) != (b > 0.5)));
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut gb = GradientBoosting::new(GradientBoostingParams::default());
        gb.fit(&x, &y, None).unwrap();
        assert_eq!(gb.predict(&x), y);
    }

    #[test]
    fn more_rounds_reduce_training_loss() {
        let (x, y) = xor_data();
        let loss = |gb: &GradientBoosting| -> f64 {
            gb.predict_proba(&x)
                .iter()
                .zip(&y)
                .map(|(&p, &t)| {
                    let p = p.clamp(1e-9, 1.0 - 1e-9);
                    if t == 1 {
                        -p.ln()
                    } else {
                        -(1.0 - p).ln()
                    }
                })
                .sum()
        };
        let mut short = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 2,
            ..GradientBoostingParams::default()
        });
        let mut long = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 40,
            ..GradientBoostingParams::default()
        });
        short.fit(&x, &y, None).unwrap();
        long.fit(&x, &y, None).unwrap();
        assert!(loss(&long) < loss(&short));
    }

    #[test]
    fn min_child_weight_limits_growth() {
        let (x, y) = xor_data();
        let mut strict = GradientBoosting::new(GradientBoostingParams {
            min_child_weight: 1e6,
            n_rounds: 3,
            ..GradientBoostingParams::default()
        });
        strict.fit(&x, &y, None).unwrap();
        // No split can satisfy the hessian floor, so every tree is a leaf
        // and predictions stay at the base rate.
        let p = strict.predict_proba(&x);
        assert!(p.iter().all(|&v| (v - p[0]).abs() < 1e-9));
    }

    #[test]
    fn gamma_prunes_weak_splits() {
        let (x, y) = xor_data();
        let mut pruned = GradientBoosting::new(GradientBoostingParams {
            gamma: 1e9,
            n_rounds: 3,
            ..GradientBoostingParams::default()
        });
        pruned.fit(&x, &y, None).unwrap();
        let p = pruned.predict_proba(&x);
        assert!(p.iter().all(|&v| (v - p[0]).abs() < 1e-9));
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = xor_data();
        let mut gb = GradientBoosting::new(GradientBoostingParams::default());
        gb.fit(&x, &y, None).unwrap();
        assert!(gb
            .predict_proba(&x)
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn sample_weights_shift_base_score() {
        let x = Matrix::from_rows(&[&[0.0], &[0.0], &[0.0], &[0.0]]);
        let y = vec![0, 0, 0, 1];
        let mut gb = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 1,
            ..GradientBoostingParams::default()
        });
        gb.fit(&x, &y, Some(&[1.0, 1.0, 1.0, 3.0])).unwrap();
        let p = gb.predict_proba(&x)[0];
        assert!((p - 0.5).abs() < 0.05, "p = {p}");
    }

    #[test]
    fn invalid_params_rejected() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let mut gb = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 0,
            ..GradientBoostingParams::default()
        });
        assert!(gb.fit(&x, &[0, 1], None).is_err());
        let mut gb = GradientBoosting::new(GradientBoostingParams {
            learning_rate: -1.0,
            ..GradientBoostingParams::default()
        });
        assert!(gb.fit(&x, &[0, 1], None).is_err());
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let (x, y) = xor_data();
        let mut gb = GradientBoosting::new(GradientBoostingParams::default());
        gb.fit(&x, &y, None).unwrap();
        let json = monitorless_std::json::to_string(&gb);
        let back: GradientBoosting = monitorless_std::json::from_str(&json).unwrap();
        assert_eq!(back.predict_proba(&x), gb.predict_proba(&x));
    }
}
