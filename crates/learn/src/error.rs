use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The input matrix had zero rows or zero columns.
    EmptyInput,
    /// Two inputs that must agree in length/shape did not.
    DimensionMismatch {
        /// The length the API expected.
        expected: usize,
        /// The length it received.
        got: usize,
    },
    /// Labels were not binary 0/1, or only one class was present.
    InvalidLabels,
    /// A hyper-parameter was out of its valid range.
    InvalidParameter(String),
    /// The model was used before `fit` succeeded.
    NotFitted,
    /// A numerical routine failed to converge.
    NoConvergence(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyInput => write!(f, "input matrix is empty"),
            Error::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            Error::InvalidLabels => {
                write!(f, "labels must be binary 0/1 and contain both classes")
            }
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::NotFitted => write!(f, "model has not been fitted"),
            Error::NoConvergence(msg) => write!(f, "no convergence: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            Error::EmptyInput,
            Error::DimensionMismatch {
                expected: 3,
                got: 2,
            },
            Error::InvalidLabels,
            Error::InvalidParameter("C must be positive".into()),
            Error::NotFitted,
            Error::NoConvergence("jacobi sweep limit".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
