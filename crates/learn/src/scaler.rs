//! Feature scalers: min-max scaling and standardization.
//!
//! The paper uses scikit-learn's `MinMaxScaler` for the iterative
//! training-set improvement loop (Section 3.2.3) and `StandardScaler` for
//! feature normalization (Section 3.3.3). Both are reproduced here behind
//! the [`Transformer`] trait.

use crate::{Error, Matrix};

/// A fit/transform preprocessing step.
pub trait Transformer: std::fmt::Debug {
    /// Learns the transformation parameters from `x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyInput`] when `x` has no rows or columns.
    fn fit(&mut self, x: &Matrix) -> Result<(), Error>;

    /// Applies the learned transformation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] if called before [`Transformer::fit`],
    /// or [`Error::DimensionMismatch`] on a column-count mismatch.
    fn transform(&self, x: &Matrix) -> Result<Matrix, Error>;

    /// Convenience: `fit` followed by `transform` on the same data.
    ///
    /// # Errors
    ///
    /// Propagates errors from either step.
    fn fit_transform(&mut self, x: &Matrix) -> Result<Matrix, Error> {
        self.fit(x)?;
        self.transform(x)
    }
}

/// Scales each feature to the `[0, 1]` range observed during `fit`.
///
/// ```
/// use monitorless_learn::{Matrix, MinMaxScaler, Transformer};
///
/// # fn main() -> Result<(), monitorless_learn::Error> {
/// let mut s = MinMaxScaler::new();
/// let t = s.fit_transform(&Matrix::from_rows(&[&[0.0], &[10.0]]))?;
/// assert_eq!(t.column(0), vec![0.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MinMaxScaler {
    mins: Option<Vec<f64>>,
    maxs: Option<Vec<f64>>,
}

impl MinMaxScaler {
    /// Creates an unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-feature minima learned during `fit`, if fitted.
    pub fn mins(&self) -> Option<&[f64]> {
        self.mins.as_deref()
    }

    /// The per-feature maxima learned during `fit`, if fitted.
    pub fn maxs(&self) -> Option<&[f64]> {
        self.maxs.as_deref()
    }

    /// Indices of features in `x` whose observed range exceeds the fitted
    /// range — the paper's *training-set coverage* check (Section 3.2.3,
    /// step 2): a validation feature outside the fitted scaling range means
    /// that feature was not sufficiently trained.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] if the scaler was never fitted, or
    /// [`Error::DimensionMismatch`] on a column-count mismatch.
    pub fn uncovered_features(&self, x: &Matrix) -> Result<Vec<usize>, Error> {
        let (mins, maxs) = match (&self.mins, &self.maxs) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(Error::NotFitted),
        };
        if x.cols() != mins.len() {
            return Err(Error::DimensionMismatch {
                expected: mins.len(),
                got: x.cols(),
            });
        }
        let (xmins, xmaxs) = x.column_min_max();
        Ok((0..x.cols())
            .filter(|&c| xmins[c] < mins[c] || xmaxs[c] > maxs[c])
            .collect())
    }
}

impl Transformer for MinMaxScaler {
    fn fit(&mut self, x: &Matrix) -> Result<(), Error> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(Error::EmptyInput);
        }
        let (mins, maxs) = x.column_min_max();
        self.mins = Some(mins);
        self.maxs = Some(maxs);
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix, Error> {
        let (mins, maxs) = match (&self.mins, &self.maxs) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(Error::NotFitted),
        };
        if x.cols() != mins.len() {
            return Err(Error::DimensionMismatch {
                expected: mins.len(),
                got: x.cols(),
            });
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                let range = maxs[c] - mins[c];
                *v = if range > 0.0 {
                    (*v - mins[c]) / range
                } else {
                    0.0
                };
            }
        }
        Ok(out)
    }
}

/// Standardizes each feature to zero mean and unit standard deviation.
///
/// Features with zero variance are left centered at zero (division is
/// skipped), matching scikit-learn behaviour.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StandardScaler {
    means: Option<Vec<f64>>,
    stds: Option<Vec<f64>>,
}

impl StandardScaler {
    /// Creates an unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-feature means learned during `fit`, if fitted.
    pub fn means(&self) -> Option<&[f64]> {
        self.means.as_deref()
    }

    /// The per-feature standard deviations learned during `fit`, if fitted.
    pub fn stds(&self) -> Option<&[f64]> {
        self.stds.as_deref()
    }

    /// Standardizes a single row without building a 1-row [`Matrix`].
    ///
    /// Bit-identical to [`Transformer::transform`] on a 1-row matrix:
    /// each value is centered, then divided by the standard deviation
    /// only when it is positive (zero-variance columns stay centered).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`, or
    /// [`Error::DimensionMismatch`] on a length mismatch.
    pub fn transform_row(&self, row: &[f64]) -> Result<Vec<f64>, Error> {
        let mut out = Vec::new();
        self.transform_row_into(row, &mut out)?;
        Ok(out)
    }

    /// Like [`StandardScaler::transform_row`], writing into `out`
    /// (cleared first) so steady-state callers can reuse the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`, or
    /// [`Error::DimensionMismatch`] on a length mismatch.
    pub fn transform_row_into(&self, row: &[f64], out: &mut Vec<f64>) -> Result<(), Error> {
        let (means, stds) = match (&self.means, &self.stds) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(Error::NotFitted),
        };
        if row.len() != means.len() {
            return Err(Error::DimensionMismatch {
                expected: means.len(),
                got: row.len(),
            });
        }
        out.clear();
        out.extend_from_slice(row);
        for (c, v) in out.iter_mut().enumerate() {
            *v -= means[c];
            if stds[c] > 0.0 {
                *v /= stds[c];
            }
        }
        Ok(())
    }
}

impl Transformer for StandardScaler {
    fn fit(&mut self, x: &Matrix) -> Result<(), Error> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(Error::EmptyInput);
        }
        self.means = Some(x.column_means());
        self.stds = Some(x.column_stds());
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix, Error> {
        let (means, stds) = match (&self.means, &self.stds) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(Error::NotFitted),
        };
        if x.cols() != means.len() {
            return Err(Error::DimensionMismatch {
                expected: means.len(),
                got: x.cols(),
            });
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v -= means[c];
                if stds[c] > 0.0 {
                    *v /= stds[c];
                }
            }
        }
        Ok(out)
    }
}

monitorless_std::json_struct!(MinMaxScaler { mins, maxs });
monitorless_std::json_struct!(StandardScaler { means, stds });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_maps_to_unit_interval() {
        let mut s = MinMaxScaler::new();
        let x = Matrix::from_rows(&[&[2.0, -1.0], &[4.0, 1.0], &[3.0, 0.0]]);
        let t = s.fit_transform(&x).unwrap();
        let (mins, maxs) = t.column_min_max();
        assert_eq!(mins, vec![0.0, 0.0]);
        assert_eq!(maxs, vec![1.0, 1.0]);
    }

    #[test]
    fn minmax_constant_feature_maps_to_zero() {
        let mut s = MinMaxScaler::new();
        let x = Matrix::from_rows(&[&[5.0], &[5.0]]);
        let t = s.fit_transform(&x).unwrap();
        assert_eq!(t.column(0), vec![0.0, 0.0]);
    }

    #[test]
    fn minmax_transform_before_fit_errors() {
        let s = MinMaxScaler::new();
        assert!(matches!(s.transform(&Matrix::zeros(1, 1)), Err(Error::NotFitted)));
    }

    #[test]
    fn uncovered_features_detects_out_of_range() {
        let mut s = MinMaxScaler::new();
        s.fit(&Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]))
            .unwrap();
        let val = Matrix::from_rows(&[&[0.5, 2.0]]);
        assert_eq!(s.uncovered_features(&val).unwrap(), vec![1]);
    }

    #[test]
    fn standard_zero_mean_unit_std() {
        let mut s = StandardScaler::new();
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let t = s.fit_transform(&x).unwrap();
        let mean: f64 = t.column(0).iter().sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        let std = t.column_stds()[0];
        assert!((std - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standard_constant_feature_centered() {
        let mut s = StandardScaler::new();
        let t = s
            .fit_transform(&Matrix::from_rows(&[&[3.0], &[3.0]]))
            .unwrap();
        assert_eq!(t.column(0), vec![0.0, 0.0]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut s = StandardScaler::new();
        s.fit(&Matrix::zeros(2, 2)).unwrap();
        assert!(matches!(s.transform(&Matrix::zeros(2, 3)), Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn transform_row_matches_one_row_matrix_path() {
        let mut s = StandardScaler::new();
        // Column 1 has zero variance: the division is skipped and values
        // stay centered at zero — transform_row must follow the same
        // convention bit for bit.
        let x = Matrix::from_rows(&[&[1.0, 3.0, -2.0], &[2.0, 3.0, 5.0], &[4.0, 3.0, 0.25]]);
        s.fit(&x).unwrap();
        for probe in [[7.5, 3.0, -1.25], [0.0, 9.0, f64::MAX], [-3.0, 3.0, 1e-300]] {
            let via_matrix = s.transform(&Matrix::from_rows(&[&probe])).unwrap();
            let via_row = s.transform_row(&probe).unwrap();
            assert_eq!(via_row.len(), 3);
            for (a, b) in via_row.iter().zip(via_matrix.row(0)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            let mut reused = vec![99.0; 8];
            s.transform_row_into(&probe, &mut reused).unwrap();
            assert_eq!(reused, via_row);
        }
    }

    #[test]
    fn transform_row_checks_fit_and_width() {
        let s = StandardScaler::new();
        assert!(matches!(s.transform_row(&[1.0]), Err(Error::NotFitted)));
        let mut s = StandardScaler::new();
        s.fit(&Matrix::zeros(2, 2)).unwrap();
        assert!(matches!(s.transform_row(&[1.0]), Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn scalers_serialize() {
        let mut s = StandardScaler::new();
        s.fit(&Matrix::from_rows(&[&[1.0], &[2.0]])).unwrap();
        let json = monitorless_std::json::to_string(&s);
        let back: StandardScaler = monitorless_std::json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
