//! Labeled dataset container used throughout the pipeline.

use crate::{Error, Matrix};

/// A labeled dataset: feature matrix, binary labels, feature names and
/// group ids.
///
/// The group id records which *training configuration* (Table 1 row) each
/// sample came from, so cross-validation can partition by configuration
/// instead of by sample — the paper's 5-fold scheme uses 20 sets for
/// training and 5 sets for validation per fold.
///
/// ```
/// use monitorless_learn::{Dataset, Matrix};
///
/// let ds = Dataset::new(
///     Matrix::from_rows(&[&[1.0], &[2.0]]),
///     vec![0, 1],
///     vec!["cpu.util".into()],
///     vec![0, 0],
/// ).unwrap();
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.positive_fraction(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    x: Matrix,
    y: Vec<u8>,
    feature_names: Vec<String>,
    groups: Vec<u32>,
}

impl Dataset {
    /// Creates a dataset, validating that all components agree in shape.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if labels or groups do not match
    /// the number of rows, or feature names the number of columns, and
    /// [`Error::InvalidLabels`] if any label is not 0/1.
    pub fn new(
        x: Matrix,
        y: Vec<u8>,
        feature_names: Vec<String>,
        groups: Vec<u32>,
    ) -> Result<Self, Error> {
        if y.len() != x.rows() {
            return Err(Error::DimensionMismatch {
                expected: x.rows(),
                got: y.len(),
            });
        }
        if groups.len() != x.rows() {
            return Err(Error::DimensionMismatch {
                expected: x.rows(),
                got: groups.len(),
            });
        }
        if feature_names.len() != x.cols() {
            return Err(Error::DimensionMismatch {
                expected: x.cols(),
                got: feature_names.len(),
            });
        }
        if y.iter().any(|&l| l > 1) {
            return Err(Error::InvalidLabels);
        }
        Ok(Dataset {
            x,
            y,
            feature_names,
            groups,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// The feature matrix.
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// The binary labels.
    pub fn y(&self) -> &[u8] {
        &self.y
    }

    /// The feature names (one per column).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The group id of each sample.
    pub fn groups(&self) -> &[u32] {
        &self.groups
    }

    /// Fraction of positive (saturated) samples; 0.0 when empty.
    ///
    /// The paper reports 26% saturated samples in the combined training set.
    pub fn positive_fraction(&self) -> f64 {
        if self.y.is_empty() {
            return 0.0;
        }
        self.y.iter().filter(|&&l| l == 1).count() as f64 / self.y.len() as f64
    }

    /// Sorted list of distinct group ids.
    pub fn distinct_groups(&self) -> Vec<u32> {
        let mut g: Vec<u32> = self.groups.clone();
        g.sort_unstable();
        g.dedup();
        g
    }

    /// Returns a new dataset with only the rows at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            feature_names: self.feature_names.clone(),
            groups: indices.iter().map(|&i| self.groups[i]).collect(),
        }
    }

    /// Returns a new dataset keeping only the feature columns at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_features(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_columns(indices),
            y: self.y.clone(),
            feature_names: indices
                .iter()
                .map(|&i| self.feature_names[i].clone())
                .collect(),
            groups: self.groups.clone(),
        }
    }

    /// Concatenates two datasets with identical feature sets.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the feature counts differ.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset, Error> {
        if self.n_features() != other.n_features() {
            return Err(Error::DimensionMismatch {
                expected: self.n_features(),
                got: other.n_features(),
            });
        }
        let mut y = self.y.clone();
        y.extend_from_slice(&other.y);
        let mut groups = self.groups.clone();
        groups.extend_from_slice(&other.groups);
        Ok(Dataset {
            x: self.x.vstack(&other.x),
            y,
            feature_names: self.feature_names.clone(),
            groups,
        })
    }

    /// Decomposes the dataset into `(x, y, feature_names, groups)`.
    pub fn into_parts(self) -> (Matrix, Vec<u8>, Vec<String>, Vec<u32>) {
        (self.x, self.y, self.feature_names, self.groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            Matrix::from_rows(&[&[1.0, 9.0], &[2.0, 8.0], &[3.0, 7.0], &[4.0, 6.0]]),
            vec![0, 0, 1, 1],
            vec!["a".into(), "b".into()],
            vec![0, 0, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_shapes() {
        let x = Matrix::zeros(2, 1);
        assert!(Dataset::new(x.clone(), vec![0], vec!["f".into()], vec![0, 0]).is_err());
        assert!(Dataset::new(x.clone(), vec![0, 1], vec![], vec![0, 0]).is_err());
        assert!(Dataset::new(x.clone(), vec![0, 1], vec!["f".into()], vec![0]).is_err());
        assert!(Dataset::new(x, vec![0, 2], vec!["f".into()], vec![0, 0]).is_err());
    }

    #[test]
    fn positive_fraction_counts_ones() {
        assert_eq!(toy().positive_fraction(), 0.5);
    }

    #[test]
    fn subset_keeps_alignment() {
        let s = toy().subset(&[2, 0]);
        assert_eq!(s.y(), &[1, 0]);
        assert_eq!(s.groups(), &[1, 0]);
        assert_eq!(s.x().get(0, 0), 3.0);
    }

    #[test]
    fn select_features_renames() {
        let s = toy().select_features(&[1]);
        assert_eq!(s.feature_names(), &["b".to_string()]);
        assert_eq!(s.x().column(0), vec![9.0, 8.0, 7.0, 6.0]);
    }

    #[test]
    fn concat_appends_rows() {
        let d = toy();
        let joined = d.concat(&d).unwrap();
        assert_eq!(joined.len(), 8);
        assert_eq!(joined.n_features(), 2);
    }

    #[test]
    fn concat_rejects_mismatch() {
        let d = toy();
        let narrow = d.select_features(&[0]);
        assert!(d.concat(&narrow).is_err());
    }

    #[test]
    fn distinct_groups_sorted() {
        assert_eq!(toy().distinct_groups(), vec![0, 1]);
    }
}
