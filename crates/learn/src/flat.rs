//! Flattened, cache-friendly batched inference over fitted tree ensembles.
//!
//! The legacy predict path walks one row at a time through boxed `Node`
//! enums (`DecisionTree::predict_row`): every level is a dependent load
//! — the next node address is only known once the current 40-byte enum
//! arrives — so a 250-tree forest costs thousands of serialized cache
//! round-trips per row. This module compiles a fitted ensemble once
//! into a contiguous struct-of-arrays node table and evaluates blocks
//! of rows in lockstep:
//!
//! * [`FlatEnsemble`] holds all trees' nodes in four parallel arrays
//!   (`feature: u32`, `threshold: f64`, `left`/`right: u32` — 20 bytes
//!   per node, half the enum layout). Each tree is laid out
//!   breadth-first, so siblings sit in adjacent slots
//!   (`right == left + 1`) and levels form contiguous runs: the
//!   evaluator's layout contract. Leaves are marked with the
//!   [`LEAF`] sentinel in `feature` and store their value inline in
//!   `threshold`. Leaf values are **pre-transformed** at compile time
//!   (AdaBoost's per-stage vote or log-odds term, gradient boosting's
//!   shrinkage) so the hot loop is load-and-add for every ensemble.
//! * The blocked evaluator ([`FlatEnsemble::predict_into`]) walks
//!   [`BLOCK`] rows at a time through each tree, advancing *all* rows
//!   of the block one level per branchless pass. The rows' walks are
//!   independent, so the out-of-order core overlaps their node fetches
//!   instead of stalling on one row's pointer chase, and the BFS
//!   layout means a descending block touches monotonically increasing
//!   indices — prefetch-friendly, with the shared top levels staying
//!   hot in L1. Rows that reach a leaf self-loop there cheaply until
//!   the block's stragglers arrive.
//! * [`FlatEnsemble::predict_proba`] shards row ranges over
//!   `monitorless_std::pool` workers; rows are independent, so results
//!   are bit-identical for every `n_jobs`.
//!   [`FlatEnsemble::predict_rows_into`] is the same evaluator over a
//!   raw row-major slice — the fleet serving tick's entry, which reuses
//!   one gather matrix and one output buffer across ticks.
//! * When the table is losslessly compressible, `build` additionally
//!   emits a **packed side table** the blocked evaluator runs on:
//!   split feature and left-child index share one `u32`
//!   (10 + 22 bits), and the threshold becomes a `u16` index into a
//!   deduplicated f64 value pool — 6 bytes of node state per step
//!   instead of 16, so the paper-shaped 250-tree forest's walk state
//!   drops from ~4 MB to ~1.5 MB and the hot levels stay resident in
//!   L2. The packed pass also runs at a fixed [`BLOCK`]-width trip
//!   count (tail blocks pad by repeating the last row), giving the
//!   compiler a constant-length inner loop. Thresholds are deduplicated
//!   by *bit pattern*, so every comparison loads the identical f64 and
//!   results stay bit-for-bit equal to the wide table; ensembles that
//!   exceed the packed limits (1023 features, 2^22 nodes, 65536
//!   distinct threshold/leaf bit patterns) silently keep the wide path.
//! * [`FlatEnsemble::predict_row`] is the allocation-free single-row
//!   entry used by the autoscaler tick path.
//!
//! Split semantics are exactly the legacy walk's: `row[feature] <=
//! threshold` goes left, anything else — including NaN, for which the
//! comparison is false — goes right, matching the training-time
//! partition of NaN rows. Accumulation per row runs in tree order and
//! the finalizer applies the same expressions as the legacy
//! implementations, so predictions are bit-for-bit identical
//! (`tests/flat_equivalence.rs` pins the property).

use monitorless_obs as obs;

use crate::matrix::Matrix;

/// Sentinel in [`FlatEnsemble`]'s `feature` array marking a leaf node
/// (its `threshold` slot holds the pre-transformed leaf value).
pub const LEAF: u32 = u32::MAX;

/// Rows walked in lockstep per tree. 64 rows keep the pass state (two
/// index arrays and the output slice) inside a few cache lines while
/// exposing enough independent walks to hide node-fetch latency; the
/// bench sweep in `table7_predict` showed no gain past this size.
pub const BLOCK: usize = 64;

/// Bits of the packed node word spent on the left-child index.
const PACKED_LEFT_BITS: u32 = 22;
/// Mask extracting the left-child index from a packed node word.
const PACKED_LEFT_MASK: u32 = (1 << PACKED_LEFT_BITS) - 1;
/// Leaf sentinel in the packed word's 10-bit feature field.
const PACKED_LEAF: u32 = (1 << (32 - PACKED_LEFT_BITS)) - 1;

/// Losslessly compressed node table the blocked evaluator prefers when
/// the ensemble fits its index widths: one `u32` per node packing the
/// split feature (high 10 bits, [`PACKED_LEAF`] marks leaves) with the
/// left-child index (low 22 bits; leaves self-reference), plus a `u16`
/// per node indexing the deduplicated `values` pool that holds both
/// split thresholds and pre-transformed leaf values. Values are pooled
/// by f64 *bit pattern*, so the packed walk loads the identical bits
/// the wide arrays hold and stays bit-identical.
#[derive(Debug, Clone, PartialEq)]
struct PackedTable {
    /// `feature << PACKED_LEFT_BITS | left` per node.
    node: Vec<u32>,
    /// Index into `values` per node.
    value_idx: Vec<u16>,
    /// Deduplicated thresholds and leaf values, first-appearance order.
    values: Vec<f64>,
}

impl PackedTable {
    /// Compresses the wide arrays, or `None` when an index would not
    /// fit: more than 1023 features, 2^22 nodes, or 65536 distinct
    /// value bit patterns.
    fn compress(
        feature: &[u32],
        threshold: &[f64],
        left: &[u32],
        n_features: usize,
    ) -> Option<Self> {
        if n_features >= PACKED_LEAF as usize || feature.len() > PACKED_LEFT_MASK as usize + 1 {
            return None;
        }
        let mut pool: std::collections::HashMap<u64, u16> = std::collections::HashMap::new();
        let mut values = Vec::new();
        let mut node = Vec::with_capacity(feature.len());
        let mut value_idx = Vec::with_capacity(feature.len());
        for ((&f, &thr), &l) in feature.iter().zip(threshold).zip(left) {
            let idx = match pool.entry(thr.to_bits()) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let next = u16::try_from(values.len()).ok()?;
                    values.push(thr);
                    *e.insert(next)
                }
            };
            let field = if f == LEAF { PACKED_LEAF } else { f };
            node.push(field << PACKED_LEFT_BITS | l);
            value_idx.push(idx);
        }
        Some(PackedTable {
            node,
            value_idx,
            values,
        })
    }

    /// Bytes of per-node walk state (`node` + `value_idx`).
    fn node_bytes(&self) -> usize {
        self.node.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<u16>())
    }
}

/// How a row's accumulated leaf sum becomes the final probability.
///
/// Each variant reproduces one legacy ensemble's post-processing
/// expression verbatim so results stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Finalize {
    /// Return the raw sum (single decision tree: the sum is one leaf
    /// probability).
    Sum,
    /// Divide by the tree count (random forest).
    Mean(f64),
    /// Logistic link over the normalized margin,
    /// `1 / (1 + exp(-2 (acc / norm)))` (AdaBoost; `norm` is the alpha
    /// sum for SAMME, `1.0` for SAMME.R).
    Logit(f64),
    /// Plain sigmoid `1 / (1 + exp(-acc))` (gradient boosting; the
    /// accumulator starts at `base_score`).
    Sigmoid,
}

/// A fitted tree ensemble compiled to a contiguous SoA node table.
///
/// Build one with the `to_flat` method of [`crate::DecisionTree`],
/// [`crate::RandomForest`], [`crate::AdaBoost`] or
/// [`crate::GradientBoosting`], or assemble it tree by tree with
/// [`FlatBuilder`]. The table is immutable; compiling costs one pass
/// over the ensemble's nodes, so long-lived callers (the monitorless
/// model, the autoscaler) compile once and reuse.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatEnsemble {
    /// Split feature per node; [`LEAF`] marks leaves.
    feature: Vec<u32>,
    /// Split threshold per node; at leaves, the pre-transformed value.
    threshold: Vec<f64>,
    /// Absolute index of the `<=` child.
    left: Vec<u32>,
    /// Absolute index of the `>` (and NaN) child.
    right: Vec<u32>,
    /// Absolute root index of each tree, in accumulation order.
    roots: Vec<u32>,
    /// Expected margin value per node: the leaf value at leaves, the
    /// unweighted mean of the two children at splits (computed once at
    /// build time; see [`FlatEnsemble::predict_row_attributed`]).
    node_value: Vec<f64>,
    /// Compressed node table the blocked evaluator runs on when the
    /// ensemble fits the packed index widths (`None`: wide fallback).
    packed: Option<PackedTable>,
    n_features: usize,
    /// Accumulator start value (gradient boosting's `base_score`).
    init: f64,
    finalize: Finalize,
}

impl FlatEnsemble {
    /// Total nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Feature count the ensemble was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Whether the blocked evaluator runs on the compressed node table
    /// (false: the ensemble exceeded a packed index width and the wide
    /// arrays serve batched prediction too).
    pub fn is_packed(&self) -> bool {
        self.packed.is_some()
    }

    /// Bytes of per-node walk state the blocked evaluator touches:
    /// the packed `u32`+`u16` arrays when compressed, the wide
    /// feature/threshold/left arrays otherwise. (The value pool and the
    /// attribution/`predict_row` arrays are not counted — the pool is a
    /// few hundred hot cache lines and the wide arrays stay for the
    /// single-row entries.)
    pub fn walk_bytes(&self) -> usize {
        match &self.packed {
            Some(p) => p.node_bytes(),
            None => self.n_nodes() * (2 * std::mem::size_of::<u32>() + std::mem::size_of::<f64>()),
        }
    }

    #[inline]
    fn finalize_value(&self, acc: f64) -> f64 {
        match self.finalize {
            Finalize::Sum => acc,
            Finalize::Mean(n) => acc / n,
            Finalize::Logit(norm) => {
                let z = acc / norm;
                1.0 / (1.0 + (-2.0 * z).exp())
            }
            Finalize::Sigmoid => 1.0 / (1.0 + (-acc).exp()),
        }
    }

    /// Probability of the positive class for a single sample.
    ///
    /// Performs no allocation — this is the autoscaler tick path
    /// (`table7_predict` asserts the allocation count stays zero).
    ///
    /// # Panics
    ///
    /// Panics if the ensemble is empty or `row` is shorter than the
    /// training feature count.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.roots.is_empty(), "flat ensemble has no trees");
        assert!(
            row.len() >= self.n_features,
            "row has {} features, ensemble was trained on {}",
            row.len(),
            self.n_features
        );
        let mut acc = self.init;
        for &root in &self.roots {
            let mut n = root as usize;
            loop {
                let f = self.feature[n];
                if f == LEAF {
                    acc += self.threshold[n];
                    break;
                }
                // `v <= thr` must stay the split test: NaN fails it
                // and falls to the right child, matching the legacy
                // recursive walk bit for bit.
                n = if row[f as usize] <= self.threshold[n] {
                    self.left[n] as usize
                } else {
                    self.right[n] as usize
                };
            }
        }
        self.finalize_value(acc)
    }

    /// The ensemble's expected margin before any feature is consulted:
    /// `init` plus each tree's root value. Together with the
    /// contribution vector of [`FlatEnsemble::predict_row_attributed`]
    /// this reconstructs the raw margin exactly:
    /// `baseline + Σ contributions = init + Σ leaf values`.
    pub fn baseline(&self) -> f64 {
        self.init
            + self
                .roots
                .iter()
                .map(|&r| self.node_value[r as usize])
                .sum::<f64>()
    }

    /// [`FlatEnsemble::predict_row`] plus per-feature attribution.
    ///
    /// Walks the same root-to-leaf paths with the same `v <= thr` test
    /// and the same accumulation order, so the returned probability is
    /// **bit-identical** to [`FlatEnsemble::predict_row`]. Along the
    /// way, every split step parent → child charges the split's feature
    /// with the change in expected margin,
    /// `node_value[child] − node_value[parent]` (the Saabas
    /// decomposition). Per tree those deltas telescope to
    /// `leaf − root`, so over the ensemble
    ///
    /// ```text
    /// baseline() + Σ contributions[f]  =  raw margin (init + Σ leaves)
    /// ```
    ///
    /// holds exactly (up to float associativity) for *any* consistent
    /// node-value assignment; this table stores no training sample
    /// counts, so split values use the unweighted mean of the two
    /// children. Contributions live in margin space (pre-`finalize`);
    /// every finalizer is monotone, so sign and ranking carry over to
    /// probability space.
    ///
    /// # Panics
    ///
    /// As [`FlatEnsemble::predict_row`], plus if `contributions.len()`
    /// differs from the training feature count.
    pub fn predict_row_attributed(&self, row: &[f64], contributions: &mut [f64]) -> f64 {
        assert!(!self.roots.is_empty(), "flat ensemble has no trees");
        assert!(
            row.len() >= self.n_features,
            "row has {} features, ensemble was trained on {}",
            row.len(),
            self.n_features
        );
        assert_eq!(
            contributions.len(),
            self.n_features,
            "contribution buffer must have one slot per feature"
        );
        contributions.fill(0.0);
        let mut acc = self.init;
        for &root in &self.roots {
            let mut n = root as usize;
            loop {
                let f = self.feature[n];
                if f == LEAF {
                    acc += self.threshold[n];
                    break;
                }
                let next = if row[f as usize] <= self.threshold[n] {
                    self.left[n] as usize
                } else {
                    self.right[n] as usize
                };
                contributions[f as usize] += self.node_value[next] - self.node_value[n];
                n = next;
            }
        }
        obs::counter_add("attribution.rows", 1);
        self.finalize_value(acc)
    }

    /// Mean absolute per-feature contribution over every row of `x` —
    /// a global importance ranking in margin space (used by
    /// `interpret::distill` to cite the metrics that drive the model).
    ///
    /// # Panics
    ///
    /// As [`FlatEnsemble::predict_row_attributed`] per row.
    pub fn mean_abs_attribution(&self, x: &Matrix) -> Vec<f64> {
        let mut mean = vec![0.0; self.n_features];
        if x.rows() == 0 {
            return mean;
        }
        let mut contrib = vec![0.0; self.n_features];
        for r in 0..x.rows() {
            self.predict_row_attributed(x.row(r), &mut contrib);
            for (m, c) in mean.iter_mut().zip(&contrib) {
                *m += c.abs();
            }
        }
        let n = x.rows() as f64;
        for m in &mut mean {
            *m /= n;
        }
        mean
    }

    /// Walks rows `row0 .. row0 + out.len()` of `data` (row-major,
    /// `cols` wide) through every tree in lockstep and writes the
    /// finalized probabilities into `out` (`out.len() <= BLOCK`).
    ///
    /// Each pass advances *every* row of the block one level with no
    /// data-dependent branch: leaves self-loop (`left == right ==
    /// self`), so a row that has arrived spins in place while the
    /// stragglers descend, and the leaf test compiles to a conditional
    /// move instead of an unpredictable branch. That keeps the ~64
    /// independent node fetches of a pass in flight at once — the
    /// whole point of blocking — where an early-exit branch would
    /// flush them on every misprediction.
    fn eval_block(&self, data: &[f64], cols: usize, row0: usize, out: &mut [f64]) {
        let b = out.len();
        debug_assert!(b <= BLOCK);
        out.fill(self.init);
        let feat = self.feature.as_slice();
        let thr = self.threshold.as_slice();
        let left = self.left.as_slice();
        let mut bases = [0usize; BLOCK];
        for (o, base) in bases[..b].iter_mut().enumerate() {
            *base = (row0 + o) * cols;
        }
        let mut idx = [0u32; BLOCK];
        for &root in &self.roots {
            let r = root as usize;
            if feat[r] == LEAF {
                // Single-leaf tree (depth-0 stump): no walk needed.
                let v = thr[r];
                for a in out.iter_mut() {
                    *a += v;
                }
                continue;
            }
            idx[..b].fill(root);
            loop {
                let mut moved = 0u32;
                for (slot, &base) in idx[..b].iter_mut().zip(&bases[..b]) {
                    let n = *slot as usize;
                    let f = feat[n];
                    // At a leaf, load any in-range column: the select
                    // below pins the row in place regardless.
                    let fi = if f == LEAF { 0 } else { f as usize };
                    let v = data[base + fi];
                    // Siblings are adjacent (`right == left + 1`, the
                    // builder's BFS layout), so the left index plus
                    // the comparison bit picks the child. `v <= thr`
                    // must stay the split test (NaN fails it → right),
                    // so the right-child bit is its boolean negation.
                    let goes_left = v <= thr[n];
                    let step = left[n] + u32::from(!goes_left);
                    let next = if f == LEAF { *slot } else { step };
                    moved |= next ^ *slot;
                    *slot = next;
                }
                if moved == 0 {
                    break;
                }
            }
            for (o, a) in out.iter_mut().enumerate() {
                *a += thr[idx[o] as usize];
            }
        }
        for a in out.iter_mut() {
            *a = self.finalize_value(*a);
        }
    }

    /// [`FlatEnsemble::eval_block`] on the compressed node table, with a
    /// fixed [`BLOCK`]-width inner loop: a tail block (fewer than
    /// [`BLOCK`] rows) pads its lane state by repeating the last row, so
    /// every lockstep pass runs the same constant trip count and the
    /// per-lane body carries no length-dependent control flow. Padded
    /// lanes descend a real row's path and their results are simply not
    /// copied out. Value loads go through the deduplicated pool, which
    /// holds the identical f64 bit patterns as the wide arrays —
    /// bit-identical outputs (the unit suite and every bench run assert
    /// this against [`FlatEnsemble::predict_row`]).
    fn eval_block_packed(
        &self,
        t: &PackedTable,
        data: &[f64],
        cols: usize,
        row0: usize,
        out: &mut [f64],
    ) {
        let b = out.len();
        debug_assert!(0 < b && b <= BLOCK);
        let node = t.node.as_slice();
        let value_idx = t.value_idx.as_slice();
        let values = t.values.as_slice();
        let mut bases = [0usize; BLOCK];
        for (o, base) in bases.iter_mut().enumerate() {
            *base = (row0 + o.min(b - 1)) * cols;
        }
        let mut acc = [self.init; BLOCK];
        let mut idx = [0u32; BLOCK];
        for &root in &self.roots {
            let r = root as usize;
            if node[r] >> PACKED_LEFT_BITS == PACKED_LEAF {
                // Single-leaf tree (depth-0 stump): no walk needed.
                let v = values[value_idx[r] as usize];
                for a in &mut acc {
                    *a += v;
                }
                continue;
            }
            idx.fill(root);
            loop {
                let mut moved = 0u32;
                for (slot, &base) in idx.iter_mut().zip(&bases) {
                    let n = *slot as usize;
                    let word = node[n];
                    let f = word >> PACKED_LEFT_BITS;
                    let leaf = f == PACKED_LEAF;
                    // At a leaf, load any in-range column: the select
                    // below pins the lane in place regardless.
                    let fi = if leaf { 0 } else { f as usize };
                    let v = data[base + fi];
                    let thr = values[value_idx[n] as usize];
                    // Same split test and sibling-adjacency step as the
                    // wide pass (`v <= thr`; NaN fails it → right).
                    let goes_left = v <= thr;
                    let step = (word & PACKED_LEFT_MASK) + u32::from(!goes_left);
                    let next = if leaf { *slot } else { step };
                    moved |= next ^ *slot;
                    *slot = next;
                }
                if moved == 0 {
                    break;
                }
            }
            for (a, &slot) in acc.iter_mut().zip(&idx) {
                *a += values[value_idx[slot as usize] as usize];
            }
        }
        for (o, dst) in out.iter_mut().enumerate() {
            *dst = self.finalize_value(acc[o]);
        }
    }

    /// Walks one ≤[`BLOCK`]-row block on the packed table when the
    /// ensemble compressed, the wide arrays otherwise.
    #[inline]
    fn eval_block_at(&self, data: &[f64], cols: usize, row0: usize, out: &mut [f64]) {
        match &self.packed {
            Some(t) => self.eval_block_packed(t, data, cols, row0, out),
            None => self.eval_block(data, cols, row0, out),
        }
    }

    /// Batched probability of the positive class for each row of `x`.
    ///
    /// Row-blocks are sharded over `n_jobs` pool workers; rows are
    /// independent, so the result is bit-identical for every `n_jobs`
    /// (and to [`FlatEnsemble::predict_row`] per row).
    ///
    /// # Panics
    ///
    /// Panics if the ensemble is empty or `x` has a different column
    /// count than the training matrix.
    pub fn predict_proba(&self, x: &Matrix, n_jobs: usize) -> Vec<f64> {
        let mut out = vec![0.0; x.rows()];
        self.predict_into(x, &mut out, n_jobs);
        out
    }

    /// [`FlatEnsemble::predict_proba`] into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// As [`FlatEnsemble::predict_proba`], plus if `out.len()` differs
    /// from `x.rows()`.
    pub fn predict_into(&self, x: &Matrix, out: &mut [f64], n_jobs: usize) {
        assert_eq!(out.len(), x.rows(), "output length must match row count");
        self.predict_rows_into(x.as_slice(), x.cols(), out, n_jobs);
    }

    /// [`FlatEnsemble::predict_into`] over a raw row-major slice.
    ///
    /// The fleet serving tick gathers all instances' feature rows into
    /// one reused flat buffer; this entry point scores it without
    /// requiring a [`Matrix`] wrapper (which would copy or re-own the
    /// data). One probability per row is written to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the ensemble is empty, `cols` differs from the
    /// training feature count, or `data.len() != out.len() * cols`.
    pub fn predict_rows_into(&self, data: &[f64], cols: usize, out: &mut [f64], n_jobs: usize) {
        assert!(!self.roots.is_empty(), "flat ensemble has no trees");
        assert_eq!(cols, self.n_features, "feature count must match training data");
        let rows = out.len();
        assert_eq!(data.len(), rows * cols, "data length must be rows * cols");
        if rows == 0 {
            return;
        }
        let n_blocks = rows.div_ceil(BLOCK);
        let n_jobs = n_jobs.max(1).min(n_blocks);
        let span = obs::Span::enter("predict.batch");
        if n_jobs == 1 {
            let mut start = 0;
            while start < rows {
                let end = (start + BLOCK).min(rows);
                self.eval_block_at(data, cols, start, &mut out[start..end]);
                start = end;
            }
        } else {
            // Static row chunks; each worker walks its own blocks.
            // Chunk `i` starts at row `i * chunk_size` (the pool's
            // documented partitioning).
            let chunk_size = rows.div_ceil(n_jobs);
            let busy_us = std::sync::atomic::AtomicU64::new(0);
            let busy = &busy_us;
            monitorless_std::pool::for_each_chunk_mut(out, n_jobs, |chunk_id, chunk| {
                let started = obs::enabled().then(std::time::Instant::now);
                let row0 = chunk_id * chunk_size;
                let mut start = 0;
                while start < chunk.len() {
                    let end = (start + BLOCK).min(chunk.len());
                    self.eval_block_at(data, cols, row0 + start, &mut chunk[start..end]);
                    start = end;
                }
                if let Some(started) = started {
                    let us = started.elapsed().as_micros() as u64;
                    obs::observe("predict.worker_busy_us", us as f64);
                    busy.fetch_add(us, std::sync::atomic::Ordering::Relaxed);
                }
            });
            if let Some(wall_us) = span.elapsed_us() {
                if wall_us > 0.0 {
                    let total_busy = busy_us.load(std::sync::atomic::Ordering::Relaxed) as f64;
                    obs::gauge_set(
                        "predict.worker_utilization",
                        total_busy / (n_jobs as f64 * wall_us),
                    );
                }
            }
        }
        drop(span);
        obs::counter_add("predict.rows", rows as u64);
        obs::counter_add("predict.blocks", n_blocks as u64);
    }
}

/// Incremental builder for [`FlatEnsemble`], appending one tree at a
/// time in accumulation order.
///
/// The ensemble `to_flat` implementations drive this; leaf values must
/// arrive already transformed (vote weight, log-odds term, shrinkage
/// applied) so the evaluator can treat every ensemble identically.
#[derive(Debug)]
pub struct FlatBuilder {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    roots: Vec<u32>,
    n_features: usize,
    init: f64,
    finalize: Finalize,
    /// Nodes of the tree currently being appended, in push order with
    /// tree-local child indices; renumbered on flush.
    pending_feature: Vec<u32>,
    pending_threshold: Vec<f64>,
    pending_left: Vec<u32>,
    pending_right: Vec<u32>,
    in_tree: bool,
}

impl FlatBuilder {
    /// Creates a builder for an ensemble over `n_features` inputs whose
    /// per-row accumulator starts at `init` and is post-processed by
    /// `finalize`.
    pub fn new(n_features: usize, init: f64, finalize: Finalize) -> Self {
        FlatBuilder {
            feature: Vec::new(),
            threshold: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            roots: Vec::new(),
            n_features,
            init,
            finalize,
            pending_feature: Vec::new(),
            pending_threshold: Vec::new(),
            pending_left: Vec::new(),
            pending_right: Vec::new(),
            in_tree: false,
        }
    }

    /// Starts the next tree. Its first pushed node is the root; child
    /// indices passed to [`FlatBuilder::push_split`] are local to this
    /// tree.
    pub fn begin_tree(&mut self) {
        self.flush_tree();
        self.in_tree = true;
    }

    /// Appends a leaf holding the pre-transformed `value`.
    ///
    /// # Panics
    ///
    /// Panics if no tree has been begun.
    pub fn push_leaf(&mut self, value: f64) {
        assert!(self.in_tree, "push_leaf before begin_tree");
        self.pending_feature.push(LEAF);
        self.pending_threshold.push(value);
        self.pending_left.push(0);
        self.pending_right.push(0);
    }

    /// Appends a split on `feature <= threshold` with tree-local child
    /// indices `left` / `right` (rebased internally).
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of range for the ensemble or no tree
    /// has been begun.
    pub fn push_split(&mut self, feature: u32, threshold: f64, left: u32, right: u32) {
        assert!(self.in_tree, "push_split before begin_tree");
        assert!(
            (feature as usize) < self.n_features,
            "split feature {feature} out of range for {} features",
            self.n_features
        );
        self.pending_feature.push(feature);
        self.pending_threshold.push(threshold);
        self.pending_left.push(left);
        self.pending_right.push(right);
    }

    /// Renumbers the pending tree breadth-first and appends it to the
    /// global table. BFS order puts siblings in adjacent slots
    /// (`right == left + 1` for every split, the evaluator's layout
    /// contract) and levels in contiguous runs, so a descending block
    /// of rows touches monotonically increasing node indices.
    ///
    /// # Panics
    ///
    /// Panics on a malformed tree: a child index outside the tree, a
    /// node with two parents, or unreachable nodes. The evaluator
    /// relies on every walk terminating at a leaf of the same tree.
    fn flush_tree(&mut self) {
        if !self.in_tree {
            return;
        }
        self.in_tree = false;
        let n = self.pending_feature.len();
        assert!(n > 0, "begin_tree was not followed by any nodes");
        let base = self.feature.len() as u32;
        self.roots.push(base);
        // `map[old] = new` tree-local index; `order[new] = old`.
        let mut map = vec![u32::MAX; n];
        let mut order = Vec::with_capacity(n);
        map[0] = 0;
        order.push(0u32);
        let mut head = 0;
        while head < order.len() {
            let old = order[head] as usize;
            head += 1;
            if self.pending_feature[old] == LEAF {
                continue;
            }
            let (l, r) = (self.pending_left[old] as usize, self.pending_right[old] as usize);
            assert!(
                l < n && r < n && map[l] == u32::MAX && map[r] == u32::MAX,
                "split node {old} links outside its tree (0..{n})"
            );
            map[l] = order.len() as u32;
            map[r] = order.len() as u32 + 1;
            order.push(l as u32);
            order.push(r as u32);
        }
        assert_eq!(order.len(), n, "tree has {} unreachable nodes", n - order.len());
        for &old in &order {
            let old = old as usize;
            let f = self.pending_feature[old];
            self.feature.push(f);
            self.threshold.push(self.pending_threshold[old]);
            if f == LEAF {
                let here = self.feature.len() as u32 - 1;
                self.left.push(here);
                self.right.push(here);
            } else {
                self.left.push(base + map[self.pending_left[old] as usize]);
                self.right
                    .push(base + map[self.pending_right[old] as usize]);
            }
        }
        self.pending_feature.clear();
        self.pending_threshold.clear();
        self.pending_left.clear();
        self.pending_right.clear();
    }

    /// Finishes the table.
    ///
    /// # Panics
    ///
    /// Panics if the last tree is malformed (see
    /// [`FlatBuilder::begin_tree`] / the flush contract): a child index
    /// outside its own tree, shared children, or unreachable nodes.
    pub fn build(mut self) -> FlatEnsemble {
        self.flush_tree();
        // Expected margin per node, bottom-up. The BFS layout guarantees
        // children sit at strictly higher indices than their parent, so
        // one reverse pass over the global table resolves every tree.
        let mut node_value = vec![0.0; self.feature.len()];
        for i in (0..self.feature.len()).rev() {
            node_value[i] = if self.feature[i] == LEAF {
                self.threshold[i]
            } else {
                0.5 * (node_value[self.left[i] as usize] + node_value[self.right[i] as usize])
            };
        }
        let packed =
            PackedTable::compress(&self.feature, &self.threshold, &self.left, self.n_features);
        FlatEnsemble {
            feature: self.feature,
            threshold: self.threshold,
            left: self.left,
            right: self.right,
            roots: self.roots,
            node_value,
            n_features: self.n_features,
            init: self.init,
            finalize: self.finalize,
            packed,
        }
    }
}

/// Indices and values of the `k` largest-magnitude contributions,
/// sorted by descending `|contribution|` (ties broken by feature
/// index). Zero contributions are skipped, so fewer than `k` entries
/// may return.
pub fn top_k_contributions(contributions: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut ranked: Vec<(usize, f64)> = contributions
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, c)| *c != 0.0)
        .collect();
    ranked.sort_by(|a, b| {
        b.1.abs()
            .partial_cmp(&a.1.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x[0] <= 1.0 ? 0.2 : 0.8, built by hand.
    fn stump() -> FlatEnsemble {
        let mut b = FlatBuilder::new(2, 0.0, Finalize::Sum);
        b.begin_tree();
        b.push_split(0, 1.0, 1, 2);
        b.push_leaf(0.2);
        b.push_leaf(0.8);
        b.build()
    }

    #[test]
    fn stump_routes_rows() {
        let f = stump();
        assert_eq!(f.predict_row(&[0.5, 9.0]), 0.2);
        assert_eq!(f.predict_row(&[1.0, 9.0]), 0.2); // boundary goes left
        assert_eq!(f.predict_row(&[1.5, 9.0]), 0.8);
    }

    #[test]
    fn nan_goes_right() {
        let f = stump();
        assert_eq!(f.predict_row(&[f64::NAN, 0.0]), 0.8);
    }

    #[test]
    fn single_leaf_tree() {
        let mut b = FlatBuilder::new(1, 0.0, Finalize::Sum);
        b.begin_tree();
        b.push_leaf(0.7);
        let f = b.build();
        assert_eq!(f.predict_row(&[123.0]), 0.7);
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        assert_eq!(f.predict_proba(&x, 1), vec![0.7; 3]);
    }

    #[test]
    fn mean_finalize_averages_trees() {
        let mut b = FlatBuilder::new(1, 0.0, Finalize::Mean(2.0));
        b.begin_tree();
        b.push_leaf(0.4);
        b.begin_tree();
        b.push_leaf(0.8);
        let f = b.build();
        assert_eq!(f.n_trees(), 2);
        assert_eq!(f.predict_row(&[0.0]), (0.4 + 0.8) / 2.0);
    }

    #[test]
    fn batch_matches_single_row_across_blocks() {
        let f = stump();
        // More rows than one block to cover the block loop.
        let rows: Vec<Vec<f64>> = (0..BLOCK * 2 + 7)
            .map(|i| vec![(i % 5) as f64, 0.0])
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let batch = f.predict_proba(&x, 1);
        for (row, &got) in rows.iter().zip(&batch) {
            assert_eq!(got, f.predict_row(row));
        }
    }

    #[test]
    fn n_jobs_does_not_change_bits() {
        let f = stump();
        let rows: Vec<Vec<f64>> = (0..500).map(|i| vec![(i % 7) as f64 * 0.3, 0.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let one = f.predict_proba(&x, 1);
        for jobs in [2, 3, 8] {
            assert_eq!(f.predict_proba(&x, jobs), one, "n_jobs = {jobs}");
        }
    }

    #[test]
    #[should_panic(expected = "links outside its tree")]
    fn cross_tree_link_rejected() {
        let mut b = FlatBuilder::new(1, 0.0, Finalize::Sum);
        b.begin_tree();
        b.push_leaf(0.1);
        b.begin_tree();
        b.push_split(0, 0.5, 1, 2); // children past this tree's end
        b.build();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_feature_rejected() {
        let mut b = FlatBuilder::new(1, 0.0, Finalize::Sum);
        b.begin_tree();
        b.push_split(3, 0.5, 1, 2);
    }

    #[test]
    fn empty_matrix_is_a_no_op() {
        let f = stump();
        let x = Matrix::zeros(0, 2);
        assert!(f.predict_proba(&x, 4).is_empty());
    }

    #[test]
    fn attribution_probability_is_bit_identical() {
        let f = stump();
        let mut contrib = vec![0.0; 2];
        for row in [[0.5, 9.0], [1.0, 9.0], [1.5, 9.0], [f64::NAN, 0.0]] {
            let plain = f.predict_row(&row);
            let attributed = f.predict_row_attributed(&row, &mut contrib);
            assert_eq!(plain.to_bits(), attributed.to_bits());
        }
    }

    #[test]
    fn stump_attribution_charges_split_feature() {
        let f = stump();
        // node_value at the root = mean(0.2, 0.8) = 0.5, so going left
        // charges x0 with 0.2 - 0.5 and going right with 0.8 - 0.5.
        assert_eq!(f.baseline(), 0.5);
        let mut contrib = vec![0.0; 2];
        f.predict_row_attributed(&[0.0, 3.0], &mut contrib);
        assert_eq!(contrib, vec![0.2 - 0.5, 0.0]);
        f.predict_row_attributed(&[2.0, 3.0], &mut contrib);
        assert_eq!(contrib, vec![0.8 - 0.5, 0.0]);
    }

    use monitorless_std::rng::{Rng as _, StdRng};

    /// Appends one random perfect binary tree of the given depth over 3
    /// features; values and splits are derived from the RNG.
    fn push_random_tree(b: &mut FlatBuilder, rng: &mut StdRng, depth: u32) {
        b.begin_tree();
        // Pre-order; tree-local indices are assigned in push order, so a
        // split's left child is the next pushed node and its right child
        // sits one full left subtree (2^depth − 1 nodes) later.
        fn push(b: &mut FlatBuilder, rng: &mut StdRng, depth: u32, next: &mut u32) {
            *next += 1;
            if depth == 0 {
                b.push_leaf(rng.gen_f64() * 2.0 - 1.0);
                return;
            }
            let feature = (rng.next_u64() % 3) as u32;
            let threshold = rng.gen_f64();
            let left = *next;
            let right = left + (1 << depth) - 1;
            b.push_split(feature, threshold, left, right);
            push(b, rng, depth - 1, next);
            push(b, rng, depth - 1, next);
        }
        let mut next = 0;
        push(b, rng, depth, &mut next);
    }

    #[test]
    fn attribution_sums_to_margin_on_random_forests() {
        let mut rng = StdRng::seed_from_u64(0x05ee_da77);
        for trial in 0..50u32 {
            let n_trees = 1 + (trial % 7);
            let mut b = FlatBuilder::new(3, 0.1, Finalize::Sum);
            for _ in 0..n_trees {
                push_random_tree(&mut b, &mut rng, 1 + (trial % 4));
            }
            let f = b.build();
            let mut contrib = vec![0.0; 3];
            for _ in 0..20 {
                let row = [rng.gen_f64(), rng.gen_f64(), rng.gen_f64()];
                let margin = f.predict_row(&row); // Finalize::Sum → raw margin
                f.predict_row_attributed(&row, &mut contrib);
                let reconstructed = f.baseline() + contrib.iter().sum::<f64>();
                assert!(
                    (margin - reconstructed).abs() < 1e-9,
                    "trial {trial}: margin {margin} != baseline+Σcontrib {reconstructed}"
                );
            }
        }
    }

    #[test]
    fn top_k_ranks_by_magnitude() {
        let contrib = [0.1, -0.6, 0.0, 0.3];
        assert_eq!(top_k_contributions(&contrib, 2), vec![(1, -0.6), (3, 0.3)]);
        assert_eq!(top_k_contributions(&contrib, 10), vec![(1, -0.6), (3, 0.3), (0, 0.1)]);
        assert!(top_k_contributions(&[0.0, 0.0], 3).is_empty());
    }

    #[test]
    fn mean_abs_attribution_ranks_the_split_feature_first() {
        let f = stump();
        let x = Matrix::from_rows(&[&[0.0, 5.0], &[2.0, 5.0], &[3.0, 5.0]]);
        let mean = f.mean_abs_attribution(&x);
        assert!(mean[0] > 0.0, "split feature must carry weight");
        assert_eq!(mean[1], 0.0, "unused feature must carry none");
    }

    #[test]
    fn packed_table_matches_wide_bits_on_random_forests() {
        let mut rng = StdRng::seed_from_u64(0x9acc_ed01);
        for trial in 0..20u32 {
            let mut b = FlatBuilder::new(3, 0.25, Finalize::Mean(1.0 + (trial % 5) as f64));
            for _ in 0..1 + (trial % 5) {
                push_random_tree(&mut b, &mut rng, 1 + (trial % 4));
            }
            let f = b.build();
            assert!(f.is_packed(), "trial {trial}: small forest must compress");
            // Null out the side table to force the wide walker.
            let mut wide = f.clone();
            wide.packed = None;
            let rows: Vec<Vec<f64>> = (0..BLOCK + 17)
                .map(|i| {
                    if i % 13 == 0 {
                        vec![f64::NAN, rng.gen_f64(), rng.gen_f64()]
                    } else {
                        vec![rng.gen_f64(), rng.gen_f64(), rng.gen_f64()]
                    }
                })
                .collect();
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let x = Matrix::from_rows(&refs);
            for jobs in [1, 4] {
                let packed = f.predict_proba(&x, jobs);
                let reference = wide.predict_proba(&x, jobs);
                for (i, (p, w)) in packed.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        p.to_bits(),
                        w.to_bits(),
                        "trial {trial} row {i} n_jobs {jobs}: packed != wide"
                    );
                }
                for (i, (row, p)) in rows.iter().zip(&packed).enumerate() {
                    assert_eq!(
                        p.to_bits(),
                        f.predict_row(row).to_bits(),
                        "trial {trial} row {i}: packed != predict_row"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_table_shrinks_walk_state() {
        let mut rng = StdRng::seed_from_u64(0x5123);
        let mut b = FlatBuilder::new(3, 0.0, Finalize::Sum);
        for _ in 0..8 {
            push_random_tree(&mut b, &mut rng, 4);
        }
        let f = b.build();
        assert!(f.is_packed());
        let wide_bytes =
            f.n_nodes() * (2 * std::mem::size_of::<u32>() + std::mem::size_of::<f64>());
        assert!(
            f.walk_bytes() * 2 < wide_bytes,
            "packed walk state {} should be well under wide {}",
            f.walk_bytes(),
            wide_bytes
        );
    }

    #[test]
    fn wide_feature_space_falls_back_losslessly() {
        // 2000 features exceeds the 10-bit packed feature field, so the
        // side table must be skipped — and predictions must not change.
        let n = 2000;
        let mut b = FlatBuilder::new(n, 0.0, Finalize::Sum);
        b.begin_tree();
        b.push_split(1500, 0.5, 1, 2);
        b.push_leaf(0.2);
        b.push_leaf(0.8);
        let f = b.build();
        assert!(!f.is_packed(), "feature index 1500 cannot pack into 10 bits");
        let mut row = vec![0.0; n];
        assert_eq!(f.predict_row(&row), 0.2);
        row[1500] = 1.0;
        assert_eq!(f.predict_row(&row), 0.8);
        let x = Matrix::from_rows(&[row.as_slice()]);
        assert_eq!(f.predict_proba(&x, 1), vec![0.8]);
    }

    #[test]
    fn predict_rows_into_matches_matrix_entry() {
        let f = stump();
        let rows: Vec<Vec<f64>> = (0..150).map(|i| vec![(i % 9) as f64 * 0.4, 1.0]).collect();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let via_matrix = f.predict_proba(&x, 1);
        for jobs in [1, 4] {
            let mut out = vec![0.0; rows.len()];
            f.predict_rows_into(&flat, 2, &mut out, jobs);
            assert_eq!(out, via_matrix, "n_jobs = {jobs}");
        }
    }
}
