//! A minimal dense row-major `f64` matrix.
//!
//! The crate intentionally avoids external linear-algebra dependencies; the
//! handful of operations the learners need (row/column access, transpose,
//! matrix multiplication, column statistics) live here.

/// Dense row-major matrix of `f64` values.
///
/// ```
/// use monitorless_learn::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.row(0), &[1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the value at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    ///
    /// For repeated column access, build a [`ColumnsView`] once with
    /// [`Matrix::columns`] and borrow slices from it instead of paying
    /// one strided gather and `Vec` allocation per call.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Builds a column-major snapshot for borrowed column access.
    pub fn columns(&self) -> ColumnsView {
        ColumnsView::from_matrix(self)
    }

    /// Flat row-major view of the underlying data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree for matmul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(r);
                for (c, &b) in orow.iter().enumerate() {
                    out_row[c] += a * b;
                }
            }
        }
        out
    }

    /// Builds a new matrix keeping only the given column indices, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (j, &c) in indices.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// Builds a new matrix keeping only the given row indices, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Horizontally concatenates `self` with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts must match for hstack");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Vertically concatenates `self` with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "column counts must match for vstack");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Per-column means. Returns an empty vector for an empty matrix.
    pub fn column_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Per-column population standard deviations.
    pub fn column_stds(&self) -> Vec<f64> {
        let means = self.column_means();
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut vars = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for ((v, x), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *v += d * d;
            }
        }
        let n = self.rows as f64;
        vars.into_iter().map(|v| (v / n).sqrt()).collect()
    }

    /// Per-column minimum and maximum as `(mins, maxs)`.
    pub fn column_min_max(&self) -> (Vec<f64>, Vec<f64>) {
        let mut mins = vec![f64::INFINITY; self.cols];
        let mut maxs = vec![f64::NEG_INFINITY; self.cols];
        for row in self.iter_rows() {
            for ((mn, mx), &v) in mins.iter_mut().zip(maxs.iter_mut()).zip(row) {
                if v < *mn {
                    *mn = v;
                }
                if v > *mx {
                    *mx = v;
                }
            }
        }
        (mins, maxs)
    }
}

monitorless_std::json_struct!(Matrix { rows, cols, data });

/// Builds a row-major [`Matrix`] by handing out disjoint fixed-capacity
/// row regions of one up-front buffer for callers to fill in place.
///
/// This is the zero-copy assembly path for producers that know an upper
/// bound on their row counts before producing a single value (training
/// episodes: at most `run_seconds` rows each). Each producer writes
/// rows directly into its region — no per-row `Vec`, no
/// [`Matrix::from_rows`] re-copy — and [`MatrixBuilder::finish`]
/// compacts partially filled regions in place (a no-op when every
/// region is full).
///
/// ```
/// use monitorless_learn::MatrixBuilder;
///
/// let mut b = MatrixBuilder::with_regions(2, 2, 3);
/// let mut regions = b.regions_mut();
/// regions.next().unwrap()[..3].copy_from_slice(&[1.0, 2.0, 3.0]);
/// regions.next().unwrap()[..6].copy_from_slice(&[4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
/// drop(regions);
/// let m = b.finish(&[1, 2]); // region 0 produced 1 row, region 1 both
/// assert_eq!((m.rows(), m.cols()), (3, 3));
/// assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixBuilder {
    regions: usize,
    region_rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl MatrixBuilder {
    /// Allocates one zeroed row-major buffer of `regions` regions with
    /// capacity for `region_rows` rows of `cols` columns each.
    pub fn with_regions(regions: usize, region_rows: usize, cols: usize) -> Self {
        MatrixBuilder {
            regions,
            region_rows,
            cols,
            data: vec![0.0; regions * region_rows * cols],
        }
    }

    /// Number of regions.
    #[inline]
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Row capacity of each region.
    #[inline]
    pub fn region_rows(&self) -> usize {
        self.region_rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The disjoint mutable regions, in order — one `region_rows *
    /// cols` row-major slice each. Hand one to each producer; the
    /// borrows are independent, so producers may fill them from
    /// different threads.
    pub fn regions_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        self.data
            .chunks_mut((self.region_rows * self.cols).max(1))
            .take(self.regions)
    }

    /// Compacts the regions in place — keeping the first `used_rows[i]`
    /// rows of region `i` — and returns the finished matrix without
    /// copying into a new buffer. Fully used regions (the common case)
    /// make every `copy_within` a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `used_rows.len() != self.regions()` or any count
    /// exceeds the region capacity.
    pub fn finish(mut self, used_rows: &[usize]) -> Matrix {
        assert_eq!(used_rows.len(), self.regions, "one row count per region");
        let stride = self.region_rows * self.cols;
        let mut write = 0usize;
        for (i, &used) in used_rows.iter().enumerate() {
            assert!(used <= self.region_rows, "region {i} overflows its capacity");
            let start = i * stride;
            let len = used * self.cols;
            if start != write {
                self.data.copy_within(start..start + len, write);
            }
            write += len;
        }
        self.data.truncate(write);
        Matrix::from_vec(used_rows.iter().sum(), self.cols, self.data)
    }
}

/// A column-major snapshot of a [`Matrix`].
///
/// Column access on the row-major [`Matrix`] is a strided gather plus a
/// fresh `Vec` per call; a `ColumnsView` pays one cache-blocked
/// transpose up front and then hands out contiguous borrowed slices.
/// It backs the presorted training cache
/// ([`crate::presort::PresortedDataset`]) and any statistics path that
/// walks whole columns repeatedly.
#[derive(Debug, Clone)]
pub struct ColumnsView {
    rows: usize,
    cols: usize,
    /// Per-column stride: column `c` owns `data[c*cap .. c*cap + rows]`.
    /// The `cap - rows` tail cells of each column are append slack, so
    /// [`ColumnsView::append_rows`] can land new rows without moving a
    /// byte of existing data.
    cap: usize,
    data: Vec<f64>,
}

/// Logical equality: shape and per-column contents. Capacity slack is
/// scratch space and never participates, so a freshly gathered view and
/// an appended-into one with headroom still compare equal.
impl PartialEq for ColumnsView {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && (0..self.cols).all(|c| self.column_slice(c) == other.column_slice(c))
    }
}

impl ColumnsView {
    /// Gathers the matrix into column-major order (tiled transpose).
    pub fn from_matrix(m: &Matrix) -> Self {
        const TILE: usize = 32;
        let (rows, cols) = (m.rows, m.cols);
        let mut data = vec![0.0; rows * cols];
        for r0 in (0..rows).step_by(TILE) {
            let r1 = (r0 + TILE).min(rows);
            for c0 in (0..cols).step_by(TILE) {
                let c1 = (c0 + TILE).min(cols);
                for r in r0..r1 {
                    let row = &m.data[r * cols..(r + 1) * cols];
                    for c in c0..c1 {
                        data[c * rows + r] = row[c];
                    }
                }
            }
        }
        ColumnsView {
            rows,
            cols,
            cap: rows,
            data,
        }
    }

    /// Number of rows per column.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row capacity: how tall every column may grow before the next
    /// append has to move data.
    #[inline]
    pub fn capacity_rows(&self) -> usize {
        self.cap
    }

    /// Borrowed contiguous values of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[inline]
    pub fn column_slice(&self, c: usize) -> &[f64] {
        assert!(c < self.cols, "column index out of bounds");
        &self.data[c * self.cap..c * self.cap + self.rows]
    }

    /// Re-strides every column so up to `cap` total rows fit without
    /// another buffer move. No-op when the current capacity already
    /// suffices. Columns move right-to-left, so each `copy_within`
    /// reads a region not yet overwritten (column `c`'s destination
    /// `c * cap` is at or past its source `c * self.cap`, and past
    /// every smaller column's source entirely).
    pub fn reserve_total_rows(&mut self, cap: usize) {
        if cap <= self.cap {
            return;
        }
        self.data.resize(cap * self.cols, 0.0);
        for c in (0..self.cols).rev() {
            self.data
                .copy_within(c * self.cap..c * self.cap + self.rows, c * cap);
        }
        self.cap = cap;
    }

    /// Appends `extra`'s rows below the existing ones. Within capacity
    /// this writes only the `add * cols` new cells — a strided gather
    /// into each column's slack tail, no existing byte moves. When the
    /// delta outgrows the slack, the view re-strides once with 50%
    /// headroom over the new height, so repeated appends stay
    /// amortized O(cells appended). This is the column-major half of
    /// [`crate::presort::PresortedDataset::append_rows`].
    ///
    /// # Panics
    ///
    /// Panics if `extra.cols() != self.cols()`.
    pub fn append_rows(&mut self, extra: &Matrix) {
        assert_eq!(extra.cols(), self.cols, "appended rows must match the column count");
        let (old, add) = (self.rows, extra.rows());
        let rows = old + add;
        if rows > self.cap {
            self.reserve_total_rows(rows + rows / 2);
        }
        let flat = extra.as_slice();
        for c in 0..self.cols {
            let base = c * self.cap + old;
            for r in 0..add {
                self.data[base + r] = flat[r * self.cols + c];
            }
        }
        self.rows = rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 1, 7.5);
        assert_eq!(m.get(1, 1), 7.5);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let id = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(m.matmul(&id), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.column(0), vec![17.0, 39.0]);
    }

    #[test]
    fn select_columns_and_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let cols = m.select_columns(&[2, 0]);
        assert_eq!(cols.row(0), &[3.0, 1.0]);
        let rows = m.select_rows(&[1]);
        assert_eq!(rows.row(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn hstack_vstack() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let h = a.hstack(&b);
        assert_eq!(h.row(0), &[1.0, 3.0]);
        let v = a.vstack(&b);
        assert_eq!((v.rows(), v.cols()), (4, 1));
        assert_eq!(v.get(3, 0), 4.0);
    }

    #[test]
    fn column_stats() {
        let m = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0]]);
        assert_eq!(m.column_means(), vec![2.0, 10.0]);
        let stds = m.column_stds();
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert_eq!(stds[1], 0.0);
        let (mins, maxs) = m.column_min_max();
        assert_eq!(mins, vec![1.0, 10.0]);
        assert_eq!(maxs, vec![3.0, 10.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        let s = monitorless_std::json::to_string(&m);
        let back: Matrix = monitorless_std::json::from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn columns_view_matches_column_copies() {
        // Shape larger than one transpose tile in both dimensions.
        let mut m = Matrix::zeros(70, 37);
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                m.set(r, c, (r * 37 + c) as f64);
            }
        }
        let view = m.columns();
        assert_eq!((view.rows(), view.cols()), (70, 37));
        for c in 0..m.cols() {
            assert_eq!(view.column_slice(c), m.column(c).as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "column index out of bounds")]
    fn columns_view_rejects_bad_index() {
        let _ = Matrix::zeros(2, 2).columns().column_slice(2);
    }

    #[test]
    fn builder_full_regions_match_from_rows() {
        let mut b = MatrixBuilder::with_regions(3, 2, 2);
        assert_eq!((b.regions(), b.region_rows(), b.cols()), (3, 2, 2));
        for (i, region) in b.regions_mut().enumerate() {
            for (j, v) in region.iter_mut().enumerate() {
                *v = (i * 10 + j) as f64;
            }
        }
        let m = b.finish(&[2, 2, 2]);
        assert_eq!((m.rows(), m.cols()), (6, 2));
        assert_eq!(m.row(0), &[0.0, 1.0]);
        assert_eq!(m.row(5), &[22.0, 23.0]);
    }

    #[test]
    fn builder_compacts_partial_regions_in_order() {
        let mut b = MatrixBuilder::with_regions(3, 3, 1);
        {
            let mut regions = b.regions_mut();
            regions.next().unwrap()[0] = 1.0;
            let r1 = regions.next().unwrap();
            r1[0] = 2.0;
            r1[1] = 3.0;
            let _ = regions.next().unwrap(); // region 2 produces nothing
        }
        let m = b.finish(&[1, 2, 0]);
        assert_eq!((m.rows(), m.cols()), (3, 1));
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "overflows its capacity")]
    fn builder_rejects_overfull_region() {
        let _ = MatrixBuilder::with_regions(1, 2, 1).finish(&[3]);
    }

    #[test]
    fn columns_view_append_matches_fresh_build() {
        let base = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let extra = Matrix::from_rows(&[&[7.0, 8.0, 9.0]]);
        let mut view = base.columns();
        view.append_rows(&extra);
        assert_eq!(view, base.vstack(&extra).columns());
        // Appending zero rows is a no-op on the contents.
        view.append_rows(&Matrix::zeros(0, 3));
        assert_eq!(view.rows(), 3);
    }
}
