//! CART decision-tree classifier.
//!
//! Supports the hyper-parameters examined by the paper's grid search
//! (Table 2): split criterion (`gini`/`entropy`), splitter
//! (`best`/`random`), `min_samples_split`, `min_samples_leaf`, a depth
//! limit and per-node feature subsampling (used by the random forest).
//! Sample weights are supported so AdaBoost and class weighting can reuse
//! the same builder.

use monitorless_std::rng::{Rng, StdRng};

use crate::{validate_fit_input, Classifier, Error, Matrix};

/// Impurity criterion for choosing splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SplitCriterion {
    /// Gini impurity `2 p (1 - p)`.
    #[default]
    Gini,
    /// Shannon entropy (information gain).
    Entropy,
}

impl SplitCriterion {
    /// Impurity of a node with weighted class masses `w0`, `w1`.
    pub fn impurity(self, w0: f64, w1: f64) -> f64 {
        let total = w0 + w1;
        if total <= 0.0 {
            return 0.0;
        }
        let p = w1 / total;
        match self {
            SplitCriterion::Gini => 2.0 * p * (1.0 - p),
            SplitCriterion::Entropy => {
                let mut h = 0.0;
                for q in [p, 1.0 - p] {
                    if q > 0.0 {
                        h -= q * q.log2();
                    }
                }
                h
            }
        }
    }
}

/// Split-point search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Splitter {
    /// Exhaustive scan over candidate thresholds (CART default).
    #[default]
    Best,
    /// One uniformly random threshold per candidate feature
    /// (extra-trees style; `DT_splitter = random` in Table 2).
    Random,
}

/// How many features to consider at each split.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MaxFeatures {
    /// All features (plain CART).
    #[default]
    All,
    /// `sqrt(n_features)` — the random-forest default.
    Sqrt,
    /// `log2(n_features)`.
    Log2,
    /// A fixed fraction in `(0, 1]` of the features.
    Fraction(f64),
}

impl MaxFeatures {
    /// Resolves to a concrete feature count for `n_features` total.
    pub fn resolve(self, n_features: usize) -> usize {
        let n = n_features.max(1);
        let k = match self {
            MaxFeatures::All => n,
            MaxFeatures::Sqrt => (n as f64).sqrt().round() as usize,
            MaxFeatures::Log2 => (n as f64).log2().floor() as usize,
            MaxFeatures::Fraction(f) => (n as f64 * f).ceil() as usize,
        };
        k.clamp(1, n)
    }
}

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTreeParams {
    /// Impurity criterion.
    pub criterion: SplitCriterion,
    /// Threshold search strategy.
    pub splitter: Splitter,
    /// Maximum tree depth (`None` = unbounded).
    pub max_depth: Option<usize>,
    /// Minimum number of samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum number of samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// RNG seed for feature subsampling / random splits.
    pub seed: u64,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams {
            criterion: SplitCriterion::Gini,
            splitter: Splitter::Best,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        proba: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted (or unfitted) CART binary classifier.
///
/// ```
/// use monitorless_learn::prelude::*;
///
/// # fn main() -> Result<(), monitorless_learn::Error> {
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
/// let y = vec![0, 0, 1, 1];
/// let mut tree = DecisionTree::new(DecisionTreeParams::default());
/// tree.fit(&x, &y, None)?;
/// assert_eq!(tree.predict(&x), y);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    params: DecisionTreeParams,
    nodes: Vec<Node>,
    n_features: usize,
    importances: Vec<f64>,
}

impl DecisionTree {
    /// Creates an unfitted tree with the given hyper-parameters.
    pub fn new(params: DecisionTreeParams) -> Self {
        DecisionTree {
            params,
            nodes: Vec::new(),
            n_features: 0,
            importances: Vec::new(),
        }
    }

    /// The hyper-parameters this tree was configured with.
    pub fn params(&self) -> &DecisionTreeParams {
        &self.params
    }

    /// Whether `fit` has completed successfully.
    pub fn is_fitted(&self) -> bool {
        !self.nodes.is_empty()
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Impurity-decrease feature importances, normalized to sum to 1
    /// (all zeros if the tree is a single leaf).
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Extracts human-readable decision rules for leaves whose positive
    /// probability is at least `min_proba` — the depth-restricted
    /// interpretability path discussed in the paper's Section 5.
    ///
    /// Each rule reads `IF f₁ <= a AND f₂ > b THEN saturated (p=…)`.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted or `feature_names` is shorter than
    /// the training feature count.
    pub fn decision_rules(&self, feature_names: &[String], min_proba: f64) -> Vec<String> {
        assert!(self.is_fitted(), "tree must be fitted");
        assert!(feature_names.len() >= self.n_features, "feature names must cover all features");
        let mut rules = Vec::new();
        let mut path: Vec<String> = Vec::new();
        self.walk_rules(0, feature_names, min_proba, &mut path, &mut rules);
        rules
    }

    fn walk_rules(
        &self,
        idx: usize,
        names: &[String],
        min_proba: f64,
        path: &mut Vec<String>,
        rules: &mut Vec<String>,
    ) {
        match &self.nodes[idx] {
            Node::Leaf { proba } => {
                if *proba >= min_proba {
                    let condition = if path.is_empty() {
                        "always".to_string()
                    } else {
                        path.join(" AND ")
                    };
                    rules.push(format!("IF {condition} THEN saturated (p={proba:.2})"));
                }
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                path.push(format!("{} <= {threshold:.3}", names[*feature]));
                self.walk_rules(*left, names, min_proba, path, rules);
                path.pop();
                path.push(format!("{} > {threshold:.3}", names[*feature]));
                self.walk_rules(*right, names, min_proba, path, rules);
                path.pop();
            }
        }
    }

    /// Probability of class 1 for a single sample.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted or `row` is shorter than the number
    /// of training features.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(self.is_fitted(), "tree must be fitted before predicting");
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { proba } => return *proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        x: &Matrix,
        y: &[u8],
        w: &[f64],
        indices: &[usize],
        depth: usize,
        total_weight: f64,
        rng: &mut StdRng,
    ) -> usize {
        let (mut w0, mut w1) = (0.0, 0.0);
        for &i in indices.iter() {
            if y[i] == 1 {
                w1 += w[i];
            } else {
                w0 += w[i];
            }
        }
        let node_weight = w0 + w1;
        let proba = if node_weight > 0.0 {
            w1 / node_weight
        } else {
            0.5
        };
        let impurity = self.params.criterion.impurity(w0, w1);

        let stop = indices.len() < self.params.min_samples_split
            || indices.len() < 2 * self.params.min_samples_leaf
            || impurity <= 0.0
            || self.params.max_depth.is_some_and(|d| depth >= d);
        if stop {
            self.nodes.push(Node::Leaf { proba });
            return self.nodes.len() - 1;
        }

        let best = self.find_split(x, y, w, indices, impurity, node_weight, rng);
        let Some(split) = best else {
            self.nodes.push(Node::Leaf { proba });
            return self.nodes.len() - 1;
        };

        // Record importance as the weighted impurity decrease at this node.
        self.importances[split.feature] += node_weight / total_weight * split.decrease;

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| x.get(i, split.feature) <= split.threshold);

        let node_pos = self.nodes.len();
        // Placeholder; children indices are patched after recursion.
        self.nodes.push(Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left: 0,
            right: 0,
        });
        let left = self.build(x, y, w, &left_idx, depth + 1, total_weight, rng);
        let right = self.build(x, y, w, &right_idx, depth + 1, total_weight, rng);
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node_pos]
        {
            *l = left;
            *r = right;
        }
        node_pos
    }

    #[allow(clippy::too_many_arguments)]
    fn find_split(
        &self,
        x: &Matrix,
        y: &[u8],
        w: &[f64],
        indices: &[usize],
        parent_impurity: f64,
        node_weight: f64,
        rng: &mut StdRng,
    ) -> Option<SplitCandidate> {
        let k = self.params.max_features.resolve(self.n_features);
        let mut features: Vec<usize> = (0..self.n_features).collect();
        if k < self.n_features {
            rng.shuffle(&mut features);
            features.truncate(k);
        }

        let mut best: Option<SplitCandidate> = None;
        let mut sorted: Vec<(f64, u8, f64)> = Vec::with_capacity(indices.len());
        for &feature in &features {
            sorted.clear();
            sorted.extend(indices.iter().map(|&i| (x.get(i, feature), y[i], w[i])));
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let lo = sorted[0].0;
            let hi = sorted[sorted.len() - 1].0;
            if lo == hi {
                continue;
            }

            match self.params.splitter {
                Splitter::Best => {
                    let candidate = self.scan_best_threshold(&sorted, parent_impurity, node_weight);
                    if let Some(c) = candidate {
                        if best.as_ref().is_none_or(|b| c.decrease > b.decrease) {
                            best = Some(SplitCandidate { feature, ..c });
                        }
                    }
                }
                Splitter::Random => {
                    let threshold = rng.gen_range(lo..hi);
                    if let Some(c) =
                        self.evaluate_threshold(&sorted, threshold, parent_impurity, node_weight)
                    {
                        if best.as_ref().is_none_or(|b| c.decrease > b.decrease) {
                            best = Some(SplitCandidate { feature, ..c });
                        }
                    }
                }
            }
        }
        best
    }

    /// Scans all midpoints between adjacent distinct values.
    fn scan_best_threshold(
        &self,
        sorted: &[(f64, u8, f64)],
        parent_impurity: f64,
        node_weight: f64,
    ) -> Option<SplitCandidate> {
        let n = sorted.len();
        let (mut lw0, mut lw1) = (0.0_f64, 0.0_f64);
        let (mut rw0, mut rw1) = (0.0_f64, 0.0_f64);
        for &(_, label, weight) in sorted {
            if label == 1 {
                rw1 += weight;
            } else {
                rw0 += weight;
            }
        }
        let mut best: Option<SplitCandidate> = None;
        for i in 0..n - 1 {
            let (v, label, weight) = sorted[i];
            if label == 1 {
                lw1 += weight;
                rw1 -= weight;
            } else {
                lw0 += weight;
                rw0 -= weight;
            }
            let next = sorted[i + 1].0;
            if next <= v {
                continue;
            }
            let left_count = i + 1;
            let right_count = n - left_count;
            if left_count < self.params.min_samples_leaf
                || right_count < self.params.min_samples_leaf
            {
                continue;
            }
            let lw = lw0 + lw1;
            let rw = rw0 + rw1;
            if lw <= 0.0 || rw <= 0.0 {
                continue;
            }
            let child = (lw * self.params.criterion.impurity(lw0, lw1)
                + rw * self.params.criterion.impurity(rw0, rw1))
                / node_weight;
            // Ties (zero decrease) are accepted: CART must be able to make
            // progress on symmetric problems like XOR where the first split
            // has no immediate gain.
            let decrease = (parent_impurity - child).max(0.0);
            if best.as_ref().is_none_or(|b| decrease > b.decrease) {
                best = Some(SplitCandidate {
                    feature: 0,
                    threshold: v + (next - v) / 2.0,
                    decrease,
                });
            }
        }
        best
    }

    /// Evaluates one fixed threshold (random splitter).
    fn evaluate_threshold(
        &self,
        sorted: &[(f64, u8, f64)],
        threshold: f64,
        parent_impurity: f64,
        node_weight: f64,
    ) -> Option<SplitCandidate> {
        let (mut lw0, mut lw1, mut rw0, mut rw1) = (0.0, 0.0, 0.0, 0.0);
        let mut left_count = 0usize;
        for &(v, label, weight) in sorted {
            let left = v <= threshold;
            match (left, label) {
                (true, 1) => lw1 += weight,
                (true, _) => lw0 += weight,
                (false, 1) => rw1 += weight,
                (false, _) => rw0 += weight,
            }
            if left {
                left_count += 1;
            }
        }
        let right_count = sorted.len() - left_count;
        if left_count < self.params.min_samples_leaf || right_count < self.params.min_samples_leaf {
            return None;
        }
        let lw = lw0 + lw1;
        let rw = rw0 + rw1;
        if lw <= 0.0 || rw <= 0.0 {
            return None;
        }
        let child = (lw * self.params.criterion.impurity(lw0, lw1)
            + rw * self.params.criterion.impurity(rw0, rw1))
            / node_weight;
        let decrease = (parent_impurity - child).max(0.0);
        Some(SplitCandidate {
            feature: 0,
            threshold,
            decrease,
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct SplitCandidate {
    feature: usize,
    threshold: f64,
    decrease: f64,
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[u8], sample_weight: Option<&[f64]>) -> Result<(), Error> {
        validate_fit_input(x, y, sample_weight)?;
        if self.params.min_samples_split < 2 {
            return Err(Error::InvalidParameter("min_samples_split must be at least 2".into()));
        }
        if self.params.min_samples_leaf < 1 {
            return Err(Error::InvalidParameter("min_samples_leaf must be at least 1".into()));
        }
        self.nodes.clear();
        self.n_features = x.cols();
        self.importances = vec![0.0; x.cols()];

        let weights: Vec<f64> = match sample_weight {
            Some(w) => w.to_vec(),
            None => vec![1.0; x.rows()],
        };
        let total_weight: f64 = weights.iter().sum();
        if total_weight <= 0.0 {
            return Err(Error::InvalidParameter("sample weights must not all be zero".into()));
        }
        let indices: Vec<usize> = (0..x.rows()).collect();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        self.build(x, y, &weights, &indices, 0, total_weight, &mut rng);

        let total: f64 = self.importances.iter().sum();
        if total > 0.0 {
            for imp in &mut self.importances {
                *imp /= total;
            }
        }
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.is_fitted(), "tree must be fitted before predicting");
        assert_eq!(x.cols(), self.n_features, "feature count must match training data");
        x.iter_rows().map(|row| self.predict_row(row)).collect()
    }

    fn name(&self) -> &'static str {
        "DecisionTree"
    }
}

monitorless_std::json_enum!(SplitCriterion { Gini, Entropy });
monitorless_std::json_enum!(Splitter { Best, Random });
monitorless_std::json_struct!(DecisionTreeParams {
    criterion,
    splitter,
    max_depth,
    min_samples_split,
    min_samples_leaf,
    max_features,
    seed,
});
monitorless_std::json_struct!(DecisionTree {
    params,
    nodes,
    n_features,
    importances,
});

// `MaxFeatures::Fraction` and `Node` carry data, so they keep the
// externally tagged encoding by hand.
impl monitorless_std::json::ToJson for MaxFeatures {
    fn to_json(&self) -> monitorless_std::json::Json {
        use monitorless_std::json::Json;
        match self {
            MaxFeatures::All => Json::Str("All".into()),
            MaxFeatures::Sqrt => Json::Str("Sqrt".into()),
            MaxFeatures::Log2 => Json::Str("Log2".into()),
            MaxFeatures::Fraction(f) => Json::Obj(vec![("Fraction".into(), f.to_json())]),
        }
    }
}

impl monitorless_std::json::FromJson for MaxFeatures {
    fn from_json(
        json: &monitorless_std::json::Json,
    ) -> Result<Self, monitorless_std::json::JsonError> {
        use monitorless_std::json::{field, Json, JsonError};
        match json {
            Json::Str(s) => match s.as_str() {
                "All" => Ok(MaxFeatures::All),
                "Sqrt" => Ok(MaxFeatures::Sqrt),
                "Log2" => Ok(MaxFeatures::Log2),
                other => Err(JsonError(format!("unknown MaxFeatures variant {other:?}"))),
            },
            Json::Obj(_) => Ok(MaxFeatures::Fraction(field(json, "Fraction")?)),
            _ => Err(JsonError("expected MaxFeatures".into())),
        }
    }
}

impl monitorless_std::json::ToJson for Node {
    fn to_json(&self) -> monitorless_std::json::Json {
        use monitorless_std::json::Json;
        match self {
            Node::Leaf { proba } => {
                Json::Obj(vec![("Leaf".into(), Json::Obj(vec![("proba".into(), proba.to_json())]))])
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => Json::Obj(vec![(
                "Split".into(),
                Json::Obj(vec![
                    ("feature".into(), feature.to_json()),
                    ("threshold".into(), threshold.to_json()),
                    ("left".into(), left.to_json()),
                    ("right".into(), right.to_json()),
                ]),
            )]),
        }
    }
}

impl monitorless_std::json::FromJson for Node {
    fn from_json(
        json: &monitorless_std::json::Json,
    ) -> Result<Self, monitorless_std::json::JsonError> {
        use monitorless_std::json::{field, Json, JsonError};
        match json {
            Json::Obj(members) => match members.first().map(|(k, v)| (k.as_str(), v)) {
                Some(("Leaf", body)) => Ok(Node::Leaf {
                    proba: field(body, "proba")?,
                }),
                Some(("Split", body)) => Ok(Node::Split {
                    feature: field(body, "feature")?,
                    threshold: field(body, "threshold")?,
                    left: field(body, "left")?,
                    right: field(body, "right")?,
                }),
                _ => Err(JsonError("unknown Node variant".into())),
            },
            _ => Err(JsonError("expected Node object".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<u8>) {
        // XOR needs depth >= 2 — a sanity check that recursion works.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for k in 0..5 {
                rows.push(vec![a + 0.01 * k as f64, b + 0.01 * k as f64]);
                y.push(u8::from((a > 0.5) != (b > 0.5)));
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y)
    }

    #[test]
    fn perfectly_separable_is_learned() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        let y = vec![0, 0, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y, None).unwrap();
        assert_eq!(t.predict(&x), y);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn xor_is_learned() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y, None).unwrap();
        assert_eq!(t.predict(&x), y);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn entropy_criterion_also_learns() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(DecisionTreeParams {
            criterion: SplitCriterion::Entropy,
            ..DecisionTreeParams::default()
        });
        t.fit(&x, &y, None).unwrap();
        assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn random_splitter_learns_separable_data() {
        let x = Matrix::from_rows(&[&[0.0], &[0.1], &[0.9], &[1.0]]);
        let y = vec![0, 0, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeParams {
            splitter: Splitter::Random,
            seed: 42,
            ..DecisionTreeParams::default()
        });
        t.fit(&x, &y, None).unwrap();
        assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn max_depth_zero_yields_single_leaf() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(DecisionTreeParams {
            max_depth: Some(0),
            ..DecisionTreeParams::default()
        });
        t.fit(&x, &y, None).unwrap();
        assert_eq!(t.node_count(), 1);
        let p = t.predict_proba(&x);
        assert!(p.iter().all(|&v| (v - 0.5).abs() < 1e-12));
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0], &[5.0]]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeParams {
            min_samples_leaf: 3,
            ..DecisionTreeParams::default()
        });
        t.fit(&x, &y, None).unwrap();
        // Only the midpoint split keeps 3 samples per leaf.
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn importances_sum_to_one_and_pick_informative_feature() {
        let x = Matrix::from_rows(&[
            &[0.0, 5.0],
            &[0.1, 5.0],
            &[0.2, 5.0],
            &[0.9, 5.0],
            &[1.0, 5.0],
            &[1.1, 5.0],
        ]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y, None).unwrap();
        let imp = t.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(imp[0] > 0.99);
        assert!(imp[1] < 0.01);
    }

    #[test]
    fn sample_weights_shift_the_split() {
        // Upweighting the positive samples pulls the predicted probability.
        let x = Matrix::from_rows(&[&[0.0], &[0.0], &[0.0], &[0.0]]);
        let y = vec![0, 0, 0, 1];
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y, Some(&[1.0, 1.0, 1.0, 9.0])).unwrap();
        let p = t.predict_proba(&x)[0];
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn invalid_params_rejected() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let mut t = DecisionTree::new(DecisionTreeParams {
            min_samples_split: 1,
            ..DecisionTreeParams::default()
        });
        assert!(matches!(t.fit(&x, &[0, 1], None), Err(Error::InvalidParameter(_))));
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y, None).unwrap();
        let json = monitorless_std::json::to_string(&t);
        let back: DecisionTree = monitorless_std::json::from_str(&json).unwrap();
        assert_eq!(back.predict_proba(&x), t.predict_proba(&x));
    }

    #[test]
    fn decision_rules_describe_the_split() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        let y = vec![0, 0, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y, None).unwrap();
        let rules = t.decision_rules(&["cpu.util".to_string()], 0.5);
        assert_eq!(rules.len(), 1);
        assert!(rules[0].contains("cpu.util >"), "{}", rules[0]);
        assert!(rules[0].contains("p=1.00"));
        // No rule qualifies at an impossible probability floor.
        assert!(t.decision_rules(&["cpu.util".to_string()], 1.1).is_empty());
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(100), 10);
        assert_eq!(MaxFeatures::Log2.resolve(64), 6);
        assert_eq!(MaxFeatures::Fraction(0.25).resolve(10), 3);
        assert_eq!(MaxFeatures::Fraction(0.001).resolve(10), 1);
    }
}
