//! CART decision-tree classifier.
//!
//! Supports the hyper-parameters examined by the paper's grid search
//! (Table 2): split criterion (`gini`/`entropy`), splitter
//! (`best`/`random`), `min_samples_split`, `min_samples_leaf`, a depth
//! limit and per-node feature subsampling (used by the random forest).
//! Sample weights are supported so AdaBoost and class weighting can reuse
//! the same builder.

use monitorless_obs as obs;
use monitorless_std::rng::{Rng, StdRng};

use crate::presort::{FitCache, PresortTraversal, PresortedDataset};
use crate::{validate_fit_parts, Classifier, Error, Matrix};

/// Impurity criterion for choosing splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SplitCriterion {
    /// Gini impurity `2 p (1 - p)`.
    #[default]
    Gini,
    /// Shannon entropy (information gain).
    Entropy,
}

impl SplitCriterion {
    /// Impurity of a node with weighted class masses `w0`, `w1`.
    pub fn impurity(self, w0: f64, w1: f64) -> f64 {
        let total = w0 + w1;
        if total <= 0.0 {
            return 0.0;
        }
        let p = w1 / total;
        match self {
            SplitCriterion::Gini => 2.0 * p * (1.0 - p),
            SplitCriterion::Entropy => {
                let mut h = 0.0;
                for q in [p, 1.0 - p] {
                    if q > 0.0 {
                        h -= q * q.log2();
                    }
                }
                h
            }
        }
    }
}

/// Split-point search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Splitter {
    /// Exhaustive scan over candidate thresholds (CART default).
    #[default]
    Best,
    /// One uniformly random threshold per candidate feature
    /// (extra-trees style; `DT_splitter = random` in Table 2).
    Random,
}

/// How many features to consider at each split.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MaxFeatures {
    /// All features (plain CART).
    #[default]
    All,
    /// `sqrt(n_features)` — the random-forest default.
    Sqrt,
    /// `log2(n_features)`.
    Log2,
    /// A fixed fraction in `(0, 1]` of the features.
    Fraction(f64),
}

impl MaxFeatures {
    /// Resolves to a concrete feature count for `n_features` total.
    pub fn resolve(self, n_features: usize) -> usize {
        let n = n_features.max(1);
        let k = match self {
            MaxFeatures::All => n,
            MaxFeatures::Sqrt => (n as f64).sqrt().round() as usize,
            MaxFeatures::Log2 => (n as f64).log2().floor() as usize,
            MaxFeatures::Fraction(f) => (n as f64 * f).ceil() as usize,
        };
        k.clamp(1, n)
    }
}

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTreeParams {
    /// Impurity criterion.
    pub criterion: SplitCriterion,
    /// Threshold search strategy.
    pub splitter: Splitter,
    /// Maximum tree depth (`None` = unbounded).
    pub max_depth: Option<usize>,
    /// Minimum number of samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum number of samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// RNG seed for feature subsampling / random splits.
    pub seed: u64,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams {
            criterion: SplitCriterion::Gini,
            splitter: Splitter::Best,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        proba: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted (or unfitted) CART binary classifier.
///
/// ```
/// use monitorless_learn::prelude::*;
///
/// # fn main() -> Result<(), monitorless_learn::Error> {
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
/// let y = vec![0, 0, 1, 1];
/// let mut tree = DecisionTree::new(DecisionTreeParams::default());
/// tree.fit(&x, &y, None)?;
/// assert_eq!(tree.predict(&x), y);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    params: DecisionTreeParams,
    nodes: Vec<Node>,
    n_features: usize,
    importances: Vec<f64>,
}

impl DecisionTree {
    /// Creates an unfitted tree with the given hyper-parameters.
    pub fn new(params: DecisionTreeParams) -> Self {
        DecisionTree {
            params,
            nodes: Vec::new(),
            n_features: 0,
            importances: Vec::new(),
        }
    }

    /// The hyper-parameters this tree was configured with.
    pub fn params(&self) -> &DecisionTreeParams {
        &self.params
    }

    /// Whether `fit` has completed successfully.
    pub fn is_fitted(&self) -> bool {
        !self.nodes.is_empty()
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Impurity-decrease feature importances, normalized to sum to 1
    /// (all zeros if the tree is a single leaf).
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Extracts human-readable decision rules for leaves whose positive
    /// probability is at least `min_proba` — the depth-restricted
    /// interpretability path discussed in the paper's Section 5.
    ///
    /// Each rule reads `IF f₁ <= a AND f₂ > b THEN saturated (p=…)`.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted or `feature_names` is shorter than
    /// the training feature count.
    pub fn decision_rules(&self, feature_names: &[String], min_proba: f64) -> Vec<String> {
        assert!(self.is_fitted(), "tree must be fitted");
        assert!(feature_names.len() >= self.n_features, "feature names must cover all features");
        let mut rules = Vec::new();
        let mut path: Vec<String> = Vec::new();
        self.walk_rules(0, feature_names, min_proba, &mut path, &mut rules);
        rules
    }

    fn walk_rules(
        &self,
        idx: usize,
        names: &[String],
        min_proba: f64,
        path: &mut Vec<String>,
        rules: &mut Vec<String>,
    ) {
        match &self.nodes[idx] {
            Node::Leaf { proba } => {
                if *proba >= min_proba {
                    let condition = if path.is_empty() {
                        "always".to_string()
                    } else {
                        path.join(" AND ")
                    };
                    rules.push(format!("IF {condition} THEN saturated (p={proba:.2})"));
                }
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                path.push(format!("{} <= {threshold:.3}", names[*feature]));
                self.walk_rules(*left, names, min_proba, path, rules);
                path.pop();
                path.push(format!("{} > {threshold:.3}", names[*feature]));
                self.walk_rules(*right, names, min_proba, path, rules);
                path.pop();
            }
        }
    }

    /// Appends this fitted tree's nodes to a flat builder, mapping each
    /// leaf probability through `leaf`.
    ///
    /// Ensembles pre-apply their per-stage leaf transform here (vote
    /// weight, log-odds term) so the flat walk is load-and-add; plain
    /// probability trees pass the identity.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted.
    pub fn flatten_into<F: Fn(f64) -> f64>(&self, builder: &mut crate::flat::FlatBuilder, leaf: F) {
        assert!(self.is_fitted(), "tree must be fitted before flattening");
        builder.begin_tree();
        for node in &self.nodes {
            match node {
                Node::Leaf { proba } => builder.push_leaf(leaf(*proba)),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => builder.push_split(*feature as u32, *threshold, *left as u32, *right as u32),
            }
        }
    }

    /// Compiles the fitted tree into a single-tree
    /// [`FlatEnsemble`](crate::flat::FlatEnsemble) — the batched
    /// inference fast path. Predictions are bit-identical to
    /// [`DecisionTree::predict_row`].
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted.
    pub fn to_flat(&self) -> crate::flat::FlatEnsemble {
        let mut builder =
            crate::flat::FlatBuilder::new(self.n_features, 0.0, crate::flat::Finalize::Sum);
        self.flatten_into(&mut builder, |p| p);
        builder.build()
    }

    /// Probability of class 1 for a single sample.
    ///
    /// This recursive walk is the *reference implementation* the flat
    /// evaluator (`learn::flat`) is property-tested against
    /// (`tests/flat_equivalence.rs`); batch callers should prefer
    /// [`DecisionTree::to_flat`].
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted or `row` is shorter than the number
    /// of training features.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(self.is_fitted(), "tree must be fitted before predicting");
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { proba } => return *proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        x: &Matrix,
        y: &[u8],
        w: &[f64],
        indices: &[usize],
        depth: usize,
        total_weight: f64,
        rng: &mut StdRng,
    ) -> usize {
        let (mut w0, mut w1) = (0.0, 0.0);
        for &i in indices.iter() {
            if y[i] == 1 {
                w1 += w[i];
            } else {
                w0 += w[i];
            }
        }
        let node_weight = w0 + w1;
        let proba = if node_weight > 0.0 {
            w1 / node_weight
        } else {
            0.5
        };
        let impurity = self.params.criterion.impurity(w0, w1);

        let stop = indices.len() < self.params.min_samples_split
            || indices.len() < 2 * self.params.min_samples_leaf
            || impurity <= 0.0
            || self.params.max_depth.is_some_and(|d| depth >= d);
        if stop {
            self.nodes.push(Node::Leaf { proba });
            return self.nodes.len() - 1;
        }

        let best = self.find_split(x, y, w, indices, impurity, node_weight, rng);
        let Some(split) = best else {
            self.nodes.push(Node::Leaf { proba });
            return self.nodes.len() - 1;
        };

        // Record importance as the weighted impurity decrease at this node.
        self.importances[split.feature] += node_weight / total_weight * split.decrease;

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| x.get(i, split.feature) <= split.threshold);

        let node_pos = self.nodes.len();
        // Placeholder; children indices are patched after recursion.
        self.nodes.push(Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left: 0,
            right: 0,
        });
        let left = self.build(x, y, w, &left_idx, depth + 1, total_weight, rng);
        let right = self.build(x, y, w, &right_idx, depth + 1, total_weight, rng);
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node_pos]
        {
            *l = left;
            *r = right;
        }
        node_pos
    }

    #[allow(clippy::too_many_arguments)]
    fn find_split(
        &self,
        x: &Matrix,
        y: &[u8],
        w: &[f64],
        indices: &[usize],
        parent_impurity: f64,
        node_weight: f64,
        rng: &mut StdRng,
    ) -> Option<SplitCandidate> {
        let k = self.params.max_features.resolve(self.n_features);
        let mut features: Vec<usize> = (0..self.n_features).collect();
        if k < self.n_features {
            rng.shuffle(&mut features);
            features.truncate(k);
        }

        let mut best: Option<SplitCandidate> = None;
        let mut sorted: Vec<(f64, u8, f64)> = Vec::with_capacity(indices.len());
        for &feature in features.iter() {
            sorted.clear();
            sorted.extend(indices.iter().map(|&i| (x.get(i, feature), y[i], w[i])));
            // `total_cmp` keeps the sort independent of NaN position
            // (and matches the presorted builder's base order).
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            let lo = sorted[0].0;
            let hi = sorted[sorted.len() - 1].0;
            if lo == hi {
                continue;
            }

            match self.params.splitter {
                Splitter::Best => {
                    let candidate = self.scan_best_threshold(&sorted, parent_impurity, node_weight);
                    if let Some(c) = candidate {
                        if best.as_ref().is_none_or(|b| c.decrease > b.decrease) {
                            best = Some(SplitCandidate { feature, ..c });
                        }
                    }
                }
                Splitter::Random => {
                    let threshold = rng.gen_range(lo..hi);
                    if let Some(c) =
                        self.evaluate_threshold(&sorted, threshold, parent_impurity, node_weight)
                    {
                        if best.as_ref().is_none_or(|b| c.decrease > b.decrease) {
                            best = Some(SplitCandidate { feature, ..c });
                        }
                    }
                }
            }
        }
        best
    }

    /// Scans all midpoints between adjacent distinct values.
    // `!(next > v)` is deliberate: unlike `next <= v` it also rejects
    // NaN boundaries (see the comment at the comparison site).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn scan_best_threshold(
        &self,
        sorted: &[(f64, u8, f64)],
        parent_impurity: f64,
        node_weight: f64,
    ) -> Option<SplitCandidate> {
        let n = sorted.len();
        let (mut lw0, mut lw1) = (0.0_f64, 0.0_f64);
        let (mut rw0, mut rw1) = (0.0_f64, 0.0_f64);
        for &(_, label, weight) in sorted {
            if label == 1 {
                rw1 += weight;
            } else {
                rw0 += weight;
            }
        }
        let mut best: Option<SplitCandidate> = None;
        for i in 0..n - 1 {
            let (v, label, weight) = sorted[i];
            if label == 1 {
                lw1 += weight;
                rw1 -= weight;
            } else {
                lw0 += weight;
                rw0 -= weight;
            }
            let next = sorted[i + 1].0;
            // Requires a strictly increasing, *finite* boundary: with NaN
            // cells sorted to the end (`total_cmp`), a midpoint against
            // NaN would be NaN, sending every row right and making no
            // progress. Skipping here keeps the sweep's left/right counts
            // consistent with the actual partition (NaN rows go right).
            if !(next > v) {
                continue;
            }
            let left_count = i + 1;
            let right_count = n - left_count;
            if left_count < self.params.min_samples_leaf
                || right_count < self.params.min_samples_leaf
            {
                continue;
            }
            let lw = lw0 + lw1;
            let rw = rw0 + rw1;
            if lw <= 0.0 || rw <= 0.0 {
                continue;
            }
            let child = (lw * self.params.criterion.impurity(lw0, lw1)
                + rw * self.params.criterion.impurity(rw0, rw1))
                / node_weight;
            // Ties (zero decrease) are accepted: CART must be able to make
            // progress on symmetric problems like XOR where the first split
            // has no immediate gain.
            let decrease = (parent_impurity - child).max(0.0);
            if best.as_ref().is_none_or(|b| decrease > b.decrease) {
                best = Some(SplitCandidate {
                    feature: 0,
                    threshold: v + (next - v) / 2.0,
                    decrease,
                });
            }
        }
        best
    }

    /// Evaluates one fixed threshold (random splitter).
    fn evaluate_threshold(
        &self,
        sorted: &[(f64, u8, f64)],
        threshold: f64,
        parent_impurity: f64,
        node_weight: f64,
    ) -> Option<SplitCandidate> {
        let (mut lw0, mut lw1, mut rw0, mut rw1) = (0.0, 0.0, 0.0, 0.0);
        let mut left_count = 0usize;
        for &(v, label, weight) in sorted {
            let left = v <= threshold;
            match (left, label) {
                (true, 1) => lw1 += weight,
                (true, _) => lw0 += weight,
                (false, 1) => rw1 += weight,
                (false, _) => rw0 += weight,
            }
            if left {
                left_count += 1;
            }
        }
        let right_count = sorted.len() - left_count;
        if left_count < self.params.min_samples_leaf || right_count < self.params.min_samples_leaf {
            return None;
        }
        let lw = lw0 + lw1;
        let rw = rw0 + rw1;
        if lw <= 0.0 || rw <= 0.0 {
            return None;
        }
        let child = (lw * self.params.criterion.impurity(lw0, lw1)
            + rw * self.params.criterion.impurity(rw0, rw1))
            / node_weight;
        let decrease = (parent_impurity - child).max(0.0);
        Some(SplitCandidate {
            feature: 0,
            threshold,
            decrease,
        })
    }

    /// Fits on a shared [`PresortedDataset`] — the fast path behind
    /// [`Classifier::fit`], forests, AdaBoost and grid search.
    ///
    /// Produces bit-identical trees to the legacy per-node re-sorting
    /// builder (`fit_resorting`); `tests/presort_equivalence.rs` pins
    /// the equivalence.
    pub fn fit_presorted(
        &mut self,
        ps: &PresortedDataset,
        y: &[u8],
        sample_weight: Option<&[f64]>,
    ) -> Result<(), Error> {
        self.fit_traversal(&mut PresortTraversal::identity(ps), y, sample_weight)
    }

    /// Fits on a prepared traversal, which may carry a bootstrap row map
    /// (`y`/`sample_weight` are then indexed by *virtual* row). The
    /// traversal's segments are consumed (reordered by the partitions);
    /// reset or rebuild it before reuse.
    pub(crate) fn fit_traversal(
        &mut self,
        trav: &mut PresortTraversal<'_>,
        y: &[u8],
        sample_weight: Option<&[f64]>,
    ) -> Result<(), Error> {
        let m = trav.len();
        let d = trav.dataset().n_features();
        validate_fit_parts(m, d, y, sample_weight)?;
        if self.params.min_samples_split < 2 {
            return Err(Error::InvalidParameter("min_samples_split must be at least 2".into()));
        }
        if self.params.min_samples_leaf < 1 {
            return Err(Error::InvalidParameter("min_samples_leaf must be at least 1".into()));
        }
        self.nodes.clear();
        self.n_features = d;
        self.importances = vec![0.0; d];

        let weights: Vec<f64> = match sample_weight {
            Some(w) => w.to_vec(),
            None => vec![1.0; m],
        };
        let total_weight: f64 = weights.iter().sum();
        if total_weight <= 0.0 {
            return Err(Error::InvalidParameter("sample weights must not all be zero".into()));
        }
        let unit_w = weights.iter().all(|&x| x == 1.0);
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let span = obs::Span::enter("tree.fit");
        let mut ctx = PresortCtx {
            trav,
            y,
            w: &weights,
            vals: Vec::with_capacity(m),
            labs: Vec::with_capacity(m),
            wts: Vec::with_capacity(m),
            features: Vec::with_capacity(d),
            unit_w,
            rng: &mut rng,
        };
        self.build_presorted(&mut ctx, 0, m, 0, total_weight);
        if let Some(us) = span.elapsed_us() {
            if us > 0.0 {
                obs::observe("tree.nodes_per_sec", self.nodes.len() as f64 / (us / 1e6));
            }
        }

        let total: f64 = self.importances.iter().sum();
        if total > 0.0 {
            for imp in &mut self.importances {
                *imp /= total;
            }
        }
        Ok(())
    }

    /// Recursive presorted builder over the node segment `[lo, hi)`.
    ///
    /// Mirrors `build` exactly: same stop conditions, same importance
    /// accounting, same accumulation order (the traversal's row segment
    /// is the stable analogue of the legacy row-ascending index list).
    fn build_presorted(
        &mut self,
        ctx: &mut PresortCtx<'_, '_>,
        lo: usize,
        hi: usize,
        depth: usize,
        total_weight: f64,
    ) -> usize {
        let (w0, w1) = if ctx.unit_w {
            // Unit weights: the legacy sum of ones is an exact integer,
            // so counting labels reproduces it bit-for-bit.
            let mut c1 = 0usize;
            for &v in ctx.trav.rows_segment(lo, hi) {
                c1 += usize::from(ctx.y[v as usize] == 1);
            }
            (((hi - lo) - c1) as f64, c1 as f64)
        } else {
            let (mut w0, mut w1) = (0.0, 0.0);
            for &v in ctx.trav.rows_segment(lo, hi) {
                let vi = v as usize;
                if ctx.y[vi] == 1 {
                    w1 += ctx.w[vi];
                } else {
                    w0 += ctx.w[vi];
                }
            }
            (w0, w1)
        };
        let node_weight = w0 + w1;
        let proba = if node_weight > 0.0 {
            w1 / node_weight
        } else {
            0.5
        };
        let impurity = self.params.criterion.impurity(w0, w1);

        let len = hi - lo;
        let stop = len < self.params.min_samples_split
            || len < 2 * self.params.min_samples_leaf
            || impurity <= 0.0
            || self.params.max_depth.is_some_and(|d| depth >= d);
        if stop {
            self.nodes.push(Node::Leaf { proba });
            return self.nodes.len() - 1;
        }

        let best = self.find_split_presorted(ctx, lo, hi, impurity, node_weight);
        let Some(split) = best else {
            self.nodes.push(Node::Leaf { proba });
            return self.nodes.len() - 1;
        };

        self.importances[split.feature] += node_weight / total_weight * split.decrease;

        let n_left = ctx.trav.partition(lo, hi, split.feature, split.threshold);

        let node_pos = self.nodes.len();
        // Placeholder; children indices are patched after recursion.
        self.nodes.push(Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left: 0,
            right: 0,
        });
        let left = self.build_presorted(ctx, lo, lo + n_left, depth + 1, total_weight);
        let right = self.build_presorted(ctx, lo + n_left, hi, depth + 1, total_weight);
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node_pos]
        {
            *l = left;
            *r = right;
        }
        node_pos
    }

    /// Split search over rank-sorted node segments: per evaluated
    /// feature the sorted order is recovered from the precomputed value
    /// ranks (counting sort or integer key sort — no float comparison
    /// sort), then a single linear sweep scores the thresholds.
    fn find_split_presorted(
        &self,
        ctx: &mut PresortCtx<'_, '_>,
        lo: usize,
        hi: usize,
        parent_impurity: f64,
        node_weight: f64,
    ) -> Option<SplitCandidate> {
        let PresortCtx {
            trav,
            y,
            w,
            vals,
            labs,
            wts,
            features,
            unit_w,
            rng,
        } = &mut *ctx;
        let k = self.params.max_features.resolve(self.n_features);
        features.clear();
        features.extend(0..self.n_features);
        if k < self.n_features {
            rng.shuffle(features);
            features.truncate(k);
        }

        let mut best: Option<SplitCandidate> = None;
        for &feature in features.iter() {
            if trav.dataset().is_constant(feature) {
                // A globally constant non-NaN feature can never split;
                // the legacy builder reaches the same `continue` through
                // its `lo_v == hi_v` check without consuming randomness.
                continue;
            }
            let len = hi - lo;
            if *unit_w {
                // Unit weights: no gather, no placement, no per-row
                // sweep. The node's per-rank-group class histogram is
                // everything the split search needs, and the sweep runs
                // over distinct values instead of rows.
                let ps = trav.dataset();
                let Some(groups) = trav.group_node(feature, lo, hi, y) else {
                    // Node-constant non-NaN feature; the legacy builder
                    // reaches the same `continue` through `lo_v == hi_v`.
                    continue;
                };
                let tbl = &ps.rank_values_of(feature)[groups.min_rank..];
                let n_groups = groups.counts.len();
                let lo_v = tbl[0];
                let hi_v = tbl[n_groups - 1];
                if lo_v == hi_v {
                    continue;
                }
                let candidate = match self.params.splitter {
                    Splitter::Best => self.scan_groups_unit(
                        tbl,
                        groups.counts,
                        groups.ones,
                        len,
                        parent_impurity,
                        node_weight,
                    ),
                    Splitter::Random => {
                        let threshold = rng.gen_range(lo_v..hi_v);
                        self.evaluate_groups_unit(
                            tbl,
                            groups.counts,
                            groups.ones,
                            len,
                            threshold,
                            parent_impurity,
                            node_weight,
                        )
                    }
                };
                if let Some(c) = candidate {
                    if best.as_ref().is_none_or(|b| c.decrease > b.decrease) {
                        best = Some(SplitCandidate { feature, ..c });
                    }
                }
                continue;
            }
            vals.resize(len, 0.0);
            labs.resize(len, 0);
            wts.resize(len, 0.0);
            let emitted = trav.gather_node(feature, lo, hi, |slot, v, value| {
                let vi = v as usize;
                vals[slot] = value;
                labs[slot] = y[vi];
                wts[slot] = w[vi];
            });
            if !emitted {
                // Node-constant non-NaN feature; the legacy builder
                // reaches the same `continue` through `lo_v == hi_v`.
                continue;
            }
            let lo_v = vals[0];
            let hi_v = vals[len - 1];
            if lo_v == hi_v {
                continue;
            }

            match self.params.splitter {
                Splitter::Best => {
                    let candidate =
                        self.scan_best_threshold_soa(vals, labs, wts, parent_impurity, node_weight);
                    if let Some(c) = candidate {
                        if best.as_ref().is_none_or(|b| c.decrease > b.decrease) {
                            best = Some(SplitCandidate { feature, ..c });
                        }
                    }
                }
                Splitter::Random => {
                    let threshold = rng.gen_range(lo_v..hi_v);
                    if let Some(c) = self.evaluate_threshold_soa(
                        vals,
                        labs,
                        wts,
                        threshold,
                        parent_impurity,
                        node_weight,
                    ) {
                        if best.as_ref().is_none_or(|b| c.decrease > b.decrease) {
                            best = Some(SplitCandidate { feature, ..c });
                        }
                    }
                }
            }
        }
        best
    }

    /// The unit-weight split sweep over a node's rank groups (see
    /// [`PresortTraversal::group_node`]). With all sample weights
    /// exactly `1.0` the per-row sweep's accumulators are exact integer
    /// label counts, so summing whole groups — integer addition is
    /// order-independent — then converting at each boundary yields
    /// bit-identical impurity inputs, and the boundaries themselves
    /// (consecutive *present* groups whose values satisfy `next > v`)
    /// are exactly the rows where the per-row sweep evaluated. `O(t)`
    /// for `t` distinct node-local values instead of `O(len)`.
    fn scan_groups_unit(
        &self,
        tbl: &[f64],
        counts: &[u32],
        ones: &[u32],
        n: usize,
        parent_impurity: f64,
        node_weight: f64,
    ) -> Option<SplitCandidate> {
        let n1: u32 = ones.iter().sum();
        let n0 = n as u32 - n1;
        let (mut l0, mut l1) = (0u32, 0u32);
        let mut left_count = 0usize;
        // Value of the last non-empty group accumulated into the left
        // side; boundaries are evaluated between it and the next
        // non-empty group, matching the per-row sweep's `next > v` gate
        // (which also rejects NaN and `-0.0`/`+0.0` boundaries).
        let mut pending: Option<f64> = None;
        let mut best: Option<SplitCandidate> = None;
        for (g, (&c, &o)) in counts.iter().zip(ones).enumerate() {
            if c == 0 {
                continue;
            }
            let v = tbl[g];
            if let Some(pv) = pending {
                if v > pv
                    && left_count >= self.params.min_samples_leaf
                    && n - left_count >= self.params.min_samples_leaf
                {
                    let (lw0, lw1) = (l0 as f64, l1 as f64);
                    let (rw0, rw1) = ((n0 - l0) as f64, (n1 - l1) as f64);
                    let lw = lw0 + lw1;
                    let rw = rw0 + rw1;
                    if lw > 0.0 && rw > 0.0 {
                        let child = (lw * self.params.criterion.impurity(lw0, lw1)
                            + rw * self.params.criterion.impurity(rw0, rw1))
                            / node_weight;
                        let decrease = (parent_impurity - child).max(0.0);
                        if best.as_ref().is_none_or(|b| decrease > b.decrease) {
                            best = Some(SplitCandidate {
                                feature: 0,
                                threshold: pv + (v - pv) / 2.0,
                                decrease,
                            });
                        }
                    }
                }
            }
            l1 += o;
            l0 += c - o;
            left_count += c as usize;
            pending = Some(v);
        }
        best
    }

    /// [`Self::evaluate_threshold`] over a node's rank groups for unit
    /// sample weights; see [`Self::scan_groups_unit`] for why the
    /// integer-count form is bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_groups_unit(
        &self,
        tbl: &[f64],
        counts: &[u32],
        ones: &[u32],
        n: usize,
        threshold: f64,
        parent_impurity: f64,
        node_weight: f64,
    ) -> Option<SplitCandidate> {
        let n1: u32 = ones.iter().sum();
        let n0 = n as u32 - n1;
        let (mut l0, mut l1) = (0u32, 0u32);
        let mut left_count = 0usize;
        for (g, (&c, &o)) in counts.iter().zip(ones).enumerate() {
            // NaN groups compare false and stay on the right, exactly
            // like the per-row `v <= threshold` test.
            if c > 0 && tbl[g] <= threshold {
                l1 += o;
                l0 += c - o;
                left_count += c as usize;
            }
        }
        let right_count = n - left_count;
        if left_count < self.params.min_samples_leaf || right_count < self.params.min_samples_leaf {
            return None;
        }
        let (lw0, lw1) = (l0 as f64, l1 as f64);
        let (rw0, rw1) = ((n0 - l0) as f64, (n1 - l1) as f64);
        let lw = lw0 + lw1;
        let rw = rw0 + rw1;
        if lw <= 0.0 || rw <= 0.0 {
            return None;
        }
        let child = (lw * self.params.criterion.impurity(lw0, lw1)
            + rw * self.params.criterion.impurity(rw0, rw1))
            / node_weight;
        let decrease = (parent_impurity - child).max(0.0);
        Some(SplitCandidate {
            feature: 0,
            threshold,
            decrease,
        })
    }

    /// [`Self::scan_best_threshold`] over the presorted builder's
    /// structure-of-arrays gather. Operation-for-operation identical to
    /// the tuple version (same accumulation order, same comparisons),
    /// so the chosen split is bit-identical; only the memory layout
    /// differs.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn scan_best_threshold_soa(
        &self,
        values: &[f64],
        labels: &[u8],
        weights: &[f64],
        parent_impurity: f64,
        node_weight: f64,
    ) -> Option<SplitCandidate> {
        let n = values.len();
        let (mut lw0, mut lw1) = (0.0_f64, 0.0_f64);
        let (mut rw0, mut rw1) = (0.0_f64, 0.0_f64);
        for (&label, &weight) in labels.iter().zip(weights) {
            if label == 1 {
                rw1 += weight;
            } else {
                rw0 += weight;
            }
        }
        let mut best: Option<SplitCandidate> = None;
        for i in 0..n - 1 {
            let (v, label, weight) = (values[i], labels[i], weights[i]);
            if label == 1 {
                lw1 += weight;
                rw1 -= weight;
            } else {
                lw0 += weight;
                rw0 -= weight;
            }
            let next = values[i + 1];
            // See `scan_best_threshold`: reject non-increasing and NaN
            // boundaries.
            if !(next > v) {
                continue;
            }
            let left_count = i + 1;
            let right_count = n - left_count;
            if left_count < self.params.min_samples_leaf
                || right_count < self.params.min_samples_leaf
            {
                continue;
            }
            let lw = lw0 + lw1;
            let rw = rw0 + rw1;
            if lw <= 0.0 || rw <= 0.0 {
                continue;
            }
            let child = (lw * self.params.criterion.impurity(lw0, lw1)
                + rw * self.params.criterion.impurity(rw0, rw1))
                / node_weight;
            let decrease = (parent_impurity - child).max(0.0);
            if best.as_ref().is_none_or(|b| decrease > b.decrease) {
                best = Some(SplitCandidate {
                    feature: 0,
                    threshold: v + (next - v) / 2.0,
                    decrease,
                });
            }
        }
        best
    }

    /// [`Self::evaluate_threshold`] over the structure-of-arrays
    /// gather; operation-for-operation identical to the tuple version.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_threshold_soa(
        &self,
        values: &[f64],
        labels: &[u8],
        weights: &[f64],
        threshold: f64,
        parent_impurity: f64,
        node_weight: f64,
    ) -> Option<SplitCandidate> {
        let (mut lw0, mut lw1, mut rw0, mut rw1) = (0.0, 0.0, 0.0, 0.0);
        let mut left_count = 0usize;
        for ((&v, &label), &weight) in values.iter().zip(labels).zip(weights) {
            let left = v <= threshold;
            match (left, label) {
                (true, 1) => lw1 += weight,
                (true, _) => lw0 += weight,
                (false, 1) => rw1 += weight,
                (false, _) => rw0 += weight,
            }
            if left {
                left_count += 1;
            }
        }
        let right_count = values.len() - left_count;
        if left_count < self.params.min_samples_leaf || right_count < self.params.min_samples_leaf {
            return None;
        }
        let lw = lw0 + lw1;
        let rw = rw0 + rw1;
        if lw <= 0.0 || rw <= 0.0 {
            return None;
        }
        let child = (lw * self.params.criterion.impurity(lw0, lw1)
            + rw * self.params.criterion.impurity(rw0, rw1))
            / node_weight;
        let decrease = (parent_impurity - child).max(0.0);
        Some(SplitCandidate {
            feature: 0,
            threshold,
            decrease,
        })
    }

    /// Trains with the legacy per-node re-sorting builder.
    ///
    /// [`Classifier::fit`] now presorts each feature once and stably
    /// partitions (see [`PresortedDataset`]); this path is retained as
    /// the reference implementation the presorted builder must match
    /// bit-for-bit (`tests/presort_equivalence.rs`) and as the baseline
    /// measured into `results/BENCH_table3.json`.
    #[doc(hidden)]
    pub fn fit_resorting(
        &mut self,
        x: &Matrix,
        y: &[u8],
        sample_weight: Option<&[f64]>,
    ) -> Result<(), Error> {
        validate_fit_parts(x.rows(), x.cols(), y, sample_weight)?;
        if self.params.min_samples_split < 2 {
            return Err(Error::InvalidParameter("min_samples_split must be at least 2".into()));
        }
        if self.params.min_samples_leaf < 1 {
            return Err(Error::InvalidParameter("min_samples_leaf must be at least 1".into()));
        }
        self.nodes.clear();
        self.n_features = x.cols();
        self.importances = vec![0.0; x.cols()];

        let weights: Vec<f64> = match sample_weight {
            Some(w) => w.to_vec(),
            None => vec![1.0; x.rows()],
        };
        let total_weight: f64 = weights.iter().sum();
        if total_weight <= 0.0 {
            return Err(Error::InvalidParameter("sample weights must not all be zero".into()));
        }
        let indices: Vec<usize> = (0..x.rows()).collect();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        self.build(x, y, &weights, &indices, 0, total_weight, &mut rng);

        let total: f64 = self.importances.iter().sum();
        if total > 0.0 {
            for imp in &mut self.importances {
                *imp /= total;
            }
        }
        Ok(())
    }
}

/// Per-fit state threaded through the presorted builder.
struct PresortCtx<'a, 'b> {
    trav: &'b mut PresortTraversal<'a>,
    y: &'b [u8],
    /// Per-(virtual-)row weights.
    w: &'b [f64],
    /// Node-local sorted-gather buffers (structure-of-arrays: values,
    /// labels, weights), reused across nodes to avoid per-node
    /// allocation. The split layout keeps the threshold sweep streaming
    /// over dense `f64` lanes.
    vals: Vec<f64>,
    labs: Vec<u8>,
    wts: Vec<f64>,
    /// Candidate-feature scratch, reused across nodes.
    features: Vec<usize>,
    /// Every weight is exactly `1.0`, so class-weight sums are exact
    /// integer counts and the sweep can use the unit-weight scans
    /// (bit-identical results: `f64` sums of ones are exact).
    unit_w: bool,
    rng: &'b mut StdRng,
}

#[derive(Debug, Clone, Copy)]
struct SplitCandidate {
    feature: usize,
    threshold: f64,
    decrease: f64,
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[u8], sample_weight: Option<&[f64]>) -> Result<(), Error> {
        // Validate before paying for the presort; `fit_traversal`
        // re-checks the same conditions in the same order.
        validate_fit_parts(x.rows(), x.cols(), y, sample_weight)?;
        let ps = PresortedDataset::build(x);
        self.fit_presorted(&ps, y, sample_weight)
    }

    fn fit_cached(
        &mut self,
        x: &Matrix,
        cache: &FitCache,
        y: &[u8],
        sample_weight: Option<&[f64]>,
    ) -> Result<(), Error> {
        validate_fit_parts(x.rows(), x.cols(), y, sample_weight)?;
        self.fit_presorted(cache.presorted(x), y, sample_weight)
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert!(self.is_fitted(), "tree must be fitted before predicting");
        assert_eq!(x.cols(), self.n_features, "feature count must match training data");
        self.to_flat().predict_proba(x, 1)
    }

    fn name(&self) -> &'static str {
        "DecisionTree"
    }
}

monitorless_std::json_enum!(SplitCriterion { Gini, Entropy });
monitorless_std::json_enum!(Splitter { Best, Random });
monitorless_std::json_struct!(DecisionTreeParams {
    criterion,
    splitter,
    max_depth,
    min_samples_split,
    min_samples_leaf,
    max_features,
    seed,
});
monitorless_std::json_struct!(DecisionTree {
    params,
    nodes,
    n_features,
    importances,
});

// `MaxFeatures::Fraction` and `Node` carry data, so they keep the
// externally tagged encoding by hand.
impl monitorless_std::json::ToJson for MaxFeatures {
    fn to_json(&self) -> monitorless_std::json::Json {
        use monitorless_std::json::Json;
        match self {
            MaxFeatures::All => Json::Str("All".into()),
            MaxFeatures::Sqrt => Json::Str("Sqrt".into()),
            MaxFeatures::Log2 => Json::Str("Log2".into()),
            MaxFeatures::Fraction(f) => Json::Obj(vec![("Fraction".into(), f.to_json())]),
        }
    }
}

impl monitorless_std::json::FromJson for MaxFeatures {
    fn from_json(
        json: &monitorless_std::json::Json,
    ) -> Result<Self, monitorless_std::json::JsonError> {
        use monitorless_std::json::{field, Json, JsonError};
        match json {
            Json::Str(s) => match s.as_str() {
                "All" => Ok(MaxFeatures::All),
                "Sqrt" => Ok(MaxFeatures::Sqrt),
                "Log2" => Ok(MaxFeatures::Log2),
                other => Err(JsonError(format!("unknown MaxFeatures variant {other:?}"))),
            },
            Json::Obj(_) => Ok(MaxFeatures::Fraction(field(json, "Fraction")?)),
            _ => Err(JsonError("expected MaxFeatures".into())),
        }
    }
}

impl monitorless_std::json::ToJson for Node {
    fn to_json(&self) -> monitorless_std::json::Json {
        use monitorless_std::json::Json;
        match self {
            Node::Leaf { proba } => {
                Json::Obj(vec![("Leaf".into(), Json::Obj(vec![("proba".into(), proba.to_json())]))])
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => Json::Obj(vec![(
                "Split".into(),
                Json::Obj(vec![
                    ("feature".into(), feature.to_json()),
                    ("threshold".into(), threshold.to_json()),
                    ("left".into(), left.to_json()),
                    ("right".into(), right.to_json()),
                ]),
            )]),
        }
    }
}

impl monitorless_std::json::FromJson for Node {
    fn from_json(
        json: &monitorless_std::json::Json,
    ) -> Result<Self, monitorless_std::json::JsonError> {
        use monitorless_std::json::{field, Json, JsonError};
        match json {
            Json::Obj(members) => match members.first().map(|(k, v)| (k.as_str(), v)) {
                Some(("Leaf", body)) => Ok(Node::Leaf {
                    proba: field(body, "proba")?,
                }),
                Some(("Split", body)) => Ok(Node::Split {
                    feature: field(body, "feature")?,
                    threshold: field(body, "threshold")?,
                    left: field(body, "left")?,
                    right: field(body, "right")?,
                }),
                _ => Err(JsonError("unknown Node variant".into())),
            },
            _ => Err(JsonError("expected Node object".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<u8>) {
        // XOR needs depth >= 2 — a sanity check that recursion works.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for k in 0..5 {
                rows.push(vec![a + 0.01 * k as f64, b + 0.01 * k as f64]);
                y.push(u8::from((a > 0.5) != (b > 0.5)));
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y)
    }

    #[test]
    fn perfectly_separable_is_learned() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        let y = vec![0, 0, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y, None).unwrap();
        assert_eq!(t.predict(&x), y);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn xor_is_learned() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y, None).unwrap();
        assert_eq!(t.predict(&x), y);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn entropy_criterion_also_learns() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(DecisionTreeParams {
            criterion: SplitCriterion::Entropy,
            ..DecisionTreeParams::default()
        });
        t.fit(&x, &y, None).unwrap();
        assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn random_splitter_learns_separable_data() {
        let x = Matrix::from_rows(&[&[0.0], &[0.1], &[0.9], &[1.0]]);
        let y = vec![0, 0, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeParams {
            splitter: Splitter::Random,
            seed: 42,
            ..DecisionTreeParams::default()
        });
        t.fit(&x, &y, None).unwrap();
        assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn max_depth_zero_yields_single_leaf() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(DecisionTreeParams {
            max_depth: Some(0),
            ..DecisionTreeParams::default()
        });
        t.fit(&x, &y, None).unwrap();
        assert_eq!(t.node_count(), 1);
        let p = t.predict_proba(&x);
        assert!(p.iter().all(|&v| (v - 0.5).abs() < 1e-12));
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0], &[5.0]]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeParams {
            min_samples_leaf: 3,
            ..DecisionTreeParams::default()
        });
        t.fit(&x, &y, None).unwrap();
        // Only the midpoint split keeps 3 samples per leaf.
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn importances_sum_to_one_and_pick_informative_feature() {
        let x = Matrix::from_rows(&[
            &[0.0, 5.0],
            &[0.1, 5.0],
            &[0.2, 5.0],
            &[0.9, 5.0],
            &[1.0, 5.0],
            &[1.1, 5.0],
        ]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y, None).unwrap();
        let imp = t.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(imp[0] > 0.99);
        assert!(imp[1] < 0.01);
    }

    #[test]
    fn sample_weights_shift_the_split() {
        // Upweighting the positive samples pulls the predicted probability.
        let x = Matrix::from_rows(&[&[0.0], &[0.0], &[0.0], &[0.0]]);
        let y = vec![0, 0, 0, 1];
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y, Some(&[1.0, 1.0, 1.0, 9.0])).unwrap();
        let p = t.predict_proba(&x)[0];
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn invalid_params_rejected() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let mut t = DecisionTree::new(DecisionTreeParams {
            min_samples_split: 1,
            ..DecisionTreeParams::default()
        });
        assert!(matches!(t.fit(&x, &[0, 1], None), Err(Error::InvalidParameter(_))));
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y, None).unwrap();
        let json = monitorless_std::json::to_string(&t);
        let back: DecisionTree = monitorless_std::json::from_str(&json).unwrap();
        assert_eq!(back.predict_proba(&x), t.predict_proba(&x));
    }

    #[test]
    fn decision_rules_describe_the_split() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        let y = vec![0, 0, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y, None).unwrap();
        let rules = t.decision_rules(&["cpu.util".to_string()], 0.5);
        assert_eq!(rules.len(), 1);
        assert!(rules[0].contains("cpu.util >"), "{}", rules[0]);
        assert!(rules[0].contains("p=1.00"));
        // No rule qualifies at an impossible probability floor.
        assert!(t.decision_rules(&["cpu.util".to_string()], 1.1).is_empty());
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(100), 10);
        assert_eq!(MaxFeatures::Log2.resolve(64), 6);
        assert_eq!(MaxFeatures::Fraction(0.25).resolve(10), 3);
        assert_eq!(MaxFeatures::Fraction(0.001).resolve(10), 1);
    }
}
