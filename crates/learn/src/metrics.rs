//! Classification metrics, including the paper's *lagged* variants.
//!
//! Section 4 of the paper observes that predictions and ground-truth labels
//! are misaligned by up to a couple of seconds because saturated
//! applications answer slowly, delaying the KPI observation. The lagged
//! metrics `F1_k` / `Acc_k` therefore:
//!
//! * reclassify a false positive at time `t` as a **true negative** if a
//!   ground-truth "saturated" sample occurs within `[t+1, t+k]`, and
//! * reclassify a false negative at time `t` as a **true positive** if a
//!   positive *prediction* occurred within `[t-k, t-1]`.
//!
//! Late predictions (after saturation was already observed) stay wrong.
//! The paper evaluates with `k = 2`.

/// A 2×2 confusion matrix for binary classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Correctly predicted negatives.
    pub tn: usize,
    /// Incorrectly predicted positives.
    pub fp: usize,
    /// Incorrectly predicted negatives.
    pub fn_: usize,
    /// Correctly predicted positives.
    pub tp: usize,
}

impl ConfusionMatrix {
    /// Builds the (unlagged) confusion matrix.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_predictions(y_true: &[u8], y_pred: &[u8]) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
        let mut cm = ConfusionMatrix::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            match (t != 0, p != 0) {
                (false, false) => cm.tn += 1,
                (false, true) => cm.fp += 1,
                (true, false) => cm.fn_ += 1,
                (true, true) => cm.tp += 1,
            }
        }
        cm
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tn + self.fp + self.fn_ + self.tp
    }

    /// `(TP + TN) / total`; 0.0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / total as f64
    }

    /// `TP / (TP + FP)`; 0.0 when no positives were predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// `TP / (TP + FN)`; 0.0 when there are no positive samples.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// Sørensen–Dice coefficient `2 TP / (2 TP + FP + FN)`;
    /// 0.0 when the denominator is zero.
    pub fn f1(&self) -> f64 {
        let denom = 2 * self.tp + self.fp + self.fn_;
        if denom == 0 {
            return 0.0;
        }
        2.0 * self.tp as f64 / denom as f64
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TN={} FP={} FN={} TP={} F1={:.3} Acc={:.3}",
            self.tn,
            self.fp,
            self.fn_,
            self.tp,
            self.f1(),
            self.accuracy()
        )
    }
}

/// Plain accuracy over hard predictions.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn accuracy(y_true: &[u8], y_pred: &[u8]) -> f64 {
    ConfusionMatrix::from_predictions(y_true, y_pred).accuracy()
}

/// Plain F1 score over hard predictions.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn f1_score(y_true: &[u8], y_pred: &[u8]) -> f64 {
    ConfusionMatrix::from_predictions(y_true, y_pred).f1()
}

/// Per-sample outcome under the lagged scoring rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleOutcome {
    /// Correct negative (`TN_k`).
    TrueNegative,
    /// Incorrect positive (`FP_k`).
    FalsePositive,
    /// Incorrect negative (`FN_k`).
    FalseNegative,
    /// Correct positive (`TP_k`).
    TruePositive,
}

/// Classifies every sample under the lagged rules with lag distance `k`
/// — the per-sample form used to paint Figure 3's TP/FP/FN markers.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn lagged_classification(y_true: &[u8], y_pred: &[u8], k: usize) -> Vec<SampleOutcome> {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let n = y_true.len();
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        let outcome = match (y_true[t] != 0, y_pred[t] != 0) {
            (false, false) => SampleOutcome::TrueNegative,
            (true, true) => SampleOutcome::TruePositive,
            (false, true) => {
                // Early prediction: forgiven if saturation follows within k.
                let upcoming = (t + 1..n.min(t + k + 1)).any(|j| y_true[j] != 0);
                if upcoming {
                    SampleOutcome::TrueNegative
                } else {
                    SampleOutcome::FalsePositive
                }
            }
            (true, false) => {
                // Missed sample: forgiven if a positive prediction preceded it.
                let preceded = (t.saturating_sub(k)..t).any(|j| y_pred[j] != 0);
                if preceded {
                    SampleOutcome::TruePositive
                } else {
                    SampleOutcome::FalseNegative
                }
            }
        };
        out.push(outcome);
    }
    out
}

/// Builds the lagged confusion matrix with lag distance `k`
/// (Section 4 of the paper; the evaluation uses `k = 2`).
///
/// With `k = 0` this is exactly [`ConfusionMatrix::from_predictions`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn lagged_confusion(y_true: &[u8], y_pred: &[u8], k: usize) -> ConfusionMatrix {
    let mut cm = ConfusionMatrix::default();
    for outcome in lagged_classification(y_true, y_pred, k) {
        match outcome {
            SampleOutcome::TrueNegative => cm.tn += 1,
            SampleOutcome::FalsePositive => cm.fp += 1,
            SampleOutcome::FalseNegative => cm.fn_ += 1,
            SampleOutcome::TruePositive => cm.tp += 1,
        }
    }
    cm
}

/// Area under the ROC curve from scores (probabilities) and binary
/// labels, computed via the rank statistic (ties get half credit).
/// Returns 0.5 when only one class is present.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn roc_auc(y_true: &[u8], scores: &[f64]) -> f64 {
    assert_eq!(y_true.len(), scores.len(), "length mismatch");
    let n_pos = y_true.iter().filter(|&&l| l == 1).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank the scores (average rank for ties).
    // `total_cmp` keeps the ranking well-defined even if a score is NaN.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(y_true)
        .filter(|(_, &l)| l == 1)
        .map(|(r, _)| *r)
        .sum();
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Lagged F1 score (`F1_k` in the paper).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn lagged_f1(y_true: &[u8], y_pred: &[u8], k: usize) -> f64 {
    lagged_confusion(y_true, y_pred, k).f1()
}

/// Lagged accuracy (`Acc_k` in the paper).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn lagged_accuracy(y_true: &[u8], y_pred: &[u8], k: usize) -> f64 {
    lagged_confusion(y_true, y_pred, k).accuracy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 1, 1], &[0, 1, 0, 1]);
        assert_eq!(
            cm,
            ConfusionMatrix {
                tn: 1,
                fp: 1,
                fn_: 1,
                tp: 1
            }
        );
        assert_eq!(cm.accuracy(), 0.5);
        assert_eq!(cm.precision(), 0.5);
        assert_eq!(cm.recall(), 0.5);
        assert_eq!(cm.f1(), 0.5);
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let y = [0, 1, 0, 1, 1];
        assert_eq!(accuracy(&y, &y), 1.0);
        assert_eq!(f1_score(&y, &y), 1.0);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
    }

    #[test]
    fn lag_zero_equals_plain() {
        let yt = [0, 1, 0, 1, 0, 0, 1];
        let yp = [1, 0, 0, 1, 1, 0, 0];
        assert_eq!(lagged_confusion(&yt, &yp, 0), ConfusionMatrix::from_predictions(&yt, &yp));
    }

    #[test]
    fn early_prediction_becomes_tn() {
        // Prediction fires one step before the ground truth saturates.
        let yt = [0, 0, 1, 1];
        let yp = [0, 1, 1, 1];
        let plain = ConfusionMatrix::from_predictions(&yt, &yp);
        assert_eq!(plain.fp, 1);
        let lag = lagged_confusion(&yt, &yp, 2);
        assert_eq!(lag.fp, 0);
        assert_eq!(lag.tn, 2);
    }

    #[test]
    fn missed_sample_after_early_prediction_becomes_tp() {
        // A positive prediction at t=1 covers the missed label at t=2.
        let yt = [0, 0, 1, 0];
        let yp = [0, 1, 0, 0];
        let lag = lagged_confusion(&yt, &yp, 2);
        assert_eq!(lag.fn_, 0);
        assert_eq!(lag.tp, 1);
        // And the early FP at t=1 is forgiven because yt[2] = 1.
        assert_eq!(lag.fp, 0);
    }

    #[test]
    fn late_prediction_stays_wrong() {
        // Prediction only fires AFTER the saturated sample: both the missed
        // label (t=1) and the late positive (t=2) remain errors.
        let yt = [0, 1, 0, 0];
        let yp = [0, 0, 1, 0];
        let lag = lagged_confusion(&yt, &yp, 2);
        assert_eq!(lag.fn_, 1);
        assert_eq!(lag.fp, 1);
    }

    #[test]
    fn lag_window_is_bounded() {
        // Ground-truth saturation is 3 steps after the prediction; with
        // k = 2 the FP is NOT forgiven.
        let yt = [0, 0, 0, 0, 1];
        let yp = [0, 1, 0, 0, 1];
        let lag = lagged_confusion(&yt, &yp, 2);
        assert_eq!(lag.fp, 1);
    }

    #[test]
    fn lagged_scores_match_matrix() {
        let yt = [0, 0, 1, 1, 0, 1];
        let yp = [0, 1, 1, 0, 0, 1];
        let cm = lagged_confusion(&yt, &yp, 2);
        assert_eq!(lagged_f1(&yt, &yp, 2), cm.f1());
        assert_eq!(lagged_accuracy(&yt, &yp, 2), cm.accuracy());
    }

    #[test]
    fn roc_auc_perfect_and_random() {
        let y = [0, 0, 1, 1];
        assert_eq!(roc_auc(&y, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(roc_auc(&y, &[0.9, 0.8, 0.2, 0.1]), 0.0);
        // All-equal scores: chance level via tie handling.
        assert!((roc_auc(&y, &[0.5, 0.5, 0.5, 0.5]) - 0.5).abs() < 1e-12);
        // Single class: defined as 0.5.
        assert_eq!(roc_auc(&[1, 1], &[0.2, 0.9]), 0.5);
    }

    #[test]
    fn roc_auc_is_rank_invariant() {
        let y = [0, 1, 0, 1, 1, 0];
        let s1 = [0.1, 0.7, 0.3, 0.9, 0.6, 0.2];
        let s2: Vec<f64> = s1.iter().map(|v| v * 100.0 - 3.0).collect();
        assert!((roc_auc(&y, &s1) - roc_auc(&y, &s2)).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_counts() {
        let cm = ConfusionMatrix {
            tn: 1,
            fp: 2,
            fn_: 3,
            tp: 4,
        };
        let s = cm.to_string();
        assert!(s.contains("TN=1") && s.contains("TP=4"));
    }

    #[test]
    fn per_sample_classification_matches_matrix() {
        let yt = [0, 0, 1, 1, 0, 1];
        let yp = [0, 1, 1, 0, 0, 1];
        let outcomes = lagged_classification(&yt, &yp, 2);
        let cm = lagged_confusion(&yt, &yp, 2);
        let count = |o: SampleOutcome| outcomes.iter().filter(|&&x| x == o).count();
        assert_eq!(count(SampleOutcome::TrueNegative), cm.tn);
        assert_eq!(count(SampleOutcome::FalsePositive), cm.fp);
        assert_eq!(count(SampleOutcome::FalseNegative), cm.fn_);
        assert_eq!(count(SampleOutcome::TruePositive), cm.tp);
    }

    #[test]
    fn lagged_total_is_preserved() {
        let yt = [0, 1, 0, 1, 1, 0, 0, 1];
        let yp = [1, 0, 1, 1, 0, 0, 1, 1];
        for k in 0..4 {
            assert_eq!(lagged_confusion(&yt, &yp, k).total(), yt.len());
        }
    }
}
