//! Cross-validation and grid search.
//!
//! The paper performs 5-fold cross-validation where folds are formed from
//! whole *training sets* (Table 1 rows): each fold trains on 20 sets and
//! validates on 5. [`GroupKFold`] reproduces that scheme; a plain shuffled
//! [`KFold`] is provided as well. [`GridSearch`] exhaustively evaluates a
//! Cartesian hyper-parameter grid (Table 2) with any scorer.

use std::collections::BTreeMap;

use monitorless_obs as obs;
use monitorless_std::rng::{Rng, StdRng};

use crate::presort::FitCache;
use crate::{Classifier, Error, Matrix};

/// A `(train_indices, validation_indices)` pair.
pub type Split = (Vec<usize>, Vec<usize>);

/// Plain k-fold splitter over sample indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KFold {
    /// Number of folds (≥ 2).
    pub n_splits: usize,
    /// Whether to shuffle before splitting.
    pub shuffle: bool,
    /// Seed used when shuffling.
    pub seed: u64,
}

impl KFold {
    /// Creates a shuffled k-fold splitter.
    pub fn new(n_splits: usize) -> Self {
        KFold {
            n_splits,
            shuffle: true,
            seed: 0,
        }
    }

    /// Generates the folds for `n` samples.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `n_splits < 2` or there are
    /// fewer samples than folds.
    pub fn split(&self, n: usize) -> Result<Vec<Split>, Error> {
        if self.n_splits < 2 {
            return Err(Error::InvalidParameter("n_splits must be at least 2".into()));
        }
        if n < self.n_splits {
            return Err(Error::InvalidParameter(format!(
                "cannot split {n} samples into {} folds",
                self.n_splits
            )));
        }
        let mut indices: Vec<usize> = (0..n).collect();
        if self.shuffle {
            StdRng::seed_from_u64(self.seed).shuffle(&mut indices);
        }
        let fold_sizes = fold_sizes(n, self.n_splits);
        let mut splits = Vec::with_capacity(self.n_splits);
        let mut start = 0;
        for size in fold_sizes {
            let val: Vec<usize> = indices[start..start + size].to_vec();
            let train: Vec<usize> = indices[..start]
                .iter()
                .chain(&indices[start + size..])
                .copied()
                .collect();
            splits.push((train, val));
            start += size;
        }
        Ok(splits)
    }
}

/// Splits whole groups (training configurations) into folds, so no group
/// appears in both the train and validation side of a fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupKFold {
    /// Number of folds (≥ 2).
    pub n_splits: usize,
}

impl GroupKFold {
    /// Creates a group k-fold splitter.
    pub fn new(n_splits: usize) -> Self {
        GroupKFold { n_splits }
    }

    /// Generates folds from per-sample group ids.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `n_splits < 2` or there are
    /// fewer distinct groups than folds.
    pub fn split(&self, groups: &[u32]) -> Result<Vec<Split>, Error> {
        if self.n_splits < 2 {
            return Err(Error::InvalidParameter("n_splits must be at least 2".into()));
        }
        let mut distinct: Vec<u32> = groups.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() < self.n_splits {
            return Err(Error::InvalidParameter(format!(
                "cannot split {} groups into {} folds",
                distinct.len(),
                self.n_splits
            )));
        }
        let sizes = fold_sizes(distinct.len(), self.n_splits);
        let mut splits = Vec::with_capacity(self.n_splits);
        let mut start = 0;
        for size in sizes {
            let val_groups: &[u32] = &distinct[start..start + size];
            let mut train = Vec::new();
            let mut val = Vec::new();
            for (i, g) in groups.iter().enumerate() {
                if val_groups.contains(g) {
                    val.push(i);
                } else {
                    train.push(i);
                }
            }
            splits.push((train, val));
            start += size;
        }
        Ok(splits)
    }
}

fn fold_sizes(n: usize, k: usize) -> Vec<usize> {
    let base = n / k;
    let extra = n % k;
    (0..k).map(|i| base + usize::from(i < extra)).collect()
}

/// Per-fold score plus aggregate statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Score of each fold.
    pub fold_scores: Vec<f64>,
}

impl CvResult {
    /// Mean score across folds; 0.0 when there are no folds.
    pub fn mean(&self) -> f64 {
        if self.fold_scores.is_empty() {
            return 0.0;
        }
        self.fold_scores.iter().sum::<f64>() / self.fold_scores.len() as f64
    }

    /// Population standard deviation of the fold scores.
    pub fn std(&self) -> f64 {
        if self.fold_scores.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        (self
            .fold_scores
            .iter()
            .map(|s| (s - m) * (s - m))
            .sum::<f64>()
            / self.fold_scores.len() as f64)
            .sqrt()
    }
}

/// Runs cross-validation: for each split, builds a fresh classifier with
/// `factory`, fits on the train side and scores on the validation side
/// with `scorer(y_true, y_pred)`.
///
/// Folds whose train or validation side ends up with a single class are
/// skipped (their score is not recorded), mirroring how the paper's group
/// scheme can produce degenerate folds for small subsets.
///
/// # Errors
///
/// Propagates classifier fit errors other than
/// [`Error::InvalidLabels`] (which marks a degenerate fold).
pub fn cross_validate<F, S>(
    x: &Matrix,
    y: &[u8],
    splits: &[Split],
    mut factory: F,
    mut scorer: S,
) -> Result<CvResult, Error>
where
    F: FnMut() -> Box<dyn Classifier>,
    S: FnMut(&[u8], &[u8]) -> f64,
{
    let mut fold_scores = Vec::with_capacity(splits.len());
    for (train, val) in splits {
        let x_train = x.select_rows(train);
        let y_train: Vec<u8> = train.iter().map(|&i| y[i]).collect();
        let x_val = x.select_rows(val);
        let y_val: Vec<u8> = val.iter().map(|&i| y[i]).collect();
        let mut clf = factory();
        match clf.fit(&x_train, &y_train, None) {
            Ok(()) => {}
            Err(Error::InvalidLabels) => continue,
            Err(e) => return Err(e),
        }
        let pred = clf.predict(&x_val);
        fold_scores.push(scorer(&y_val, &pred));
    }
    Ok(CvResult { fold_scores })
}

/// One fold's materialized train/validation data plus the lazily built
/// presort cache every candidate fitting on this fold shares.
#[derive(Debug)]
struct FoldData {
    x_train: Matrix,
    y_train: Vec<u8>,
    x_val: Matrix,
    y_val: Vec<u8>,
    cache: FitCache,
}

fn prepare_folds(x: &Matrix, y: &[u8], splits: &[Split]) -> Vec<FoldData> {
    splits
        .iter()
        .map(|(train, val)| FoldData {
            x_train: x.select_rows(train),
            y_train: train.iter().map(|&i| y[i]).collect(),
            x_val: x.select_rows(val),
            y_val: val.iter().map(|&i| y[i]).collect(),
            cache: FitCache::new(),
        })
        .collect()
}

/// Evaluates one fold: fit (through the fold's shared presort cache),
/// predict, score. `Ok(None)` marks a degenerate (skipped) fold.
fn evaluate_fold<S>(
    fold: &FoldData,
    mut clf: Box<dyn Classifier>,
    scorer: &S,
) -> Result<Option<f64>, Error>
where
    S: Fn(&[u8], &[u8]) -> f64,
{
    match clf.fit_cached(&fold.x_train, &fold.cache, &fold.y_train, None) {
        Ok(()) => {}
        Err(Error::InvalidLabels) => return Ok(None),
        Err(e) => return Err(e),
    }
    let pred = clf.predict(&fold.x_val);
    Ok(Some(scorer(&fold.y_val, &pred)))
}

/// Parallel variant of [`cross_validate`]: folds are evaluated
/// concurrently on `n_jobs` worker threads.
///
/// Scores are identical to the sequential version — every fold trains
/// the same classifier on the same data; only the scheduling differs —
/// and degenerate folds are skipped the same way. When several folds
/// fail with a non-degenerate error, the error of the earliest fold is
/// returned, matching the sequential short-circuit.
///
/// # Errors
///
/// Propagates classifier fit errors other than [`Error::InvalidLabels`].
pub fn cross_validate_parallel<F, S>(
    x: &Matrix,
    y: &[u8],
    splits: &[Split],
    factory: F,
    scorer: S,
    n_jobs: usize,
) -> Result<CvResult, Error>
where
    F: Fn() -> Box<dyn Classifier> + Sync,
    S: Fn(&[u8], &[u8]) -> f64 + Sync,
{
    // `Ok(None)` marks a degenerate (skipped) fold; the outer `Option`
    // distinguishes "not yet evaluated" while workers fill the slots.
    type FoldOutcome = Option<Result<Option<f64>, Error>>;
    let folds = prepare_folds(x, y, splits);
    let mut outcomes: Vec<(&FoldData, FoldOutcome)> = folds.iter().map(|f| (f, None)).collect();
    monitorless_std::pool::for_each_chunk_mut(&mut outcomes, n_jobs.max(1), |_, chunk| {
        for (fold, outcome) in chunk.iter_mut() {
            *outcome = Some(evaluate_fold(fold, factory(), &scorer));
        }
    });
    let mut fold_scores = Vec::with_capacity(folds.len());
    for (_, outcome) in outcomes {
        match outcome.expect("every fold is evaluated") {
            Ok(Some(score)) => fold_scores.push(score),
            Ok(None) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(CvResult { fold_scores })
}

/// A hyper-parameter value in a grid.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Floating-point parameter (e.g. `C`, `tol`, `gamma`).
    F(f64),
    /// Integer parameter (e.g. `n_estimators`, `max_depth`).
    I(i64),
    /// Categorical parameter (e.g. `criterion`, `class_weight`).
    S(String),
    /// Boolean parameter.
    B(bool),
}

impl ParamValue {
    /// The value as `f64`, if the variant is `F` or `I`.
    pub fn try_as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::F(v) => Some(*v),
            ParamValue::I(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `usize`, if the variant is a non-negative `I`.
    pub fn try_as_usize(&self) -> Option<usize> {
        match self {
            ParamValue::I(v) if *v >= 0 => Some(*v as usize),
            _ => None,
        }
    }

    /// The value as `&str`, if the variant is `S`.
    pub fn try_as_str(&self) -> Option<&str> {
        match self {
            ParamValue::S(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if the variant is `B`.
    pub fn try_as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::B(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the variant is not `F` or `I`; grid definitions are
    /// static, so a mismatch is a programming error. Use
    /// [`ParamValue::try_as_f64`] for dynamic grids.
    pub fn as_f64(&self) -> f64 {
        self.try_as_f64()
            .unwrap_or_else(|| panic!("parameter {self:?} is not numeric"))
    }

    /// The value as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if the variant is not `I` or the value is negative. Use
    /// [`ParamValue::try_as_usize`] for dynamic grids.
    pub fn as_usize(&self) -> usize {
        self.try_as_usize()
            .unwrap_or_else(|| panic!("parameter {self:?} is not a non-negative integer"))
    }

    /// The value as `&str`.
    ///
    /// # Panics
    ///
    /// Panics if the variant is not `S`. Use [`ParamValue::try_as_str`]
    /// for dynamic grids.
    pub fn as_str(&self) -> &str {
        self.try_as_str()
            .unwrap_or_else(|| panic!("parameter {self:?} is not a string"))
    }

    /// The value as `bool`.
    ///
    /// # Panics
    ///
    /// Panics if the variant is not `B`. Use [`ParamValue::try_as_bool`]
    /// for dynamic grids.
    pub fn as_bool(&self) -> bool {
        self.try_as_bool()
            .unwrap_or_else(|| panic!("parameter {self:?} is not a bool"))
    }
}

/// A concrete assignment of parameter names to values.
pub type ParamSet = BTreeMap<String, ParamValue>;

/// A named Cartesian hyper-parameter grid.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamGrid {
    axes: Vec<(String, Vec<ParamValue>)>,
}

impl ParamGrid {
    /// Creates an empty grid (a single empty parameter set).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a parameter axis. Returns `self` for chaining.
    pub fn add(mut self, name: &str, values: Vec<ParamValue>) -> Self {
        self.axes.push((name.to_string(), values));
        self
    }

    /// Number of points in the grid.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len().max(1)).product()
    }

    /// Whether the grid has no axes.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Enumerates every parameter combination.
    pub fn iter_combinations(&self) -> Vec<ParamSet> {
        let mut combos = vec![ParamSet::new()];
        for (name, values) in &self.axes {
            let mut next = Vec::with_capacity(combos.len() * values.len());
            for combo in &combos {
                for v in values {
                    let mut c = combo.clone();
                    c.insert(name.clone(), v.clone());
                    next.push(c);
                }
            }
            combos = next;
        }
        combos
    }
}

/// Result of a grid search: every combination with its CV score.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    /// `(params, cv_result)` per combination, in evaluation order.
    pub evaluations: Vec<(ParamSet, CvResult)>,
}

impl GridSearchResult {
    /// The best `(params, mean_score)` by mean CV score.
    ///
    /// # Panics
    ///
    /// Panics if no combinations were evaluated.
    pub fn best(&self) -> (&ParamSet, f64) {
        self.evaluations
            .iter()
            .map(|(p, r)| (p, r.mean()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("grid search evaluated at least one combination")
    }
}

/// One `(candidate, fold)` work item of a grid search.
struct GridCell {
    candidate: usize,
    fold: usize,
    outcome: Option<Result<Option<f64>, Error>>,
}

/// Exhaustive grid search with cross-validation.
///
/// The Cartesian `candidates × folds` task matrix is evaluated on
/// `n_jobs` worker threads (1 = sequential); every candidate fitting on
/// a given fold shares that fold's presorted training cache.
#[derive(Debug)]
pub struct GridSearch {
    grid: ParamGrid,
    splits: Vec<Split>,
    n_jobs: usize,
}

impl GridSearch {
    /// Creates a sequential grid search over `grid` using precomputed CV
    /// `splits`.
    pub fn new(grid: ParamGrid, splits: Vec<Split>) -> Self {
        GridSearch {
            grid,
            splits,
            n_jobs: 1,
        }
    }

    /// Sets the number of worker threads (clamped to at least 1).
    /// Results are identical for every `n_jobs`.
    pub fn with_n_jobs(mut self, n_jobs: usize) -> Self {
        self.n_jobs = n_jobs.max(1);
        self
    }

    /// Runs the search. `factory` builds a classifier from a parameter
    /// set; `scorer` scores validation predictions.
    ///
    /// # Errors
    ///
    /// Propagates classifier fit errors other than
    /// [`Error::InvalidLabels`] (which marks a degenerate, skipped fold).
    /// When several cells fail, the error of the earliest
    /// `(candidate, fold)` cell is returned, matching what a sequential
    /// scan would have hit first.
    pub fn run<F, S>(
        &self,
        factory: F,
        scorer: S,
        x: &Matrix,
        y: &[u8],
    ) -> Result<GridSearchResult, Error>
    where
        F: Fn(&ParamSet) -> Box<dyn Classifier> + Sync,
        S: Fn(&[u8], &[u8]) -> f64 + Sync,
    {
        let combos = self.grid.iter_combinations();
        let folds = prepare_folds(x, y, &self.splits);
        let n_jobs = self.n_jobs.max(1);
        let run_span = obs::Span::enter("gridsearch.run");
        obs::gauge_set("gridsearch.workers", n_jobs as f64);

        // Candidate-major, fold-minor — the order a sequential scan
        // evaluates in, preserved when stitching results back together.
        let mut cells: Vec<GridCell> = Vec::with_capacity(combos.len() * folds.len());
        for candidate in 0..combos.len() {
            for fold in 0..folds.len() {
                cells.push(GridCell {
                    candidate,
                    fold,
                    outcome: None,
                });
            }
        }

        {
            let combos = &combos;
            let folds = &folds;
            let factory = &factory;
            let scorer = &scorer;
            let busy_us = std::sync::atomic::AtomicU64::new(0);
            let busy = &busy_us;
            // Dynamic scheduling: workers pull cells off a shared queue,
            // so a candidate with expensive hyper-parameters cannot
            // strand its whole chunk on one straggling worker.
            monitorless_std::pool::for_each_item_mut(&mut cells, n_jobs, |_, cell| {
                let started = obs::enabled().then(std::time::Instant::now);
                let clf = factory(&combos[cell.candidate]);
                cell.outcome = Some(evaluate_fold(&folds[cell.fold], clf, scorer));
                if let Some(started) = started {
                    let us = started.elapsed().as_micros() as u64;
                    obs::observe("gridsearch.worker_busy_us", us as f64);
                    busy.fetch_add(us, std::sync::atomic::Ordering::Relaxed);
                }
            });
            if let Some(wall_us) = run_span.elapsed_us() {
                if wall_us > 0.0 {
                    let total_busy = busy_us.load(std::sync::atomic::Ordering::Relaxed) as f64;
                    obs::gauge_set(
                        "gridsearch.worker_utilization",
                        total_busy / (n_jobs as f64 * wall_us),
                    );
                }
            }
        }
        drop(run_span);
        obs::counter_add("gridsearch.candidates_evaluated", combos.len() as u64);
        obs::counter_add("gridsearch.cells_evaluated", cells.len() as u64);

        let mut evaluations = Vec::with_capacity(combos.len());
        let mut cell_iter = cells.into_iter();
        for params in combos {
            let mut fold_scores = Vec::with_capacity(folds.len());
            for _ in 0..folds.len() {
                let cell = cell_iter.next().expect("one cell per candidate × fold");
                match cell.outcome.expect("every cell is evaluated") {
                    Ok(Some(score)) => fold_scores.push(score),
                    Ok(None) => {}
                    Err(e) => return Err(e),
                }
            }
            evaluations.push((params, CvResult { fold_scores }));
        }
        Ok(GridSearchResult { evaluations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTree, DecisionTreeParams};

    #[test]
    fn kfold_partitions_all_samples() {
        let splits = KFold::new(3).split(10).unwrap();
        assert_eq!(splits.len(), 3);
        let mut all: Vec<usize> = splits.iter().flat_map(|(_, v)| v.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        for (train, val) in &splits {
            assert_eq!(train.len() + val.len(), 10);
            assert!(val.iter().all(|i| !train.contains(i)));
        }
    }

    #[test]
    fn kfold_rejects_bad_params() {
        assert!(KFold::new(1).split(10).is_err());
        assert!(KFold::new(5).split(3).is_err());
    }

    #[test]
    fn group_kfold_keeps_groups_intact() {
        let groups = vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4];
        let splits = GroupKFold::new(5).split(&groups).unwrap();
        for (train, val) in &splits {
            let val_groups: Vec<u32> = val.iter().map(|&i| groups[i]).collect();
            for &i in train {
                assert!(!val_groups.contains(&groups[i]));
            }
        }
    }

    #[test]
    fn group_kfold_20_5_shape() {
        // 25 training sets, 5 folds: each fold trains on 20 and
        // validates on 5 — the paper's scheme.
        let groups: Vec<u32> = (0..25).flat_map(|g| vec![g; 4]).collect();
        let splits = GroupKFold::new(5).split(&groups).unwrap();
        for (train, val) in &splits {
            let mut tg: Vec<u32> = train.iter().map(|&i| groups[i]).collect();
            tg.sort_unstable();
            tg.dedup();
            let mut vg: Vec<u32> = val.iter().map(|&i| groups[i]).collect();
            vg.sort_unstable();
            vg.dedup();
            assert_eq!(tg.len(), 20);
            assert_eq!(vg.len(), 5);
        }
    }

    #[test]
    fn group_kfold_rejects_too_few_groups() {
        assert!(GroupKFold::new(5).split(&[0, 0, 1, 1]).is_err());
    }

    #[test]
    fn cross_validate_scores_reasonably() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            rows.push(vec![i as f64]);
            y.push(u8::from(i >= 20));
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let splits = KFold::new(4).split(40).unwrap();
        let cv = cross_validate(
            &x,
            &y,
            &splits,
            || Box::new(DecisionTree::new(DecisionTreeParams::default())),
            crate::metrics::f1_score,
        )
        .unwrap();
        assert!(cv.mean() > 0.8, "mean F1 {}", cv.mean());
        assert!(cv.std() <= 0.5);
    }

    #[test]
    fn param_grid_cartesian_product() {
        let grid = ParamGrid::new()
            .add("a", vec![ParamValue::I(1), ParamValue::I(2)])
            .add(
                "b",
                vec![
                    ParamValue::S("x".into()),
                    ParamValue::S("y".into()),
                    ParamValue::S("z".into()),
                ],
            );
        assert_eq!(grid.len(), 6);
        let combos = grid.iter_combinations();
        assert_eq!(combos.len(), 6);
        assert!(combos
            .iter()
            .any(|c| c["a"].as_usize() == 2 && c["b"].as_str() == "z"));
    }

    #[test]
    fn grid_search_finds_better_depth() {
        // Stripes: depth-1 trees underfit, deeper trees fit.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            rows.push(vec![i as f64]);
            y.push(u8::from((i / 15) % 2 == 1));
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let grid = ParamGrid::new().add("max_depth", vec![ParamValue::I(1), ParamValue::I(6)]);
        let splits = KFold::new(3).split(60).unwrap();
        let gs = GridSearch::new(grid, splits);
        let result = gs
            .run(
                |p| {
                    Box::new(DecisionTree::new(DecisionTreeParams {
                        max_depth: Some(p["max_depth"].as_usize()),
                        ..DecisionTreeParams::default()
                    }))
                },
                crate::metrics::f1_score,
                &x,
                &y,
            )
            .unwrap();
        let (best, score) = result.best();
        assert_eq!(best["max_depth"].as_usize(), 6);
        assert!(score > 0.9);
    }

    #[test]
    fn param_value_accessors() {
        assert_eq!(ParamValue::F(1.5).as_f64(), 1.5);
        assert_eq!(ParamValue::I(3).as_f64(), 3.0);
        assert_eq!(ParamValue::I(3).as_usize(), 3);
        assert_eq!(ParamValue::S("gini".into()).as_str(), "gini");
        assert!(ParamValue::B(true).as_bool());
    }

    #[test]
    #[should_panic(expected = "not numeric")]
    fn param_value_wrong_accessor_panics() {
        let _ = ParamValue::S("x".into()).as_f64();
    }

    #[test]
    fn param_value_fallible_accessors() {
        assert_eq!(ParamValue::F(1.5).try_as_f64(), Some(1.5));
        assert_eq!(ParamValue::S("x".into()).try_as_f64(), None);
        assert_eq!(ParamValue::I(-1).try_as_usize(), None);
        assert_eq!(ParamValue::I(4).try_as_usize(), Some(4));
        assert_eq!(ParamValue::S("gini".into()).try_as_str(), Some("gini"));
        assert_eq!(ParamValue::F(0.0).try_as_str(), None);
        assert_eq!(ParamValue::B(false).try_as_bool(), Some(false));
        assert_eq!(ParamValue::I(1).try_as_bool(), None);
    }

    #[test]
    fn cv_result_stats() {
        let cv = CvResult {
            fold_scores: vec![0.8, 1.0],
        };
        assert!((cv.mean() - 0.9).abs() < 1e-12);
        assert!((cv.std() - 0.1).abs() < 1e-12);
        let empty = CvResult {
            fold_scores: vec![],
        };
        assert_eq!(empty.mean(), 0.0);
    }
}
