//! From-scratch machine-learning library for the *monitorless* reproduction.
//!
//! The Middleware '19 paper trains and compares six binary classifiers
//! (Table 2/3): logistic regression (SAG), a linear support-vector
//! classifier, AdaBoost over decision trees, gradient boosting
//! (XGBoost-style second-order), a three-layer neural network and a random
//! forest. This crate implements all of them natively in Rust, together
//! with the preprocessing (scalers, PCA), model selection (k-fold /
//! group-aware cross-validation, grid search) and evaluation machinery
//! (confusion matrices, F1/accuracy and the paper's *lagged* `F1_k` /
//! `Acc_k` variants).
//!
//! # Quick example
//!
//! ```
//! use monitorless_learn::prelude::*;
//!
//! # fn main() -> Result<(), monitorless_learn::Error> {
//! // A toy dataset: one informative feature.
//! let x = Matrix::from_rows(&[
//!     &[0.1, 5.0], &[0.2, 4.0], &[0.3, 6.0], &[0.9, 5.5], &[0.8, 4.5], &[0.95, 5.0],
//! ]);
//! let y = vec![0, 0, 0, 1, 1, 1];
//!
//! let mut forest = RandomForest::new(RandomForestParams {
//!     n_estimators: 10,
//!     ..RandomForestParams::default()
//! });
//! forest.fit(&x, &y, None)?;
//! let proba = forest.predict_proba(&x);
//! assert!(proba[0] < 0.5 && proba[5] > 0.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaboost;
pub mod dataset;
pub mod flat;
pub mod forest;
pub mod gboost;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod model_selection;
pub mod nn;
pub mod pca;
pub mod presort;
pub mod scaler;
pub mod tree;

mod error;

pub use error::Error;

pub use adaboost::{AdaBoost, AdaBoostParams, BoostAlgorithm};
pub use dataset::Dataset;
pub use flat::{top_k_contributions, Finalize, FlatBuilder, FlatEnsemble};
pub use forest::{ClassWeight, RandomForest, RandomForestParams};
pub use gboost::{GradientBoosting, GradientBoostingParams};
pub use linear::{
    LinearSvc, LinearSvcParams, LogisticRegression, LogisticRegressionParams, Penalty,
};
pub use matrix::{ColumnsView, Matrix, MatrixBuilder};
pub use metrics::{accuracy, f1_score, lagged_confusion, ConfusionMatrix};
pub use model_selection::{
    cross_validate, cross_validate_parallel, GridSearch, GroupKFold, KFold, ParamGrid, ParamValue,
};
pub use nn::{Activation, NeuralNet, NeuralNetParams};
pub use pca::Pca;
pub use presort::{FitCache, PresortedDataset};
pub use scaler::{MinMaxScaler, StandardScaler, Transformer};
pub use tree::{DecisionTree, DecisionTreeParams, SplitCriterion, Splitter};

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::adaboost::{AdaBoost, AdaBoostParams, BoostAlgorithm};
    pub use crate::dataset::Dataset;
    pub use crate::flat::{Finalize, FlatBuilder, FlatEnsemble};
    pub use crate::forest::{ClassWeight, RandomForest, RandomForestParams};
    pub use crate::gboost::{GradientBoosting, GradientBoostingParams};
    pub use crate::linear::{
        LinearSvc, LinearSvcParams, LogisticRegression, LogisticRegressionParams, Penalty,
    };
    pub use crate::matrix::{Matrix, MatrixBuilder};
    pub use crate::metrics::{accuracy, f1_score, lagged_confusion, ConfusionMatrix};
    pub use crate::model_selection::{
        cross_validate, cross_validate_parallel, GridSearch, GroupKFold, KFold, ParamGrid,
        ParamValue,
    };
    pub use crate::nn::{Activation, NeuralNet, NeuralNetParams};
    pub use crate::pca::Pca;
    pub use crate::presort::{FitCache, PresortedDataset};
    pub use crate::scaler::{MinMaxScaler, StandardScaler, Transformer};
    pub use crate::tree::{DecisionTree, DecisionTreeParams, SplitCriterion, Splitter};
    pub use crate::Classifier;
}

/// A trained (or trainable) binary classifier.
///
/// Labels are `0` (negative / not saturated) and `1` (positive /
/// saturated). Probabilities returned by [`Classifier::predict_proba`] are
/// the probability of the positive class.
///
/// The trait is object-safe so heterogeneous collections of classifiers
/// (e.g. the Table 3 comparison harness) can store `Box<dyn Classifier>`.
pub trait Classifier: std::fmt::Debug + Send {
    /// Fit the classifier on feature matrix `x` and labels `y`.
    ///
    /// `sample_weight`, when provided, must have one entry per row of `x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyInput`] for empty inputs,
    /// [`Error::DimensionMismatch`] if `y` (or the weights) do not match the
    /// number of rows in `x`, and [`Error::InvalidLabels`] if `y` contains a
    /// label other than `0`/`1` or only a single class.
    fn fit(&mut self, x: &Matrix, y: &[u8], sample_weight: Option<&[f64]>) -> Result<(), Error>;

    /// Fit using a shared per-dataset [`FitCache`].
    ///
    /// Tree-family classifiers override this to reuse the cache's
    /// presorted view of `x`, so repeated fits on the same matrix
    /// (grid-search candidates on a fold, the Table 3 comparison) pay
    /// the per-feature sort once. The cache is lazy: classifiers that
    /// do not need it never trigger the build. Results are identical to
    /// [`Classifier::fit`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Classifier::fit`].
    fn fit_cached(
        &mut self,
        x: &Matrix,
        cache: &FitCache,
        y: &[u8],
        sample_weight: Option<&[f64]>,
    ) -> Result<(), Error> {
        let _ = cache;
        self.fit(x, y, sample_weight)
    }

    /// Probability of the positive class for each row of `x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the classifier has not been fitted or
    /// if `x` has a different number of columns than the training matrix.
    fn predict_proba(&self, x: &Matrix) -> Vec<f64>;

    /// Hard 0/1 predictions using decision threshold 0.5.
    fn predict(&self, x: &Matrix) -> Vec<u8> {
        self.predict_with_threshold(x, 0.5)
    }

    /// Hard 0/1 predictions using the given decision `threshold`.
    ///
    /// The paper sets the monitorless random-forest threshold to 0.4 to be
    /// conservative about false negatives (Section 4).
    fn predict_with_threshold(&self, x: &Matrix, threshold: f64) -> Vec<u8> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| u8::from(p >= threshold))
            .collect()
    }

    /// Short human-readable name of the algorithm (used in reports).
    fn name(&self) -> &'static str;
}

/// Validates the common `fit` preconditions shared by all classifiers.
pub(crate) fn validate_fit_input(
    x: &Matrix,
    y: &[u8],
    sample_weight: Option<&[f64]>,
) -> Result<(), Error> {
    validate_fit_parts(x.rows(), x.cols(), y, sample_weight)
}

/// Shape-based variant of [`validate_fit_input`] for fit paths that see
/// a presorted view (or a bootstrap sample of one) instead of a
/// [`Matrix`]. Checks run in the same order so both paths return the
/// same error for the same bad input.
pub(crate) fn validate_fit_parts(
    rows: usize,
    cols: usize,
    y: &[u8],
    sample_weight: Option<&[f64]>,
) -> Result<(), Error> {
    if rows == 0 || cols == 0 {
        return Err(Error::EmptyInput);
    }
    if y.len() != rows {
        return Err(Error::DimensionMismatch {
            expected: rows,
            got: y.len(),
        });
    }
    if let Some(w) = sample_weight {
        if w.len() != rows {
            return Err(Error::DimensionMismatch {
                expected: rows,
                got: w.len(),
            });
        }
        if w.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(Error::InvalidParameter(
                "sample weights must be finite and non-negative".into(),
            ));
        }
    }
    if y.iter().any(|&l| l > 1) {
        return Err(Error::InvalidLabels);
    }
    let n_pos = y.iter().filter(|&&l| l == 1).count();
    if n_pos == 0 || n_pos == y.len() {
        return Err(Error::InvalidLabels);
    }
    Ok(())
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn classifier_is_object_safe() {
        fn _takes(_c: &dyn Classifier) {}
    }

    #[test]
    fn validate_rejects_empty() {
        let x = Matrix::zeros(0, 0);
        assert!(matches!(validate_fit_input(&x, &[], None), Err(Error::EmptyInput)));
    }

    #[test]
    fn validate_rejects_mismatched_labels() {
        let x = Matrix::zeros(3, 2);
        assert!(matches!(
            validate_fit_input(&x, &[0, 1], None),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_single_class() {
        let x = Matrix::zeros(3, 2);
        assert!(matches!(validate_fit_input(&x, &[1, 1, 1], None), Err(Error::InvalidLabels)));
    }

    #[test]
    fn validate_rejects_bad_weights() {
        let x = Matrix::zeros(2, 1);
        let res = validate_fit_input(&x, &[0, 1], Some(&[1.0, -2.0]));
        assert!(matches!(res, Err(Error::InvalidParameter(_))));
    }

    #[test]
    fn validate_accepts_good_input() {
        let x = Matrix::zeros(2, 1);
        assert!(validate_fit_input(&x, &[0, 1], Some(&[1.0, 2.0])).is_ok());
    }
}
