//! Principal component analysis via a cyclic Jacobi eigensolver.
//!
//! The paper uses PCA as an alternative first/second reduction step in the
//! feature pipeline (Section 3.3.4), reducing to 50 components that
//! account for 99.99% of variance. Components here are eigenvectors of
//! the sample covariance matrix, sorted by descending eigenvalue.

use crate::{Error, Matrix};

/// How many components to keep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComponentSelection {
    /// A fixed number of components (clamped to the feature count).
    Count(usize),
    /// The smallest number of components whose cumulative explained
    /// variance ratio reaches the given fraction in `(0, 1]`.
    VarianceFraction(f64),
}

/// PCA transformer.
///
/// ```
/// use monitorless_learn::{Matrix, Pca};
/// use monitorless_learn::pca::ComponentSelection;
///
/// # fn main() -> Result<(), monitorless_learn::Error> {
/// // Points on a line: one component explains everything.
/// let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
/// let mut pca = Pca::new(ComponentSelection::VarianceFraction(0.99));
/// pca.fit(&x)?;
/// assert_eq!(pca.n_components(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    selection: ComponentSelection,
    mean: Vec<f64>,
    /// components[k] is the k-th eigenvector (length = n_features).
    components: Vec<Vec<f64>>,
    explained_variance: Vec<f64>,
    total_variance: f64,
}

impl Pca {
    /// Creates an unfitted PCA with the given component selection rule.
    pub fn new(selection: ComponentSelection) -> Self {
        Pca {
            selection,
            mean: Vec::new(),
            components: Vec::new(),
            explained_variance: Vec::new(),
            total_variance: 0.0,
        }
    }

    /// Number of retained components (0 before fitting).
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Per-component explained variance ratios (descending).
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        if self.total_variance <= 0.0 {
            return vec![0.0; self.explained_variance.len()];
        }
        self.explained_variance
            .iter()
            .map(|v| v / self.total_variance)
            .collect()
    }

    /// Fits on `x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyInput`] for an empty matrix,
    /// [`Error::InvalidParameter`] for an out-of-range variance fraction,
    /// and [`Error::NoConvergence`] if the Jacobi sweeps fail to converge
    /// (practically impossible for symmetric input).
    pub fn fit(&mut self, x: &Matrix) -> Result<(), Error> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(Error::EmptyInput);
        }
        if let ComponentSelection::VarianceFraction(f) = self.selection {
            if !(f > 0.0 && f <= 1.0) {
                return Err(Error::InvalidParameter("variance fraction must be in (0, 1]".into()));
            }
        }
        let d = x.cols();
        self.mean = x.column_means();

        // Sample covariance (divide by n; population convention is fine for
        // component directions).
        let n = x.rows() as f64;
        let mut cov = vec![0.0; d * d];
        for row in x.iter_rows() {
            for i in 0..d {
                let di = row[i] - self.mean[i];
                for j in i..d {
                    cov[i * d + j] += di * (row[j] - self.mean[j]);
                }
            }
        }
        for i in 0..d {
            for j in i..d {
                cov[i * d + j] /= n;
                cov[j * d + i] = cov[i * d + j];
            }
        }

        // Small matrices: exact Jacobi. Large matrices: power iteration
        // with deflation extracts only the leading components — O(k·d²)
        // instead of O(d³) per sweep, which matters for the 1000+-feature
        // platform-metric space.
        if d <= JACOBI_LIMIT {
            let (eigenvalues, eigenvectors) = jacobi_eigen(&mut cov, d)?;
            let mut order: Vec<usize> = (0..d).collect();
            order.sort_by(|&a, &b| eigenvalues[b].total_cmp(&eigenvalues[a]));

            self.total_variance = eigenvalues.iter().map(|v| v.max(0.0)).sum();
            let keep = match self.selection {
                ComponentSelection::Count(k) => k.min(d),
                ComponentSelection::VarianceFraction(f) => {
                    let mut acc = 0.0;
                    let mut k = 0;
                    for &idx in &order {
                        acc += eigenvalues[idx].max(0.0);
                        k += 1;
                        if self.total_variance == 0.0 || acc / self.total_variance >= f {
                            break;
                        }
                    }
                    k
                }
            };
            self.components = order
                .iter()
                .take(keep)
                .map(|&idx| (0..d).map(|r| eigenvectors[r * d + idx]).collect())
                .collect();
            self.explained_variance = order
                .iter()
                .take(keep)
                .map(|&idx| eigenvalues[idx].max(0.0))
                .collect();
        } else {
            self.total_variance = (0..d).map(|i| cov[i * d + i].max(0.0)).sum();
            let k_max = match self.selection {
                ComponentSelection::Count(k) => k.min(d),
                // Unbounded variance targets still need a ceiling on the
                // large-matrix path; 256 components of a 1000+-feature
                // space is far beyond any practical pipeline setting.
                ComponentSelection::VarianceFraction(_) => JACOBI_LIMIT.min(d),
            };
            let target = match self.selection {
                ComponentSelection::VarianceFraction(f) => Some(f),
                ComponentSelection::Count(_) => None,
            };
            let (values, vectors) = power_iteration_eigen(&mut cov, d, k_max)?;
            let mut acc = 0.0;
            self.components = Vec::new();
            self.explained_variance = Vec::new();
            for (value, vector) in values.into_iter().zip(vectors) {
                if value <= 0.0 {
                    break;
                }
                acc += value;
                self.components.push(vector);
                self.explained_variance.push(value);
                if let Some(f) = target {
                    if self.total_variance == 0.0 || acc / self.total_variance >= f {
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Keeps only the first `k` components (no-op if `k` is not smaller
    /// than the current count). Useful to trim a `Count`-fitted PCA down
    /// to a variance target without re-fitting.
    pub fn truncate(&mut self, k: usize) {
        if k < self.components.len() {
            self.components.truncate(k);
            self.explained_variance.truncate(k);
        }
    }

    /// Projects `x` onto the retained components.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`, or
    /// [`Error::DimensionMismatch`] on a column-count mismatch.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix, Error> {
        if self.components.is_empty() {
            return Err(Error::NotFitted);
        }
        if x.cols() != self.mean.len() {
            return Err(Error::DimensionMismatch {
                expected: self.mean.len(),
                got: x.cols(),
            });
        }
        let mut out = Matrix::zeros(x.rows(), self.components.len());
        for (r, row) in x.iter_rows().enumerate() {
            for (k, comp) in self.components.iter().enumerate() {
                let mut acc = 0.0;
                for ((v, m), c) in row.iter().zip(&self.mean).zip(comp) {
                    acc += (v - m) * c;
                }
                out.set(r, k, acc);
            }
        }
        Ok(out)
    }

    /// Projects a single row onto the retained components, writing into
    /// `out` (cleared first) — bit-identical to [`Pca::transform`] on a
    /// 1-row matrix (same left-to-right dot-product accumulation), but
    /// without allocating the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFitted`] before `fit`, or
    /// [`Error::DimensionMismatch`] on a length mismatch.
    pub fn transform_row_into(&self, row: &[f64], out: &mut Vec<f64>) -> Result<(), Error> {
        if self.components.is_empty() {
            return Err(Error::NotFitted);
        }
        if row.len() != self.mean.len() {
            return Err(Error::DimensionMismatch {
                expected: self.mean.len(),
                got: row.len(),
            });
        }
        out.clear();
        out.reserve(self.components.len());
        for comp in &self.components {
            let mut acc = 0.0;
            for ((v, m), c) in row.iter().zip(&self.mean).zip(comp) {
                acc += (v - m) * c;
            }
            out.push(acc);
        }
        Ok(())
    }

    /// `fit` followed by `transform` on the same data.
    ///
    /// # Errors
    ///
    /// Propagates errors from either step.
    pub fn fit_transform(&mut self, x: &Matrix) -> Result<Matrix, Error> {
        self.fit(x)?;
        self.transform(x)
    }
}

/// Dimension above which the exact Jacobi solver is replaced by power
/// iteration with deflation.
const JACOBI_LIMIT: usize = 256;

/// Power iteration with deflation: extracts the leading `k` eigenpairs of
/// the symmetric matrix `a` (destroyed), largest eigenvalue first.
fn power_iteration_eigen(
    a: &mut [f64],
    d: usize,
    k: usize,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), Error> {
    let mut values = Vec::with_capacity(k);
    let mut vectors: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut v = vec![0.0; d];
    let mut next = vec![0.0; d];
    for comp in 0..k {
        // Deterministic pseudo-random start, orthogonalized against
        // previously extracted components.
        for (i, vi) in v.iter_mut().enumerate() {
            let z = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(comp as u64 + 1);
            *vi = ((z ^ (z >> 31)) % 1000) as f64 / 1000.0 + 0.001;
        }
        normalize(&mut v);
        let mut eigenvalue = 0.0;
        for _iter in 0..300 {
            // next = A v
            for (r, nr) in next.iter_mut().enumerate() {
                let row = &a[r * d..(r + 1) * d];
                *nr = row.iter().zip(&v).map(|(x, y)| x * y).sum();
            }
            // Re-orthogonalize against extracted components: deflation
            // residue otherwise accumulates when eigenvalues are close.
            for prev in &vectors {
                let dot: f64 = next.iter().zip(prev).map(|(a, b)| a * b).sum();
                for (n, p) in next.iter_mut().zip(prev) {
                    *n -= dot * p;
                }
            }
            let norm = normalize(&mut next);
            let delta: f64 = next
                .iter()
                .zip(&v)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            std::mem::swap(&mut v, &mut next);
            eigenvalue = norm;
            if delta < 1e-10 {
                break;
            }
        }
        if eigenvalue <= 1e-12 {
            break;
        }
        // Deflate: A ← A − λ v vᵀ.
        for r in 0..d {
            for c in 0..d {
                a[r * d + c] -= eigenvalue * v[r] * v[c];
            }
        }
        values.push(eigenvalue);
        vectors.push(v.clone());
    }
    if values.is_empty() {
        return Err(Error::NoConvergence("power iteration found no positive eigenvalues".into()));
    }
    Ok((values, vectors))
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix stored row-major
/// in `a` (destroyed). Returns `(eigenvalues, eigenvectors)` with
/// eigenvectors stored column-wise in a row-major `d*d` buffer.
fn jacobi_eigen(a: &mut [f64], d: usize) -> Result<(Vec<f64>, Vec<f64>), Error> {
    let mut v = vec![0.0; d * d];
    for i in 0..d {
        v[i * d + i] = 1.0;
    }
    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..d {
            for j in i + 1..d {
                off += a[i * d + j] * a[i * d + j];
            }
        }
        if off.sqrt() < 1e-12 {
            let eig = (0..d).map(|i| a[i * d + i]).collect();
            return Ok((eig, v));
        }
        for p in 0..d {
            for q in p + 1..d {
                let apq = a[p * d + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[p * d + p];
                let aqq = a[q * d + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation to rows/columns p and q.
                for k in 0..d {
                    let akp = a[k * d + p];
                    let akq = a[k * d + q];
                    a[k * d + p] = c * akp - s * akq;
                    a[k * d + q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let apk = a[p * d + k];
                    let aqk = a[q * d + k];
                    a[p * d + k] = c * apk - s * aqk;
                    a[q * d + k] = s * apk + c * aqk;
                }
                for k in 0..d {
                    let vkp = v[k * d + p];
                    let vkq = v[k * d + q];
                    v[k * d + p] = c * vkp - s * vkq;
                    v[k * d + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(Error::NoConvergence("jacobi eigensolver exceeded sweep limit".into()))
}

monitorless_std::json_struct!(Pca {
    selection,
    mean,
    components,
    explained_variance,
    total_variance,
});

// `ComponentSelection` variants carry data, so they keep the externally
// tagged encoding by hand.
impl monitorless_std::json::ToJson for ComponentSelection {
    fn to_json(&self) -> monitorless_std::json::Json {
        use monitorless_std::json::Json;
        match self {
            ComponentSelection::Count(n) => Json::Obj(vec![("Count".into(), n.to_json())]),
            ComponentSelection::VarianceFraction(f) => {
                Json::Obj(vec![("VarianceFraction".into(), f.to_json())])
            }
        }
    }
}

impl monitorless_std::json::FromJson for ComponentSelection {
    fn from_json(
        json: &monitorless_std::json::Json,
    ) -> Result<Self, monitorless_std::json::JsonError> {
        use monitorless_std::json::{field, Json, JsonError};
        match json {
            Json::Obj(members) => match members.first().map(|(k, _)| k.as_str()) {
                Some("Count") => Ok(ComponentSelection::Count(field(json, "Count")?)),
                Some("VarianceFraction") => {
                    Ok(ComponentSelection::VarianceFraction(field(json, "VarianceFraction")?))
                }
                _ => Err(JsonError("unknown ComponentSelection variant".into())),
            },
            _ => Err(JsonError("expected ComponentSelection".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_covariance_recovers_axes() {
        // Variance 4 along x, 1 along y.
        let mut rows = Vec::new();
        for i in 0..20 {
            let t = (i as f64 - 9.5) / 10.0;
            rows.push(vec![2.0 * t, 0.5 * t * if i % 2 == 0 { 1.0 } else { -1.0 }]);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut pca = Pca::new(ComponentSelection::Count(2));
        pca.fit(&x).unwrap();
        let ratios = pca.explained_variance_ratio();
        assert!(ratios[0] > ratios[1]);
        assert!((ratios.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // First component is (±1, ~0).
        let c0 = &pca.transform(&Matrix::from_rows(&[&[1.0, 0.0]])).unwrap();
        assert!(c0.get(0, 0).abs() > 0.9);
    }

    #[test]
    fn variance_fraction_selects_minimal_components() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let mut pca = Pca::new(ComponentSelection::VarianceFraction(0.9999));
        pca.fit(&x).unwrap();
        assert_eq!(pca.n_components(), 1);
    }

    #[test]
    fn transform_projects_to_component_space() {
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let mut pca = Pca::new(ComponentSelection::Count(1));
        let t = pca.fit_transform(&x).unwrap();
        assert_eq!(t.cols(), 1);
        // Projections along the diagonal are equally spaced.
        let diff1 = t.get(1, 0) - t.get(0, 0);
        let diff2 = t.get(2, 0) - t.get(1, 0);
        assert!((diff1 - diff2).abs() < 1e-9);
    }

    #[test]
    fn count_clamped_to_feature_count() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let mut pca = Pca::new(ComponentSelection::Count(10));
        pca.fit(&x).unwrap();
        assert_eq!(pca.n_components(), 1);
    }

    #[test]
    fn errors_on_misuse() {
        let pca = Pca::new(ComponentSelection::Count(1));
        assert!(matches!(pca.transform(&Matrix::zeros(1, 1)), Err(Error::NotFitted)));
        let mut pca = Pca::new(ComponentSelection::VarianceFraction(2.0));
        assert!(pca.fit(&Matrix::zeros(2, 2)).is_err());
        let mut pca = Pca::new(ComponentSelection::Count(1));
        assert!(matches!(pca.fit(&Matrix::zeros(0, 0)), Err(Error::EmptyInput)));
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rows = Vec::new();
        for i in 0..30 {
            let t = i as f64;
            rows.push(vec![t.sin(), (t * 0.7).cos(), t * 0.1, (t * 0.3).sin()]);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut pca = Pca::new(ComponentSelection::Count(4));
        pca.fit(&x).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = pca.components[i]
                    .iter()
                    .zip(&pca.components[j])
                    .map(|(a, b)| a * b)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-8, "dot({i},{j}) = {dot}");
            }
        }
    }

    #[test]
    fn large_matrix_uses_power_iteration_and_agrees_with_jacobi() {
        // Build a 300-feature dataset whose variance lives in a few
        // directions; compare the large-path projections' explained
        // variance against the small-path result on the same data.
        let d = 300;
        let n = 80;
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 / n as f64;
            let mut row = vec![0.0; d];
            for (j, v) in row.iter_mut().enumerate() {
                *v = match j % 3 {
                    0 => 10.0 * t,
                    1 => 5.0 * (1.0 - t),
                    _ => 0.01 * ((i * j) % 7) as f64,
                };
            }
            rows.push(row);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut pca = Pca::new(ComponentSelection::Count(3));
        pca.fit(&x).unwrap();
        assert!(pca.n_components() >= 1);
        let ratios = pca.explained_variance_ratio();
        // The two structured directions carry nearly all variance.
        assert!(ratios[0] > 0.5, "ratios {ratios:?}");
        let total: f64 = ratios.iter().sum();
        assert!(total > 0.95, "total explained {total}");
        // Projections reconstruct most of the data's variance.
        let t = pca.transform(&x).unwrap();
        assert_eq!(t.cols(), pca.n_components());
    }

    #[test]
    fn power_iteration_components_are_orthonormal() {
        let d = 280;
        let mut rows = Vec::new();
        for i in 0..60 {
            let mut row = vec![0.0; d];
            for (j, v) in row.iter_mut().enumerate() {
                *v = ((i * (j + 1)) % 17) as f64 + if j % 5 == 0 { i as f64 } else { 0.0 };
            }
            rows.push(row);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut pca = Pca::new(ComponentSelection::Count(4));
        pca.fit(&x).unwrap();
        for i in 0..pca.n_components() {
            for j in 0..pca.n_components() {
                let dot: f64 = pca.components[i]
                    .iter()
                    .zip(&pca.components[j])
                    .map(|(a, b)| a * b)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-6, "dot({i},{j}) = {dot}");
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 0.5], &[1.0, 3.0]]);
        let mut pca = Pca::new(ComponentSelection::Count(2));
        pca.fit(&x).unwrap();
        let back: Pca =
            monitorless_std::json::from_str(&monitorless_std::json::to_string(&pca)).unwrap();
        assert_eq!(back.transform(&x).unwrap().as_slice(), pca.transform(&x).unwrap().as_slice());
    }
}
