//! Property-based tests for the core learning data structures and
//! invariants.

use monitorless_learn::metrics::{lagged_confusion, ConfusionMatrix};
use monitorless_learn::prelude::*;
use proptest::prelude::*;

fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-1e6_f64..1e6, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn transpose_is_an_involution(m in matrix_strategy(8, 8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_with_identity_is_identity(m in matrix_strategy(6, 6)) {
        let mut id = Matrix::zeros(m.cols(), m.cols());
        for i in 0..m.cols() {
            id.set(i, i, 1.0);
        }
        prop_assert_eq!(m.matmul(&id), m);
    }

    #[test]
    fn hstack_then_select_recovers_left(m in matrix_strategy(5, 5)) {
        let stacked = m.hstack(&m);
        let left: Vec<usize> = (0..m.cols()).collect();
        prop_assert_eq!(stacked.select_columns(&left), m);
    }

    #[test]
    fn column_min_max_bound_all_values(m in matrix_strategy(8, 5)) {
        let (mins, maxs) = m.column_min_max();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                prop_assert!(m.get(r, c) >= mins[c]);
                prop_assert!(m.get(r, c) <= maxs[c]);
            }
        }
    }

    #[test]
    fn minmax_scaler_output_is_in_unit_interval(m in matrix_strategy(10, 4)) {
        let mut scaler = MinMaxScaler::new();
        let t = scaler.fit_transform(&m).unwrap();
        for v in t.as_slice() {
            prop_assert!((0.0..=1.0).contains(v), "value {v}");
        }
    }

    #[test]
    fn standard_scaler_centers_columns(m in matrix_strategy(10, 4)) {
        let mut scaler = StandardScaler::new();
        let t = scaler.fit_transform(&m).unwrap();
        for mean in t.column_means() {
            prop_assert!(mean.abs() < 1e-6, "mean {mean}");
        }
    }

    #[test]
    fn confusion_matrix_scores_are_bounded(
        yt in proptest::collection::vec(0u8..=1, 1..100),
        seed in 0u64..1000,
    ) {
        // Random predictions of the same length.
        let yp: Vec<u8> = yt.iter().enumerate()
            .map(|(i, _)| (seed as usize + i * 7).is_multiple_of(3) as u8)
            .collect();
        let cm = ConfusionMatrix::from_predictions(&yt, &yp);
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!((0.0..=1.0).contains(&cm.f1()));
        prop_assert_eq!(cm.total(), yt.len());
    }

    #[test]
    fn lagged_scores_never_decrease_with_k(
        yt in proptest::collection::vec(0u8..=1, 2..80),
        seed in 0u64..1000,
    ) {
        let yp: Vec<u8> = yt.iter().enumerate()
            .map(|(i, _)| (seed as usize).wrapping_mul(31).wrapping_add(i * 13).is_multiple_of(4) as u8)
            .collect();
        // Forgiving more (larger k) can only move FP→TN and FN→TP.
        let mut last_f1 = -1.0;
        for k in 0..4 {
            let cm = lagged_confusion(&yt, &yp, k);
            prop_assert!(cm.f1() + 1e-12 >= last_f1, "k={k}");
            last_f1 = cm.f1();
        }
    }

    #[test]
    fn forest_probabilities_stay_in_unit_interval(
        seed in 0u64..50,
        n in 10usize..40,
    ) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let v = (i as f64 + seed as f64 * 0.1) % 10.0;
            rows.push(vec![v, 10.0 - v]);
            y.push(u8::from(i % 2 == 0));
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 5,
            seed,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y, None).unwrap();
        for p in rf.predict_proba(&x) {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn tree_training_is_deterministic(seed in 0u64..100) {
        let x = Matrix::from_rows(&[
            &[0.0, 3.0], &[1.0, 2.0], &[2.0, 1.0], &[3.0, 0.0],
            &[4.0, 3.0], &[5.0, 2.0], &[6.0, 1.0], &[7.0, 0.0],
        ]);
        let y = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let train = |s| {
            let mut t = DecisionTree::new(DecisionTreeParams {
                seed: s,
                ..DecisionTreeParams::default()
            });
            t.fit(&x, &y, None).unwrap();
            t.predict_proba(&x)
        };
        prop_assert_eq!(train(seed), train(seed));
    }

    #[test]
    fn kfold_covers_every_index_exactly_once(
        n in 4usize..50,
        k in 2usize..5,
    ) {
        prop_assume!(n >= k);
        let splits = KFold::new(k).split(n).unwrap();
        let mut seen = vec![0usize; n];
        for (_, val) in &splits {
            for &i in val {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }
}
