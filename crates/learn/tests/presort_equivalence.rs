//! Property tests pinning the presorted tree builder to the legacy
//! per-node resorting builder, and parallel model selection to its
//! sequential counterpart.
//!
//! The presorted path is an *exact* reimplementation: for every input —
//! duplicate values, constant columns, NaN cells, arbitrary sample
//! weights, feature subsampling, the random splitter — the serialized
//! trees must be bit-for-bit identical, and parallel CV / grid search
//! must produce exactly the scores of the sequential scan.

use monitorless_learn::prelude::*;
use monitorless_learn::tree::MaxFeatures;
use proptest::prelude::*;

/// SplitMix64 — a tiny deterministic generator so each proptest case can
/// expand one seed into a full messy dataset.
struct Mix(u64);

impl Mix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A matrix deliberately full of the cases that break naive split code:
/// heavy duplicate values (small palette), constant columns, and —
/// when `allow_nan` — NaN cells.
fn messy_matrix(seed: u64, rows: usize, cols: usize, allow_nan: bool) -> Matrix {
    let mut rng = Mix(seed);
    let palette = [-3.0, 0.0, 0.5, 1.0, 2.5];
    let mut data = vec![0.0; rows * cols];
    for c in 0..cols {
        // Roughly one column in four is constant.
        let constant = rng.below(4) == 0;
        let fill = palette[rng.below(palette.len() as u64) as usize];
        for r in 0..rows {
            data[r * cols + c] = if constant {
                fill
            } else if allow_nan && rng.below(10) == 0 {
                f64::NAN
            } else if rng.below(2) == 0 {
                palette[rng.below(palette.len() as u64) as usize]
            } else {
                rng.next_f64() * 20.0 - 10.0
            };
        }
    }
    Matrix::from_vec(rows, cols, data)
}

/// Random binary labels with both classes guaranteed present.
fn messy_labels(seed: u64, rows: usize) -> Vec<u8> {
    let mut rng = Mix(seed ^ 0xA5A5);
    let mut y: Vec<u8> = (0..rows).map(|_| rng.below(2) as u8).collect();
    y[0] = 0;
    y[rows - 1] = 1;
    y
}

/// Positive finite sample weights, including exact duplicates.
fn messy_weights(seed: u64, rows: usize) -> Vec<f64> {
    let mut rng = Mix(seed ^ 0x5A5A);
    (0..rows)
        .map(|_| {
            if rng.below(3) == 0 {
                1.0
            } else {
                0.25 + rng.next_f64() * 2.0
            }
        })
        .collect()
}

fn tree_params(seed: u64) -> DecisionTreeParams {
    let mut rng = Mix(seed ^ 0xC3C3);
    DecisionTreeParams {
        criterion: if rng.below(2) == 0 {
            SplitCriterion::Gini
        } else {
            SplitCriterion::Entropy
        },
        splitter: Splitter::Best,
        max_depth: if rng.below(2) == 0 {
            None
        } else {
            Some(2 + rng.below(4) as usize)
        },
        min_samples_split: 2 + rng.below(4) as usize,
        min_samples_leaf: 1 + rng.below(3) as usize,
        max_features: match rng.below(3) {
            0 => MaxFeatures::All,
            1 => MaxFeatures::Sqrt,
            _ => MaxFeatures::Log2,
        },
        seed,
    }
}

/// Fits one tree through the presorted path and one through the legacy
/// resorting path and asserts the serialized models are identical.
fn assert_tree_paths_agree(
    x: &Matrix,
    y: &[u8],
    w: Option<&[f64]>,
    params: &DecisionTreeParams,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut presorted = DecisionTree::new(params.clone());
    let mut legacy = DecisionTree::new(params.clone());
    let a = presorted.fit(x, y, w);
    let b = legacy.fit_resorting(x, y, w);
    prop_assert_eq!(a.is_ok(), b.is_ok(), "fit outcomes diverge");
    if a.is_ok() {
        prop_assert_eq!(
            monitorless_std::json::to_string(&presorted),
            monitorless_std::json::to_string(&legacy),
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn presorted_tree_matches_resorting_builder(
        seed in 0u64..1_000_000,
        // Past 64 rows the root node leaves the packed-key sort path, so
        // the grouped-histogram sweep and both histogram sort strategies
        // get covered too.
        rows in 8usize..200,
        cols in 1usize..7,
    ) {
        let x = messy_matrix(seed, rows, cols, true);
        let y = messy_labels(seed, rows);
        assert_tree_paths_agree(&x, &y, None, &tree_params(seed))?;
    }

    #[test]
    fn presorted_tree_matches_resorting_builder_weighted(
        seed in 0u64..1_000_000,
        rows in 8usize..200,
        cols in 1usize..7,
    ) {
        let x = messy_matrix(seed, rows, cols, true);
        let y = messy_labels(seed, rows);
        let w = messy_weights(seed, rows);
        assert_tree_paths_agree(&x, &y, Some(&w), &tree_params(seed))?;
    }

    #[test]
    fn presorted_random_splitter_matches_resorting_builder(
        seed in 0u64..1_000_000,
        rows in 8usize..40,
        cols in 1usize..6,
    ) {
        // The random splitter draws a threshold uniformly between the
        // node's min and max feature value, which is undefined with NaN
        // cells — keep this case NaN-free.
        let x = messy_matrix(seed, rows, cols, false);
        let y = messy_labels(seed, rows);
        let params = DecisionTreeParams {
            splitter: Splitter::Random,
            ..tree_params(seed)
        };
        assert_tree_paths_agree(&x, &y, None, &params)?;
    }

    #[test]
    fn shared_presort_cache_does_not_change_trees(
        seed in 0u64..1_000_000,
        rows in 8usize..40,
        cols in 1usize..6,
    ) {
        let x = messy_matrix(seed, rows, cols, true);
        let y = messy_labels(seed, rows);
        let params = tree_params(seed);

        let mut fresh = DecisionTree::new(params.clone());
        fresh.fit(&x, &y, None).unwrap();

        // Two classifiers fitting through one cache: the second hit
        // reuses the first build and must still produce the same model.
        let cache = FitCache::new();
        let mut first = DecisionTree::new(params.clone());
        first.fit_cached(&x, &cache, &y, None).unwrap();
        let mut second = DecisionTree::new(params);
        second.fit_cached(&x, &cache, &y, None).unwrap();

        let want = monitorless_std::json::to_string(&fresh);
        prop_assert_eq!(monitorless_std::json::to_string(&first), want.clone());
        prop_assert_eq!(monitorless_std::json::to_string(&second), want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn forest_training_is_independent_of_n_jobs(
        seed in 0u64..10_000,
        rows in 12usize..40,
        bootstrap in 0u64..2,
    ) {
        let x = messy_matrix(seed, rows, 4, true);
        let y = messy_labels(seed, rows);
        let fit = |n_jobs: usize| {
            let mut rf = RandomForest::new(RandomForestParams {
                n_estimators: 7,
                min_samples_leaf: 2,
                bootstrap: bootstrap == 1,
                n_jobs,
                seed,
                ..RandomForestParams::default()
            });
            rf.fit(&x, &y, None).unwrap();
            // Compare the trained trees (and derived importances), not
            // the whole forest: its params echo the n_jobs knob, which
            // is exactly the field allowed to differ.
            (
                monitorless_std::json::to_string(&rf.trees().to_vec()),
                rf.feature_importances(),
            )
        };
        prop_assert_eq!(fit(1), fit(4));
    }

    #[test]
    fn parallel_cross_validate_matches_sequential(
        seed in 0u64..10_000,
        rows in 16usize..48,
    ) {
        let x = messy_matrix(seed, rows, 4, true);
        let y = messy_labels(seed, rows);
        let splits = KFold::new(4).split(rows).unwrap();
        let factory = || -> Box<dyn Classifier> {
            Box::new(DecisionTree::new(DecisionTreeParams {
                min_samples_leaf: 2,
                seed: 7,
                ..DecisionTreeParams::default()
            }))
        };
        let sequential = cross_validate(&x, &y, &splits, factory, f1_score).unwrap();
        for n_jobs in [1usize, 4] {
            let parallel =
                cross_validate_parallel(&x, &y, &splits, factory, f1_score, n_jobs).unwrap();
            prop_assert_eq!(&parallel.fold_scores, &sequential.fold_scores, "n_jobs={}", n_jobs);
        }
    }

    #[test]
    fn grid_search_is_independent_of_n_jobs(
        seed in 0u64..10_000,
        rows in 16usize..40,
    ) {
        let x = messy_matrix(seed, rows, 3, true);
        let y = messy_labels(seed, rows);
        let splits = KFold::new(3).split(rows).unwrap();
        let grid = ParamGrid::new()
            .add("min_samples_leaf", vec![ParamValue::I(1), ParamValue::I(3)])
            .add(
                "criterion",
                vec![ParamValue::S("gini".into()), ParamValue::S("entropy".into())],
            );
        let factory = |p: &monitorless_learn::model_selection::ParamSet| -> Box<dyn Classifier> {
            Box::new(DecisionTree::new(DecisionTreeParams {
                min_samples_leaf: p["min_samples_leaf"].as_usize(),
                criterion: if p["criterion"].as_str() == "gini" {
                    SplitCriterion::Gini
                } else {
                    SplitCriterion::Entropy
                },
                seed: 11,
                ..DecisionTreeParams::default()
            }))
        };
        let run = |n_jobs: usize| {
            GridSearch::new(grid.clone(), splits.clone())
                .with_n_jobs(n_jobs)
                .run(factory, f1_score, &x, &y)
                .unwrap()
                .evaluations
        };
        let sequential = run(1);
        prop_assert_eq!(sequential.len(), 4);
        prop_assert_eq!(run(4), sequential);
    }
}
