//! Property tests pinning the flat batched evaluator to the legacy
//! recursive predict paths.
//!
//! The flat table is an *exact* recompilation of a fitted ensemble:
//! for every input — duplicate values, constant columns, NaN cells,
//! single-leaf trees, deep unbalanced trees — batched probabilities
//! must be bit-for-bit identical to the legacy walk, for every
//! ensemble family and every `n_jobs`.

use monitorless_learn::prelude::*;
use proptest::prelude::*;

/// SplitMix64 — a tiny deterministic generator so each proptest case can
/// expand one seed into a full messy dataset.
struct Mix(u64);

impl Mix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A matrix deliberately full of the cases that break naive predict
/// code: heavy duplicate values (threshold-boundary hits), constant
/// columns, and — when `allow_nan` — NaN cells, which must route right
/// at every split.
fn messy_matrix(seed: u64, rows: usize, cols: usize, allow_nan: bool) -> Matrix {
    let mut rng = Mix(seed);
    let palette = [-3.0, 0.0, 0.5, 1.0, 2.5];
    let mut data = vec![0.0; rows * cols];
    for c in 0..cols {
        let constant = rng.below(4) == 0;
        let fill = palette[rng.below(palette.len() as u64) as usize];
        for r in 0..rows {
            data[r * cols + c] = if constant {
                fill
            } else if allow_nan && rng.below(10) == 0 {
                f64::NAN
            } else if rng.below(2) == 0 {
                palette[rng.below(palette.len() as u64) as usize]
            } else {
                rng.next_f64() * 20.0 - 10.0
            };
        }
    }
    Matrix::from_vec(rows, cols, data)
}

/// Random binary labels with both classes guaranteed present.
fn messy_labels(seed: u64, rows: usize) -> Vec<u8> {
    let mut rng = Mix(seed ^ 0xA5A5);
    let mut y: Vec<u8> = (0..rows).map(|_| rng.below(2) as u8).collect();
    y[0] = 0;
    y[rows - 1] = 1;
    y
}

/// Asserts two probability vectors are bit-identical (NaN-safe, unlike
/// `==` on floats).
fn assert_bits_equal(
    flat: &[f64],
    legacy: &[f64],
    what: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(flat.len(), legacy.len(), "{}: length mismatch", what);
    for (i, (a, b)) in flat.iter().zip(legacy).enumerate() {
        prop_assert_eq!(a.to_bits(), b.to_bits(), "{}: row {} diverges ({} vs {})", what, i, a, b);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A single tree's flat table against the recursive reference walk,
    /// on NaN-bearing inputs.
    #[test]
    fn tree_flat_matches_recursive_walk(
        seed in 0u64..1_000_000,
        rows in 8usize..150,
        cols in 1usize..7,
    ) {
        let x = messy_matrix(seed, rows, cols, true);
        let y = messy_labels(seed, rows);
        let mut tree = DecisionTree::new(DecisionTreeParams {
            min_samples_leaf: 1 + (seed % 3) as usize,
            seed,
            ..DecisionTreeParams::default()
        });
        tree.fit(&x, &y, None).unwrap();
        let flat = tree.to_flat();
        let batch = flat.predict_proba(&x, 1);
        let legacy: Vec<f64> = x.iter_rows().map(|r| tree.predict_row(r)).collect();
        assert_bits_equal(&batch, &legacy, "tree")?;
        // The allocation-free single-row entry agrees too.
        for (r, &want) in x.iter_rows().zip(&batch) {
            prop_assert_eq!(flat.predict_row(r).to_bits(), want.to_bits());
        }
    }

    /// Forest flat evaluation against the legacy blocked recursive walk.
    #[test]
    fn forest_flat_matches_legacy(
        seed in 0u64..1_000_000,
        rows in 8usize..120,
        cols in 1usize..6,
        bootstrap in 0u64..2,
    ) {
        let x = messy_matrix(seed, rows, cols, true);
        let y = messy_labels(seed, rows);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 5,
            min_samples_leaf: 2,
            bootstrap: bootstrap == 1,
            seed,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y, None).unwrap();
        assert_bits_equal(&rf.to_flat().predict_proba(&x, 1), &rf.predict_proba_legacy(&x), "forest")?;
    }

    /// AdaBoost (both variants) against its legacy decision-function
    /// path: leaf values are pre-transformed per stage, so the flat
    /// accumulator must reproduce the vote/log-odds sums exactly.
    #[test]
    fn adaboost_flat_matches_legacy(
        seed in 0u64..1_000_000,
        rows in 12usize..100,
        cols in 1usize..5,
        samme_r in 0u64..2,
    ) {
        let x = messy_matrix(seed, rows, cols, true);
        let y = messy_labels(seed, rows);
        let mut ab = AdaBoost::new(AdaBoostParams {
            n_estimators: 6,
            algorithm: if samme_r == 1 { BoostAlgorithm::SammeR } else { BoostAlgorithm::Samme },
            max_depth: Some(1 + (seed % 3) as usize),
            seed,
            ..AdaBoostParams::default()
        });
        ab.fit(&x, &y, None).unwrap();
        assert_bits_equal(&ab.to_flat().predict_proba(&x, 1), &ab.predict_proba_legacy(&x), "adaboost")?;
    }

    /// Gradient boosting against its legacy staged walk; fitted on
    /// clean data, predicted on NaN-bearing rows so the flat NaN
    /// routing is exercised independently of training support.
    #[test]
    fn gboost_flat_matches_legacy(
        seed in 0u64..1_000_000,
        rows in 12usize..100,
        cols in 1usize..5,
    ) {
        let x = messy_matrix(seed, rows, cols, false);
        let y = messy_labels(seed, rows);
        let mut gb = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 6,
            max_depth: 3,
            ..GradientBoostingParams::default()
        });
        gb.fit(&x, &y, None).unwrap();
        let x_nan = messy_matrix(seed ^ 0x77, rows, cols, true);
        assert_bits_equal(&gb.to_flat().predict_proba(&x_nan, 1), &gb.predict_proba_legacy(&x_nan), "gboost")?;
    }

    /// Degenerate single-node trees: a huge `min_samples_split` forces
    /// every root to be a leaf, so the flat table is all depth-0 trees.
    #[test]
    fn single_node_trees_flatten_correctly(
        seed in 0u64..1_000_000,
        rows in 8usize..60,
    ) {
        let x = messy_matrix(seed, rows, 3, true);
        let y = messy_labels(seed, rows);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 4,
            min_samples_split: rows * 2,
            seed,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y, None).unwrap();
        let flat = rf.to_flat();
        prop_assert_eq!(flat.n_nodes(), flat.n_trees(), "every tree should be one leaf");
        assert_bits_equal(&flat.predict_proba(&x, 1), &rf.predict_proba_legacy(&x), "stump forest")?;
    }

    /// Deep, unbalanced trees (no depth limit, leaf size 1 on
    /// continuous data): block walks where stragglers descend far past
    /// the block's early finishers.
    #[test]
    fn deep_unbalanced_trees_flatten_correctly(
        seed in 0u64..1_000_000,
        rows in 60usize..160,
    ) {
        let mut rng = Mix(seed ^ 0x1234);
        let rows_v: Vec<Vec<f64>> =
            (0..rows).map(|_| (0..3).map(|_| rng.next_f64() * 10.0).collect()).collect();
        let refs: Vec<&[f64]> = rows_v.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let y = messy_labels(seed, rows);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 3,
            min_samples_leaf: 1,
            min_samples_split: 2,
            max_depth: None,
            seed,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y, None).unwrap();
        assert_bits_equal(&rf.to_flat().predict_proba(&x, 1), &rf.predict_proba_legacy(&x), "deep forest")?;
    }

    /// Sharding rows over pool workers must not change a single bit,
    /// whatever the worker count.
    #[test]
    fn flat_predict_is_independent_of_n_jobs(
        seed in 0u64..1_000_000,
        rows in 8usize..300,
    ) {
        let x = messy_matrix(seed, rows, 4, true);
        let y = messy_labels(seed, rows);
        let mut rf = RandomForest::new(RandomForestParams {
            n_estimators: 4,
            min_samples_leaf: 2,
            seed,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y, None).unwrap();
        let flat = rf.to_flat();
        let one = flat.predict_proba(&x, 1);
        for jobs in [2usize, 3, 8, 64] {
            assert_bits_equal(&flat.predict_proba(&x, jobs), &one, "n_jobs")?;
        }
    }
}
