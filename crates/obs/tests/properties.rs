//! Property-based tests for the telemetry primitives.
//!
//! All histogram properties run on standalone `LogHistogram` values, so
//! they are immune to the global registry's process-wide state. The
//! span-nesting property goes through the real registry (spans have no
//! standalone mode) using per-case unique metric names.

use std::sync::atomic::{AtomicU64, Ordering};

use monitorless_obs as obs;
use obs::LogHistogram;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// p50/p90/p99 are bounded by the observed min/max and monotone in
    /// the quantile, for arbitrary finite samples.
    #[test]
    fn quantiles_bounded_and_monotone(
        values in proptest::collection::vec(-1e3_f64..1e9, 1..200),
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let s = h.summary();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.min, lo);
        prop_assert_eq!(s.max, hi);
        prop_assert!(s.min <= s.p50, "p50 {} below min {}", s.p50, s.min);
        prop_assert!(s.p50 <= s.p90, "p50 {} > p90 {}", s.p50, s.p90);
        prop_assert!(s.p90 <= s.p99, "p90 {} > p99 {}", s.p90, s.p99);
        prop_assert!(s.p99 <= s.max, "p99 {} above max {}", s.p99, s.max);
    }

    /// quantile(q) is monotone non-decreasing over the whole q range,
    /// not just at the three reported points.
    #[test]
    fn quantile_function_is_monotone(
        values in proptest::collection::vec(1e-3_f64..1e6, 1..100),
        qs in proptest::collection::vec(0.0_f64..=1.0, 2..10),
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prev = v;
        }
    }

    /// Bucketing keeps quantiles within the ~15 % relative error bound
    /// for positive samples (checked against the exact order statistic).
    #[test]
    fn quantile_relative_error_is_bounded(
        values in proptest::collection::vec(1.0_f64..1e6, 10..300),
        q in 0.05_f64..0.95,
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        let exact = sorted[rank];
        let approx = h.quantile(q).unwrap();
        prop_assert!(
            (approx - exact).abs() / exact < 0.16,
            "quantile({q}): approx {approx} vs exact {exact}"
        );
    }

    /// A nested child span never records more time than its parent.
    #[test]
    fn span_nesting_child_time_le_parent_time(spin in 1u32..2000) {
        obs::init(&obs::TelemetryConfig::with_format(obs::ExportFormat::Prom));
        // Unique names per case: the registry is global and proptest
        // reuses the process across cases.
        static CASE: AtomicU64 = AtomicU64::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let parent_name: &'static str =
            Box::leak(format!("prop.span.parent.{case}").into_boxed_str());
        let child_name: &'static str =
            Box::leak(format!("prop.span.child.{case}").into_boxed_str());
        {
            let parent = obs::Span::enter(parent_name);
            {
                let child = obs::Span::enter(child_name);
                let mut acc = 0u64;
                for i in 0..spin {
                    acc = acc.wrapping_add(u64::from(i));
                }
                std::hint::black_box(acc);
                drop(child);
            }
            drop(parent);
        }
        let p = obs::histogram_summary(parent_name).unwrap();
        let c = obs::histogram_summary(child_name).unwrap();
        prop_assert_eq!(p.count, 1);
        prop_assert_eq!(c.count, 1);
        prop_assert!(
            c.max <= p.max,
            "child {} µs exceeds parent {} µs",
            c.max,
            p.max
        );
    }
}
