//! Exporters: JSONL event stream and Prometheus-style text snapshots.
//!
//! JSON is rendered by hand — the crate is dependency-free — and the
//! emitted shapes are deliberately flat:
//!
//! ```text
//! {"type":"span","t_us":1234,"name":"sim.tick","parent":"autoscale.run","dur_us":103.2}
//! {"type":"progress","t_us":1300,"msg":"training model"}
//! {"type":"event","t_us":1400,"name":"autoscale.decision","fields":{"containers":3}}
//! {"type":"counter","name":"sim.ticks","value":600}
//! {"type":"histogram","name":"sim.tick","count":600,"p50":103.2,...}
//! ```
//!
//! The Prometheus exporter writes the usual text exposition format with
//! `monitorless_` prefixed, sanitized metric names and
//! `{quantile="..."}` summary series.

use std::io::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

use crate::config::ExportFormat;
use crate::histogram::HistogramSummary;
use crate::registry;

/// Microseconds since telemetry start (first call wins; `init` calls
/// this so the origin is process startup in practice).
pub(crate) fn process_start_us() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    let start = START.get_or_init(Instant::now);
    start.elapsed().as_micros() as u64
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (non-finite becomes `null`).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Streams one span event (JSONL mode only; called from `Span::drop`).
/// When the dropping thread has an active trace scope, the event carries
/// the trace id so existing instrumentation joins the causal chain.
pub(crate) fn emit_span_event(name: &str, parent: Option<&str>, dur_us: f64, trace: Option<u64>) {
    let parent_field = match parent {
        Some(p) => format!("\"{}\"", json_escape(p)),
        None => "null".to_string(),
    };
    let trace_field = match trace {
        Some(id) => format!(",\"trace\":{id}"),
        None => String::new(),
    };
    eprintln!(
        "{{\"type\":\"span\",\"t_us\":{},\"name\":\"{}\",\"parent\":{},\"dur_us\":{}{}}}",
        process_start_us(),
        json_escape(name),
        parent_field,
        json_f64(dur_us),
        trace_field,
    );
}

/// Emits a progress message. Default (telemetry off or Prometheus mode):
/// the message renders to stderr exactly as `eprintln!` would. JSONL
/// mode: the message becomes a machine-readable progress event.
pub fn progress(msg: &str) {
    if registry::format() == ExportFormat::Jsonl {
        eprintln!(
            "{{\"type\":\"progress\",\"t_us\":{},\"msg\":\"{}\"}}",
            process_start_us(),
            json_escape(msg),
        );
    } else {
        eprintln!("{msg}");
    }
}

/// Emits a structured discrete event (e.g. one autoscaling decision)
/// with numeric fields. Only rendered in JSONL mode; other modes drop it
/// (the associated counters/histograms still capture the aggregate).
pub fn event(name: &str, fields: &[(&str, f64)]) {
    if registry::format() != ExportFormat::Jsonl {
        return;
    }
    let mut body = String::new();
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("\"{}\":{}", json_escape(k), json_f64(*v)));
    }
    eprintln!(
        "{{\"type\":\"event\",\"t_us\":{},\"name\":\"{}\",\"fields\":{{{}}}}}",
        process_start_us(),
        json_escape(name),
        body,
    );
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Counter name/value pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name/value pairs, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name/summary pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// Captures the current state of the registry. When journal tracing
    /// is active, the journal's lifetime statistics are merged in as
    /// `journal.*` counters and gauges (kept in sorted name order).
    pub fn take() -> Self {
        let (mut counters, mut gauges, histograms) = registry::dump();
        if crate::journal::trace_enabled() {
            let stats = crate::journal::journal_stats();
            merge_sorted(&mut counters, "journal.overwritten".to_string(), stats.overwritten);
            merge_sorted(&mut counters, "journal.records".to_string(), stats.records);
            merge_sorted(&mut gauges, "journal.queued".to_string(), stats.queued as f64);
        }
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot in the given format (`Off` renders nothing).
    pub fn render(&self, format: ExportFormat) -> String {
        match format {
            ExportFormat::Off => String::new(),
            ExportFormat::Jsonl => self.to_jsonl(),
            ExportFormat::Prom => self.to_prometheus(),
        }
    }

    /// One JSON object per line, one line per metric.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}\n",
                json_escape(name),
                value
            ));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}\n",
                json_escape(name),
                json_f64(*value)
            ));
        }
        for (name, s) in &self.histograms {
            out.push_str(&format!(
                concat!(
                    "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},",
                    "\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},",
                    "\"p50\":{},\"p90\":{},\"p99\":{}}}\n"
                ),
                json_escape(name),
                s.count,
                json_f64(s.sum),
                json_f64(s.min),
                json_f64(s.max),
                json_f64(s.mean),
                json_f64(s.p50),
                json_f64(s.p90),
                json_f64(s.p99),
            ));
        }
        out
    }

    /// Prometheus text exposition format. Histograms render as summaries
    /// with `quantile` labels plus `_sum`/`_count` series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", prom_f64(*value)));
        }
        for (name, s) in &self.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {}\n", prom_f64(v)));
            }
            out.push_str(&format!("{n}_sum {}\n", prom_f64(s.sum)));
            out.push_str(&format!("{n}_count {}\n", s.count));
        }
        out
    }
}

/// Inserts or overwrites `(name, value)` in a name-sorted metric list.
fn merge_sorted<T>(list: &mut Vec<(String, T)>, name: String, value: T) {
    match list.binary_search_by(|(n, _)| n.as_str().cmp(name.as_str())) {
        Ok(i) => list[i].1 = value,
        Err(i) => list.insert(i, (name, value)),
    }
}

fn prom_name(name: &str) -> String {
    let sanitized: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("monitorless_{sanitized}")
}

fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Writes the final snapshot to stderr in the active format. No-op when
/// telemetry is off or nothing was recorded.
pub fn report_to_stderr() {
    let format = registry::format();
    if format == ExportFormat::Off {
        return;
    }
    let snap = Snapshot::take();
    if snap.is_empty() {
        return;
    }
    eprint!("{}", snap.render(format));
}

/// Writes the final snapshot to a file in the active format. No-op when
/// telemetry is off; an empty snapshot still produces an empty file.
pub fn write_report(path: &std::path::Path) -> std::io::Result<()> {
    let format = registry::format();
    if format == ExportFormat::Off {
        return Ok(());
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(Snapshot::take().render(format).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::enable_for_test;

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("tab\there"), "tab\\there");
    }

    #[test]
    fn snapshot_renders_both_formats() {
        let _guard = enable_for_test();
        registry::counter_add("export.test.requests", 3);
        registry::gauge_set("export.test.load", 0.5);
        registry::observe("export.test.latency_us", 100.0);
        let snap = Snapshot::take();
        assert!(!snap.is_empty());

        let jsonl = snap.to_jsonl();
        assert!(
            jsonl.contains("{\"type\":\"counter\",\"name\":\"export.test.requests\",\"value\":3}")
        );
        assert!(jsonl.contains("\"type\":\"gauge\",\"name\":\"export.test.load\",\"value\":0.5"));
        assert!(jsonl.contains("\"type\":\"histogram\",\"name\":\"export.test.latency_us\""));

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE monitorless_export_test_requests counter"));
        assert!(prom.contains("monitorless_export_test_requests 3"));
        assert!(prom.contains("monitorless_export_test_latency_us{quantile=\"0.5\"}"));
        assert!(prom.contains("monitorless_export_test_latency_us_count 1"));
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("sim.tick-rate"), "monitorless_sim_tick_rate");
    }

    #[test]
    fn non_finite_values_render_safely() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(f64::NEG_INFINITY), "-Inf");
    }
}
