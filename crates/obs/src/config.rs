//! Telemetry configuration: environment variable and CLI-flag parsing.

use std::str::FromStr;

/// Name of the environment variable selecting the export format.
pub const ENV_VAR: &str = "MONITORLESS_OBS";

/// How telemetry is exported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExportFormat {
    /// Telemetry disabled (the default): every instrumentation call is a
    /// single relaxed atomic load.
    #[default]
    Off,
    /// Machine-readable JSONL: span/progress events stream to stderr as
    /// they happen, and snapshots render as one JSON object per metric.
    Jsonl,
    /// Prometheus-style text snapshot (no event stream).
    Prom,
}

impl FromStr for ExportFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "none" | "false" => Ok(ExportFormat::Off),
            "1" | "on" | "true" | "json" | "jsonl" => Ok(ExportFormat::Jsonl),
            "prom" | "prometheus" | "text" => Ok(ExportFormat::Prom),
            other => Err(format!("unknown telemetry format {other:?} (expected off|jsonl|prom)")),
        }
    }
}

impl std::fmt::Display for ExportFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportFormat::Off => write!(f, "off"),
            ExportFormat::Jsonl => write!(f, "jsonl"),
            ExportFormat::Prom => write!(f, "prom"),
        }
    }
}

/// Telemetry configuration, normally built from the `MONITORLESS_OBS`
/// environment variable and/or a `--telemetry <fmt>` CLI flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Selected export format.
    pub format: ExportFormat,
}

impl TelemetryConfig {
    /// Telemetry disabled.
    pub fn off() -> Self {
        TelemetryConfig {
            format: ExportFormat::Off,
        }
    }

    /// Telemetry with the given format.
    pub fn with_format(format: ExportFormat) -> Self {
        TelemetryConfig { format }
    }

    /// Reads `MONITORLESS_OBS` (`off`/`jsonl`/`prom`). Unset or
    /// unparseable values disable telemetry.
    pub fn from_env() -> Self {
        let format = std::env::var(ENV_VAR)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_default();
        TelemetryConfig { format }
    }

    /// Like [`TelemetryConfig::from_env`], but a `--telemetry <fmt>`
    /// argument overrides the environment. Malformed flag values fall
    /// back to the environment setting.
    pub fn from_env_and_args<'a, I>(args: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut cfg = Self::from_env();
        let args: Vec<&str> = args.into_iter().collect();
        if let Some(i) = args.iter().position(|a| *a == "--telemetry") {
            if let Some(fmt) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                cfg.format = fmt;
            }
        }
        cfg
    }

    /// Whether any telemetry is recorded under this configuration.
    pub fn enabled(&self) -> bool {
        self.format != ExportFormat::Off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parsing() {
        assert_eq!("off".parse(), Ok(ExportFormat::Off));
        assert_eq!("".parse(), Ok(ExportFormat::Off));
        assert_eq!("jsonl".parse(), Ok(ExportFormat::Jsonl));
        assert_eq!("JSON".parse(), Ok(ExportFormat::Jsonl));
        assert_eq!("prom".parse(), Ok(ExportFormat::Prom));
        assert_eq!("Prometheus".parse(), Ok(ExportFormat::Prom));
        assert!("bogus".parse::<ExportFormat>().is_err());
    }

    #[test]
    fn flag_overrides_nothing_when_absent() {
        let cfg = TelemetryConfig::from_env_and_args(["--seed", "7"]);
        // No flag: falls back to the environment (usually unset in tests).
        let _ = cfg.enabled();
    }

    #[test]
    fn flag_selects_format() {
        let cfg = TelemetryConfig::from_env_and_args(["--telemetry", "prom"]);
        assert_eq!(cfg.format, ExportFormat::Prom);
        assert!(cfg.enabled());
        let cfg = TelemetryConfig::from_env_and_args(["--telemetry", "jsonl"]);
        assert_eq!(cfg.format, ExportFormat::Jsonl);
        let cfg = TelemetryConfig::from_env_and_args(["--telemetry", "off"]);
        assert!(!cfg.enabled());
    }

    #[test]
    fn display_roundtrips() {
        for fmt in [ExportFormat::Off, ExportFormat::Jsonl, ExportFormat::Prom] {
            assert_eq!(fmt.to_string().parse::<ExportFormat>(), Ok(fmt));
        }
    }
}
