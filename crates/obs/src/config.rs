//! Telemetry configuration: environment variable and CLI-flag parsing.

use std::str::FromStr;

/// Name of the environment variable selecting the export format.
pub const ENV_VAR: &str = "MONITORLESS_OBS";

/// Name of the environment variable selecting the trace mode.
pub const TRACE_ENV_VAR: &str = "MONITORLESS_TRACE";

/// How telemetry is exported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExportFormat {
    /// Telemetry disabled (the default): every instrumentation call is a
    /// single relaxed atomic load.
    #[default]
    Off,
    /// Machine-readable JSONL: span/progress events stream to stderr as
    /// they happen, and snapshots render as one JSON object per metric.
    Jsonl,
    /// Prometheus-style text snapshot (no event stream).
    Prom,
}

impl FromStr for ExportFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "none" | "false" => Ok(ExportFormat::Off),
            "1" | "on" | "true" | "json" | "jsonl" => Ok(ExportFormat::Jsonl),
            "prom" | "prometheus" | "text" => Ok(ExportFormat::Prom),
            other => Err(format!("unknown telemetry format {other:?} (expected off|jsonl|prom)")),
        }
    }
}

impl std::fmt::Display for ExportFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportFormat::Off => write!(f, "off"),
            ExportFormat::Jsonl => write!(f, "jsonl"),
            ExportFormat::Prom => write!(f, "prom"),
        }
    }
}

/// How the causal event journal captures trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Tracing disabled (the default): `journal::record` is a single
    /// relaxed atomic load.
    #[default]
    Off,
    /// Records accumulate in the in-memory ring for an end-of-run drain.
    Ring,
    /// Like `Ring`, but each record also streams to stderr as one JSONL
    /// audit line the moment it is appended.
    Jsonl,
}

impl FromStr for TraceMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "none" | "false" => Ok(TraceMode::Off),
            "1" | "on" | "true" | "ring" => Ok(TraceMode::Ring),
            "json" | "jsonl" => Ok(TraceMode::Jsonl),
            other => Err(format!("unknown trace mode {other:?} (expected off|ring|jsonl)")),
        }
    }
}

impl std::fmt::Display for TraceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceMode::Off => write!(f, "off"),
            TraceMode::Ring => write!(f, "ring"),
            TraceMode::Jsonl => write!(f, "jsonl"),
        }
    }
}

/// Telemetry configuration, normally built from the `MONITORLESS_OBS` /
/// `MONITORLESS_TRACE` environment variables and/or the
/// `--telemetry <fmt>` / `--trace <mode>` CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Selected export format.
    pub format: ExportFormat,
    /// Selected journal trace mode.
    pub trace: TraceMode,
}

impl TelemetryConfig {
    /// Telemetry disabled.
    pub fn off() -> Self {
        TelemetryConfig {
            format: ExportFormat::Off,
            trace: TraceMode::Off,
        }
    }

    /// Telemetry with the given format (tracing off).
    pub fn with_format(format: ExportFormat) -> Self {
        TelemetryConfig {
            format,
            trace: TraceMode::Off,
        }
    }

    /// Returns the configuration with the given trace mode.
    pub fn with_trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Reads `MONITORLESS_OBS` (`off`/`jsonl`/`prom`) and
    /// `MONITORLESS_TRACE` (`off`/`ring`/`jsonl`). Unset or unparseable
    /// values disable the corresponding facility.
    pub fn from_env() -> Self {
        let format = std::env::var(ENV_VAR)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_default();
        let trace = std::env::var(TRACE_ENV_VAR)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_default();
        TelemetryConfig { format, trace }
    }

    /// Like [`TelemetryConfig::from_env`], but `--telemetry <fmt>` and
    /// `--trace <mode>` arguments override the environment. Malformed
    /// flag values fall back to the environment setting.
    pub fn from_env_and_args<'a, I>(args: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut cfg = Self::from_env();
        let args: Vec<&str> = args.into_iter().collect();
        if let Some(i) = args.iter().position(|a| *a == "--telemetry") {
            if let Some(fmt) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                cfg.format = fmt;
            }
        }
        if let Some(i) = args.iter().position(|a| *a == "--trace") {
            if let Some(mode) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                cfg.trace = mode;
            }
        }
        cfg
    }

    /// Whether any telemetry is recorded under this configuration.
    pub fn enabled(&self) -> bool {
        self.format != ExportFormat::Off
    }

    /// Whether journal tracing is active under this configuration.
    pub fn tracing(&self) -> bool {
        self.trace != TraceMode::Off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parsing() {
        assert_eq!("off".parse(), Ok(ExportFormat::Off));
        assert_eq!("".parse(), Ok(ExportFormat::Off));
        assert_eq!("jsonl".parse(), Ok(ExportFormat::Jsonl));
        assert_eq!("JSON".parse(), Ok(ExportFormat::Jsonl));
        assert_eq!("prom".parse(), Ok(ExportFormat::Prom));
        assert_eq!("Prometheus".parse(), Ok(ExportFormat::Prom));
        assert!("bogus".parse::<ExportFormat>().is_err());
    }

    #[test]
    fn flag_overrides_nothing_when_absent() {
        let cfg = TelemetryConfig::from_env_and_args(["--seed", "7"]);
        // No flag: falls back to the environment (usually unset in tests).
        let _ = cfg.enabled();
    }

    #[test]
    fn flag_selects_format() {
        let cfg = TelemetryConfig::from_env_and_args(["--telemetry", "prom"]);
        assert_eq!(cfg.format, ExportFormat::Prom);
        assert!(cfg.enabled());
        let cfg = TelemetryConfig::from_env_and_args(["--telemetry", "jsonl"]);
        assert_eq!(cfg.format, ExportFormat::Jsonl);
        let cfg = TelemetryConfig::from_env_and_args(["--telemetry", "off"]);
        assert!(!cfg.enabled());
    }

    #[test]
    fn display_roundtrips() {
        for fmt in [ExportFormat::Off, ExportFormat::Jsonl, ExportFormat::Prom] {
            assert_eq!(fmt.to_string().parse::<ExportFormat>(), Ok(fmt));
        }
        for mode in [TraceMode::Off, TraceMode::Ring, TraceMode::Jsonl] {
            assert_eq!(mode.to_string().parse::<TraceMode>(), Ok(mode));
        }
    }

    #[test]
    fn trace_mode_parsing() {
        assert_eq!("off".parse(), Ok(TraceMode::Off));
        assert_eq!("".parse(), Ok(TraceMode::Off));
        assert_eq!("ring".parse(), Ok(TraceMode::Ring));
        assert_eq!("on".parse(), Ok(TraceMode::Ring));
        assert_eq!("JSONL".parse(), Ok(TraceMode::Jsonl));
        assert!("bogus".parse::<TraceMode>().is_err());
    }

    #[test]
    fn trace_flag_selects_mode() {
        let cfg = TelemetryConfig::from_env_and_args(["--trace", "ring"]);
        assert_eq!(cfg.trace, TraceMode::Ring);
        assert!(cfg.tracing());
        let cfg = TelemetryConfig::from_env_and_args(["--telemetry", "prom", "--trace", "jsonl"]);
        assert_eq!(cfg.format, ExportFormat::Prom);
        assert_eq!(cfg.trace, TraceMode::Jsonl);
        let cfg = TelemetryConfig::from_env_and_args(["--trace", "off"]);
        assert!(!cfg.tracing());
    }
}
