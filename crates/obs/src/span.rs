//! RAII span timers.
//!
//! `Span::enter("pipeline.fit")` starts a timer; dropping the guard
//! records the elapsed microseconds into the histogram of the same name
//! and, in JSONL mode, streams a span event (with its parent span, if
//! any) to stderr. Spans nest per thread via a thread-local stack, so a
//! child span's recorded duration is always ≤ its enclosing parent's
//! (both run on the same monotonic clock and the child's interval is
//! contained in the parent's).
//!
//! When telemetry is disabled, `Span::enter` performs one relaxed atomic
//! load and no clock read; the guard drops for free.

use std::cell::RefCell;
use std::time::Instant;

use crate::config::ExportFormat;
use crate::registry;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII guard timing one named stage.
#[must_use = "a span records its duration when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Starts a span. Cheap no-op when telemetry is disabled.
    pub fn enter(name: &'static str) -> Span {
        if !registry::enabled() {
            return Span { name, start: None };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        Span {
            name,
            start: Some(Instant::now()),
        }
    }

    /// Name of this span.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Microseconds elapsed so far (`None` when telemetry was disabled
    /// at enter time).
    pub fn elapsed_us(&self) -> Option<f64> {
        self.start.map(|t| t.elapsed().as_secs_f64() * 1e6)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
        let parent = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Spans normally drop in strict LIFO order; tolerate a span
            // stored past its siblings by removing its last occurrence.
            if let Some(pos) = stack.iter().rposition(|n| *n == self.name) {
                stack.remove(pos);
            }
            stack.last().copied()
        });
        registry::observe(self.name, elapsed_us);
        if registry::format() == ExportFormat::Jsonl {
            crate::export::emit_span_event(
                self.name,
                parent,
                elapsed_us,
                crate::journal::current_trace(),
            );
        }
    }
}

/// Times a closure under a span and returns its result.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _span = Span::enter(name);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::enable_for_test;

    #[test]
    fn span_records_duration_histogram() {
        let _guard = enable_for_test();
        {
            let _s = Span::enter("span.test.outer_duration");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = registry::histogram_summary("span.test.outer_duration").unwrap();
        assert_eq!(s.count, 1);
        assert!(s.min >= 1_000.0, "expected ≥ 1ms recorded, got {} µs", s.min);
    }

    #[test]
    fn nested_child_time_le_parent_time() {
        let _guard = enable_for_test();
        {
            let _parent = Span::enter("span.test.parent");
            {
                let _child = Span::enter("span.test.child");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let parent = registry::histogram_summary("span.test.parent").unwrap();
        let child = registry::histogram_summary("span.test.child").unwrap();
        assert!(child.max <= parent.max, "child {} µs > parent {} µs", child.max, parent.max);
    }

    #[test]
    fn disabled_span_records_nothing() {
        // Relies on a name nothing else writes; even if another test has
        // telemetry enabled concurrently, elapsed_us() is None only when
        // this span saw the disabled flag, so guard on that.
        let span = Span {
            name: "span.test.disabled",
            start: None,
        };
        assert!(span.elapsed_us().is_none());
        drop(span);
        assert!(registry::histogram_summary("span.test.disabled").is_none());
    }

    #[test]
    fn timed_returns_closure_result() {
        let _guard = enable_for_test();
        let v = timed("span.test.timed", || 21 * 2);
        assert_eq!(v, 42);
        assert_eq!(
            registry::histogram_summary("span.test.timed")
                .unwrap()
                .count,
            1
        );
    }
}
