//! The causal event journal: a bounded lock-free ring buffer of
//! trace-stamped records.
//!
//! Where counters and histograms answer "how much / how fast", the
//! journal answers "what happened to *this* prediction": every stage of
//! the serving loop — observation ingest, featurization, model predict,
//! drift evaluation, autoscaler decision — appends one
//! [`JournalRecord`] carrying the tick's trace id, so a single
//! `trace_id` can be followed from a raw metric vector to the scaling
//! decision it caused (and to any span events emitted on the way:
//! [`crate::Span`] joins the chain via the thread's current trace).
//!
//! ## Design
//!
//! * **Bounded and lock-free.** Records land in a fixed-capacity
//!   (power-of-two) ring using the classic bounded-MPMC protocol: each
//!   slot carries a sequence number; producers claim a position with a
//!   CAS on the enqueue cursor and publish with a release store of the
//!   slot sequence, consumers mirror the dance on the dequeue cursor.
//!   No mutex is ever taken on the record path. When the ring is full
//!   the *oldest* record is popped and counted as overwritten — an
//!   audit trail keeps its most recent history under backpressure.
//! * **Off by default.** Tracing is configured separately from metric
//!   telemetry (`MONITORLESS_TRACE` / `--trace <off|ring|jsonl>`); when
//!   off, [`record`] is a single relaxed atomic load and the serving
//!   loop's zero-allocation contract is untouched. `ring` keeps records
//!   in memory for an end-of-run [`drain`]; `jsonl` additionally
//!   streams each record to stderr as it happens.
//! * **Trace ids.** [`next_trace`] mints process-unique ids from an
//!   atomic counter; [`enter_trace`] installs one as the thread's
//!   current trace for the duration of an RAII scope.

use std::cell::{Cell, UnsafeCell};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::config::TraceMode;
use crate::export::{json_escape, json_f64, process_start_us};

/// Capacity of the global ring (power of two). 4096 records cover
/// several seconds of a busy fleet tick loop between drains.
pub const JOURNAL_CAPACITY: usize = 4096;

static MODE: AtomicU8 = AtomicU8::new(0);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static RECORDS: AtomicU64 = AtomicU64::new(0);
static OVERWRITTEN: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Whether journal records are currently being captured. One relaxed
/// atomic load — call sites may use it to skip argument preparation
/// (top-k extraction, name lookups) entirely.
#[inline]
pub fn trace_enabled() -> bool {
    MODE.load(Ordering::Relaxed) != 0
}

/// The active trace mode.
pub fn trace_mode() -> TraceMode {
    match MODE.load(Ordering::Relaxed) {
        1 => TraceMode::Ring,
        2 => TraceMode::Jsonl,
        _ => TraceMode::Off,
    }
}

/// Installs the trace mode (done by [`crate::init`]).
pub(crate) fn set_trace_mode(mode: TraceMode) {
    let code = match mode {
        TraceMode::Off => 0,
        TraceMode::Ring => 1,
        TraceMode::Jsonl => 2,
    };
    MODE.store(code, Ordering::Relaxed);
}

/// Mints a fresh process-unique trace id (never 0 — 0 means "no trace").
pub fn next_trace() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// The thread's current trace id, if a trace scope is active.
pub fn current_trace() -> Option<u64> {
    let id = CURRENT_TRACE.with(Cell::get);
    (id != 0).then_some(id)
}

/// RAII guard installing a trace id as the thread's current trace;
/// dropping it restores the previous trace (scopes nest).
#[derive(Debug)]
#[must_use = "dropping the scope immediately uninstalls the trace id"]
pub struct TraceScope {
    prev: u64,
}

/// Makes `id` the thread's current trace until the returned scope
/// drops. Span events emitted inside the scope carry the id, joining
/// existing instrumentation to the causal chain for free.
pub fn enter_trace(id: u64) -> TraceScope {
    let prev = CURRENT_TRACE.with(|c| c.replace(id));
    TraceScope { prev }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

/// One audit-trail entry: a named stage of the serving loop, stamped
/// with the tick's trace id, a timestamp, numeric fields and optional
/// string labels (e.g. the top-k contributing metric names).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Trace id linking this record to the rest of its tick.
    pub trace: u64,
    /// Microseconds since process start.
    pub t_us: u64,
    /// Stage name (`"orchestrator.observe"`, `"drift.alert"`, ...).
    pub name: &'static str,
    /// Numeric payload, in insertion order.
    pub fields: Vec<(&'static str, f64)>,
    /// String payload (metric names, decisions), in insertion order.
    pub labels: Vec<(&'static str, String)>,
}

impl JournalRecord {
    /// Renders the record as one JSONL audit line.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"trace\",\"trace\":{},\"t_us\":{},\"name\":\"{}\"",
            self.trace,
            self.t_us,
            json_escape(self.name)
        );
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", json_escape(k), json_f64(*v)));
            }
            out.push('}');
        }
        if !self.labels.is_empty() {
            out.push_str(",\"labels\":{");
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// One ring slot: the bounded-MPMC sequence cell plus the record.
struct Slot {
    seq: AtomicUsize,
    rec: UnsafeCell<Option<JournalRecord>>,
}

/// The bounded lock-free MPMC ring. Producers and consumers coordinate
/// purely through per-slot sequence numbers and two cursors.
struct Ring {
    slots: Box<[Slot]>,
    enqueue: AtomicUsize,
    dequeue: AtomicUsize,
}

// SAFETY: slot contents are only touched by the thread that won the
// corresponding cursor CAS, between its claim and its release store of
// the slot sequence; the sequence protocol makes those windows
// exclusive (standard bounded-MPMC argument).
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(capacity: usize) -> Self {
        assert!(capacity.is_power_of_two());
        let slots: Vec<Slot> = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                rec: UnsafeCell::new(None),
            })
            .collect();
        Ring {
            slots: slots.into_boxed_slice(),
            enqueue: AtomicUsize::new(0),
            dequeue: AtomicUsize::new(0),
        }
    }

    /// Appends a record, or returns it back when the ring is full.
    fn try_push(&self, rec: JournalRecord) -> Result<(), JournalRecord> {
        let cap = self.slots.len();
        let mut pos = self.enqueue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & (cap - 1)];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.enqueue.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive
                        // access to this slot until the release store.
                        unsafe { *slot.rec.get() = Some(rec) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                return Err(rec); // full: a whole lap behind
            } else {
                pos = self.enqueue.load(Ordering::Relaxed);
            }
        }
    }

    /// Removes the oldest record, or `None` when empty.
    fn try_pop(&self) -> Option<JournalRecord> {
        let cap = self.slots.len();
        let mut pos = self.dequeue.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & (cap - 1)];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            if dif == 0 {
                match self.dequeue.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS grants exclusive
                        // access to this slot until the release store.
                        let rec = unsafe { (*slot.rec.get()).take() };
                        slot.seq.store(pos + cap, Ordering::Release);
                        return rec;
                    }
                    Err(p) => pos = p,
                }
            } else if dif < 0 {
                return None; // empty
            } else {
                pos = self.dequeue.load(Ordering::Relaxed);
            }
        }
    }

    /// Appends, evicting the oldest record when full. Returns how many
    /// records were evicted to make room (0 or, under a race, a few).
    fn push_overwriting(&self, mut rec: JournalRecord) -> u64 {
        let mut evicted = 0;
        loop {
            match self.try_push(rec) {
                Ok(()) => return evicted,
                Err(back) => {
                    rec = back;
                    if self.try_pop().is_some() {
                        evicted += 1;
                    }
                }
            }
        }
    }
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring::new(JOURNAL_CAPACITY))
}

/// Appends one audit record to the journal. No-op (a single relaxed
/// load) while tracing is off; in `jsonl` mode the record also streams
/// to stderr immediately.
pub fn record(
    name: &'static str,
    trace: u64,
    fields: &[(&'static str, f64)],
    labels: &[(&'static str, &str)],
) {
    if !trace_enabled() {
        return;
    }
    let rec = JournalRecord {
        trace,
        t_us: process_start_us(),
        name,
        fields: fields.to_vec(),
        labels: labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect(),
    };
    if trace_mode() == TraceMode::Jsonl {
        eprintln!("{}", rec.to_jsonl());
    }
    let evicted = ring().push_overwriting(rec);
    RECORDS.fetch_add(1, Ordering::Relaxed);
    if evicted > 0 {
        OVERWRITTEN.fetch_add(evicted, Ordering::Relaxed);
    }
}

/// Removes and returns every queued record, oldest first.
pub fn drain() -> Vec<JournalRecord> {
    let mut out = Vec::new();
    while let Some(rec) = ring().try_pop() {
        out.push(rec);
    }
    out
}

/// Drains the journal and renders it as a JSONL audit trail (one
/// record per line, oldest first).
pub fn audit_jsonl() -> String {
    let mut out = String::new();
    for rec in drain() {
        out.push_str(&rec.to_jsonl());
        out.push('\n');
    }
    out
}

/// Journal lifetime statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended since process start (drained or not).
    pub records: u64,
    /// Records evicted because the ring was full.
    pub overwritten: u64,
    /// Records currently queued in the ring.
    pub queued: u64,
}

/// Current journal statistics (cheap; three atomic loads).
pub fn journal_stats() -> JournalStats {
    let enq = ring().enqueue.load(Ordering::Relaxed) as u64;
    let deq = ring().dequeue.load(Ordering::Relaxed) as u64;
    JournalStats {
        records: RECORDS.load(Ordering::Relaxed),
        overwritten: OVERWRITTEN.load(Ordering::Relaxed),
        queued: enq.saturating_sub(deq),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64) -> JournalRecord {
        JournalRecord {
            trace,
            t_us: 0,
            name: "test.stage",
            fields: vec![("value", 1.5)],
            labels: Vec::new(),
        }
    }

    #[test]
    fn ring_is_fifo() {
        let ring = Ring::new(8);
        for i in 0..5 {
            ring.try_push(rec(i)).unwrap();
        }
        for i in 0..5 {
            assert_eq!(ring.try_pop().unwrap().trace, i);
        }
        assert!(ring.try_pop().is_none());
    }

    #[test]
    fn full_ring_evicts_oldest() {
        let ring = Ring::new(4);
        let mut evicted = 0;
        for i in 0..10 {
            evicted += ring.push_overwriting(rec(i));
        }
        assert_eq!(evicted, 6, "6 of 10 records must be evicted from a 4-slot ring");
        // The survivors are the 4 most recent, in order.
        let kept: Vec<u64> = std::iter::from_fn(|| ring.try_pop())
            .map(|r| r.trace)
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn concurrent_pushes_are_lossless_below_capacity() {
        let ring = std::sync::Arc::new(Ring::new(1024));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        ring.try_push(rec(t * 1000 + i)).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut seen = 0;
        while ring.try_pop().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 400);
    }

    #[test]
    fn jsonl_rendering_is_flat() {
        let r = JournalRecord {
            trace: 42,
            t_us: 7,
            name: "predict",
            fields: vec![("probability", 0.25), ("saturated", 1.0)],
            labels: vec![("top1", "ctr.containers.cpu.util".into())],
        };
        assert_eq!(
            r.to_jsonl(),
            "{\"type\":\"trace\",\"trace\":42,\"t_us\":7,\"name\":\"predict\",\
             \"fields\":{\"probability\":0.25,\"saturated\":1},\
             \"labels\":{\"top1\":\"ctr.containers.cpu.util\"}}"
        );
    }

    #[test]
    fn trace_scopes_nest_and_restore() {
        assert_eq!(current_trace(), None);
        let a = next_trace();
        let b = next_trace();
        assert_ne!(a, b);
        {
            let _outer = enter_trace(a);
            assert_eq!(current_trace(), Some(a));
            {
                let _inner = enter_trace(b);
                assert_eq!(current_trace(), Some(b));
            }
            assert_eq!(current_trace(), Some(a));
        }
        assert_eq!(current_trace(), None);
    }

    #[test]
    fn record_is_noop_when_off() {
        // Tracing is off unless a test explicitly enables it; the global
        // mode is process-wide, so only assert when it is actually off.
        if !trace_enabled() {
            let before = journal_stats().records;
            record("test.noop", 1, &[("x", 1.0)], &[]);
            assert_eq!(journal_stats().records, before);
        }
    }
}
