//! # monitorless-obs — self-telemetry for the monitorless reproduction
//!
//! A from-scratch, zero-dependency observability layer: the pre-approved
//! dependency set has no `tracing`, so — matching the repo's from-scratch
//! ethos — counters, gauges, log-bucketed histograms, RAII span timers
//! and two exporters (JSONL event stream, Prometheus-style text
//! snapshot) are implemented natively on `std` only. The crate sits
//! below every other workspace crate; anything may depend on it.
//!
//! ## Design
//!
//! * **Cheap when disabled.** Telemetry defaults to off; every
//!   instrumentation call ([`counter_add`], [`gauge_set`], [`observe`],
//!   [`Span::enter`]) starts with one `Relaxed` atomic load and returns
//!   immediately when off — no locks, no clock reads, no allocation.
//!   The `obs_overhead` Criterion bench in `monitorless-bench` verifies
//!   the instrumented sim tick loop stays within noise of baseline.
//! * **Global registry.** Metrics live in one process-wide registry
//!   keyed by dotted name; hot-path cells are atomics (see
//!   [`registry`]).
//! * **Quantiles.** Histograms use 256 geometric buckets (ratio 1.15,
//!   ≤ 15 % relative error) and report p50/p90/p99 clamped into the
//!   exact observed `[min, max]` (see [`histogram`]).
//! * **Spans.** [`Span::enter`] returns an RAII guard; dropping it
//!   records elapsed µs into the histogram of the same name. Spans nest
//!   per thread, so a child's time is always ≤ its parent's.
//! * **Configuration.** [`TelemetryConfig`] is built from the
//!   `MONITORLESS_OBS` env var and/or a `--telemetry <off|jsonl|prom>`
//!   CLI flag and installed once via [`init`].
//!
//! ## Example
//!
//! ```
//! use monitorless_obs as obs;
//!
//! obs::init(&obs::TelemetryConfig::with_format(obs::ExportFormat::Prom));
//! {
//!     let _span = obs::Span::enter("pipeline.fit");
//!     obs::counter_add("pipeline.fits", 1);
//!     obs::observe("pipeline.rows", 120.0);
//! }
//! let text = obs::Snapshot::take().to_prometheus();
//! assert!(text.contains("monitorless_pipeline_fits 1"));
//! ```

pub mod config;
pub mod export;
pub mod histogram;
pub mod journal;
pub mod registry;
pub mod span;

pub use config::{ExportFormat, TelemetryConfig, TraceMode, ENV_VAR, TRACE_ENV_VAR};
pub use export::{event, progress, report_to_stderr, write_report, Snapshot};
pub use histogram::{HistogramSummary, LogHistogram};
pub use journal::{
    audit_jsonl, current_trace, drain, enter_trace, journal_stats, next_trace, record,
    trace_enabled, trace_mode, JournalRecord, JournalStats, TraceScope,
};
pub use registry::{
    counter_add, counter_value, enabled, format, gauge_set, gauge_value, histogram_summary, init,
    observe, reset,
};
pub use span::{timed, Span};

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Serializes tests that flip the global enabled flag. Rust runs
    /// tests multi-threaded; without this, a test asserting the
    /// disabled path could race a test that enables telemetry.
    pub(crate) static TEST_MUTEX: Mutex<()> = Mutex::new(());

    /// Locks the test mutex and enables telemetry in Prometheus mode
    /// (enabled recording, but no per-event stderr stream to pollute
    /// test output).
    pub(crate) fn enable_for_test() -> MutexGuard<'static, ()> {
        let guard = TEST_MUTEX.lock().unwrap_or_else(PoisonError::into_inner);
        crate::init(&crate::TelemetryConfig::with_format(crate::ExportFormat::Prom));
        guard
    }
}
