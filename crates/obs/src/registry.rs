//! The global telemetry registry.
//!
//! One process-wide registry holds every counter, gauge and histogram,
//! keyed by dotted name (`"sim.tick"`, `"forest.tree_fit_us"`). The
//! registry itself is guarded by plain `std::sync::Mutex`es — the crate
//! deliberately sits *below* every other workspace crate and therefore
//! carries zero dependencies — while the hot-path cells are atomics:
//!
//! * counters and gauges are `AtomicU64` cells (gauges store `f64` bits);
//! * histograms take a short per-histogram lock only while folding one
//!   observation in.
//!
//! When telemetry is disabled (the default) every operation returns
//! after a single `Relaxed` atomic load — no locking, no allocation, no
//! clock reads — which is what keeps instrumented hot loops within noise
//! of their uninstrumented cost (see the `obs_overhead` bench).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::config::{ExportFormat, TelemetryConfig};
use crate::histogram::{HistogramSummary, LogHistogram};

static ENABLED: AtomicBool = AtomicBool::new(false);
static FORMAT: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry is currently recording. A single relaxed load —
/// instrumentation call sites may use it to skip argument preparation.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The active export format.
pub fn format() -> ExportFormat {
    match FORMAT.load(Ordering::Relaxed) {
        1 => ExportFormat::Jsonl,
        2 => ExportFormat::Prom,
        _ => ExportFormat::Off,
    }
}

/// Installs a telemetry configuration (normally once, at startup).
/// Enables or disables recording process-wide.
pub fn init(config: &TelemetryConfig) {
    let code = match config.format {
        ExportFormat::Off => 0,
        ExportFormat::Jsonl => 1,
        ExportFormat::Prom => 2,
    };
    FORMAT.store(code, Ordering::Relaxed);
    ENABLED.store(config.enabled(), Ordering::Relaxed);
    crate::journal::set_trace_mode(config.trace);
    crate::export::process_start_us();
}

struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<LogHistogram>>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn counter_cell(name: &str) -> Arc<AtomicU64> {
    let mut map = lock(&registry().counters);
    if let Some(c) = map.get(name) {
        return Arc::clone(c);
    }
    let cell = Arc::new(AtomicU64::new(0));
    map.insert(name.to_string(), Arc::clone(&cell));
    cell
}

fn gauge_cell(name: &str) -> Arc<AtomicU64> {
    let mut map = lock(&registry().gauges);
    if let Some(g) = map.get(name) {
        return Arc::clone(g);
    }
    let cell = Arc::new(AtomicU64::new(0.0_f64.to_bits()));
    map.insert(name.to_string(), Arc::clone(&cell));
    cell
}

fn histogram_cell(name: &str) -> Arc<Mutex<LogHistogram>> {
    let mut map = lock(&registry().histograms);
    if let Some(h) = map.get(name) {
        return Arc::clone(h);
    }
    let cell = Arc::new(Mutex::new(LogHistogram::new()));
    map.insert(name.to_string(), Arc::clone(&cell));
    cell
}

/// Adds `delta` to the named counter. No-op while telemetry is disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    counter_cell(name).fetch_add(delta, Ordering::Relaxed);
}

/// Current value of a counter (0 when never written).
pub fn counter_value(name: &str) -> u64 {
    lock(&registry().counters)
        .get(name)
        .map_or(0, |c| c.load(Ordering::Relaxed))
}

/// Sets the named gauge. No-op while telemetry is disabled.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    gauge_cell(name).store(value.to_bits(), Ordering::Relaxed);
}

/// Current value of a gauge (`None` when never written).
pub fn gauge_value(name: &str) -> Option<f64> {
    lock(&registry().gauges)
        .get(name)
        .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
}

/// Records one observation into the named histogram. No-op while
/// telemetry is disabled.
#[inline]
pub fn observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let cell = histogram_cell(name);
    lock(&cell).record(value);
}

/// Summary of a histogram (`None` when never written).
pub fn histogram_summary(name: &str) -> Option<HistogramSummary> {
    let cell = lock(&registry().histograms).get(name).map(Arc::clone)?;
    let summary = lock(&cell).summary();
    Some(summary)
}

/// Clears every registered metric (benchmarks and tests). The
/// enabled/format state is left untouched.
pub fn reset() {
    lock(&registry().counters).clear();
    lock(&registry().gauges).clear();
    lock(&registry().histograms).clear();
}

/// The three metric families of a [`dump`], in sorted name order.
pub(crate) type MetricsDump =
    (Vec<(String, u64)>, Vec<(String, f64)>, Vec<(String, HistogramSummary)>);

/// Sorted dump of all metrics, used by the exporters.
pub(crate) fn dump() -> MetricsDump {
    let counters: Vec<(String, u64)> = lock(&registry().counters)
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let gauges: Vec<(String, f64)> = lock(&registry().gauges)
        .iter()
        .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
        .collect();
    let hist_cells: Vec<(String, Arc<Mutex<LogHistogram>>)> = lock(&registry().histograms)
        .iter()
        .map(|(k, v)| (k.clone(), Arc::clone(v)))
        .collect();
    let histograms = hist_cells
        .into_iter()
        .map(|(k, v)| {
            let s = lock(&v).summary();
            (k, s)
        })
        .collect();
    (counters, gauges, histograms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::enable_for_test;

    #[test]
    fn disabled_ops_record_nothing() {
        // Uses names no other test touches; telemetry may have been
        // enabled by a concurrently running test, so force-disable via a
        // scoped guard is not possible — instead verify the default-off
        // path through fresh names before any enabling guard is taken in
        // this test.
        let _guard = crate::test_support::TEST_MUTEX
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let was = enabled();
        init(&TelemetryConfig::off());
        counter_add("registry.test.disabled.counter", 5);
        gauge_set("registry.test.disabled.gauge", 1.0);
        observe("registry.test.disabled.hist", 1.0);
        assert_eq!(counter_value("registry.test.disabled.counter"), 0);
        assert_eq!(gauge_value("registry.test.disabled.gauge"), None);
        assert!(histogram_summary("registry.test.disabled.hist").is_none());
        ENABLED.store(was, Ordering::Relaxed);
    }

    #[test]
    fn enabled_ops_accumulate() {
        let _guard = enable_for_test();
        counter_add("registry.test.counter", 2);
        counter_add("registry.test.counter", 3);
        assert_eq!(counter_value("registry.test.counter"), 5);
        gauge_set("registry.test.gauge", 1.5);
        gauge_set("registry.test.gauge", -2.5);
        assert_eq!(gauge_value("registry.test.gauge"), Some(-2.5));
        observe("registry.test.hist", 10.0);
        observe("registry.test.hist", 20.0);
        let s = histogram_summary("registry.test.hist").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 20.0);
    }

    #[test]
    fn concurrent_counter_adds_are_lossless() {
        let _guard = enable_for_test();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        counter_add("registry.test.concurrent", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter_value("registry.test.concurrent"), 4000);
    }
}
