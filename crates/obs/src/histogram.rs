//! Log-bucketed histograms with approximate quantiles.
//!
//! Values are assigned to geometrically growing buckets (ratio ≈ 1.15,
//! i.e. ≤ 15 % relative quantile error), covering roughly twelve decades
//! from `1e-6` upwards — enough for durations in microseconds, queue
//! depths and feature counts alike. Exact `count`, `sum`, `min` and `max`
//! are tracked alongside, and reported quantiles are always clamped into
//! `[min, max]` so `p50`/`p90`/`p99` are bounded by the observed range.

/// Number of geometric buckets (plus one underflow bucket at index 0).
const BUCKETS: usize = 256;
/// Lower bound of bucket 1; values at or below it land in bucket 0.
const FIRST_BOUND: f64 = 1e-6;
/// Geometric growth ratio between consecutive bucket bounds.
const RATIO: f64 = 1.15;

/// A fixed-size log-bucketed histogram.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(value: f64) -> usize {
        if value <= FIRST_BOUND {
            return 0;
        }
        let idx = ((value / FIRST_BOUND).ln() / RATIO.ln()).floor() as isize + 1;
        idx.clamp(0, BUCKETS as isize - 1) as usize
    }

    /// Representative value for a bucket (geometric midpoint of its
    /// bounds).
    fn bucket_value(index: usize) -> f64 {
        if index == 0 {
            return FIRST_BOUND;
        }
        // Bucket i covers (FIRST_BOUND * r^(i-1), FIRST_BOUND * r^i].
        FIRST_BOUND * RATIO.powi(index as i32 - 1) * RATIO.sqrt()
    }

    /// Records one observation. Non-finite values are ignored; negative
    /// values are clamped into the underflow bucket but still update
    /// `min`/`sum`.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Approximate quantile `q ∈ [0, 1]`, clamped into `[min, max]`.
    /// Returns `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation (1-based, ceil like Prometheus).
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_value(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Summary used by the exporters.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
            mean: self.mean().unwrap_or(0.0),
            p50: self.quantile(0.50).unwrap_or(0.0),
            p90: self.quantile(0.90).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
        }
    }
}

/// A point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Mean observation (0 when empty).
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 90th percentile.
    pub p90: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn single_value_quantiles_collapse() {
        let mut h = LogHistogram::new();
        h.record(42.0);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(42.0));
        }
        assert_eq!(h.min(), Some(42.0));
        assert_eq!(h.max(), Some(42.0));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let s = h.summary();
        assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        // 15 % relative-error bound of the bucketing.
        assert!((s.p50 - 500.0).abs() / 500.0 < 0.16, "p50 = {}", s.p50);
        assert!((s.p99 - 990.0).abs() / 990.0 < 0.16, "p99 = {}", s.p99);
    }

    #[test]
    fn negative_and_tiny_values_go_to_underflow_bucket() {
        let mut h = LogHistogram::new();
        h.record(-5.0);
        h.record(0.0);
        h.record(1e-9);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(-5.0));
        // Quantiles stay clamped into the observed range.
        assert!(h.quantile(0.5).unwrap() >= -5.0);
        assert!(h.quantile(0.5).unwrap() <= 1e-9 + 1e-12);
    }

    #[test]
    fn non_finite_values_are_ignored() {
        let mut h = LogHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        let mut h = LogHistogram::new();
        h.record(1e30);
        h.record(1e30);
        assert_eq!(h.quantile(0.5), Some(1e30)); // clamped to max
    }

    #[test]
    fn mean_and_sum_are_exact() {
        let mut h = LogHistogram::new();
        h.record(1.0);
        h.record(2.0);
        h.record(3.0);
        assert_eq!(h.sum(), 6.0);
        assert_eq!(h.mean(), Some(2.0));
    }
}
