//! Property tests pinning the parallel training pipeline and the
//! incremental presort append to their sequential / from-scratch
//! counterparts.
//!
//! The guarantees under test are exact, not statistical:
//!
//! * `generate_training_data` must produce byte-identical output for
//!   every worker count — the parallel schedule only changes *when*
//!   episodes run, never what they compute, because every per-episode
//!   seed is derived from the configuration id rather than from
//!   execution order.
//! * `PresortedDataset::append_rows` must leave the cache bit-identical
//!   to a fresh presort of the concatenated matrix (including NaN cells
//!   and negative zero), so a forest fitted from the incrementally
//!   maintained cache is indistinguishable from one fitted from
//!   scratch.
//! * The `ShadowRetrainer` built on top of both must be deterministic
//!   end to end, and must refuse to promote a challenger that a
//!   corrupted ingest made worse than the champion.

use std::sync::OnceLock;

use monitorless::adapt::{LabeledEpisode, RetrainParams, ShadowRetrainer};
use monitorless::model::{ModelOptions, MonitorlessModel};
use monitorless::training::{
    generate_training_data, run_fresh_episode, table1, TrainingData, TrainingOptions,
};
use monitorless_learn::{Matrix, PresortedDataset, RandomForest, RandomForestParams};
use proptest::prelude::*;

/// SplitMix64 — one seed expands into a full messy dataset per case.
struct Mix(u64);

impl Mix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A duplicate-heavy matrix with NaN cells and both zero signs — the
/// hostile inputs for rank construction.
fn messy_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = Mix(seed);
    let palette = [-3.0, -0.0, 0.0, 0.5, 1.0, 2.5, f64::NAN];
    let mut data = vec![0.0; rows * cols];
    for v in data.iter_mut() {
        *v = if rng.below(2) == 0 {
            palette[rng.below(palette.len() as u64) as usize]
        } else {
            rng.next_f64() * 20.0 - 10.0
        };
    }
    Matrix::from_vec(rows, cols, data)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Generation options small enough for a test yet covering all 25
/// configurations, calibration ramps and co-located batches.
fn tiny_opts(n_jobs: usize) -> TrainingOptions {
    TrainingOptions {
        run_seconds: 20,
        ramp_seconds: 80,
        seed: 11,
        n_jobs,
    }
}

#[test]
fn parallel_generation_is_byte_identical() {
    let base = generate_training_data(&tiny_opts(1)).expect("sequential generation");
    assert!(!base.dataset.is_empty(), "tiny options must still produce rows");
    for n_jobs in [2, 4] {
        let alt = generate_training_data(&tiny_opts(n_jobs)).expect("parallel generation");
        assert_eq!(bits(base.dataset.x()), bits(alt.dataset.x()), "x differs at n_jobs={n_jobs}");
        assert_eq!(base.dataset.y(), alt.dataset.y(), "y differs at n_jobs={n_jobs}");
        assert_eq!(base.dataset.groups(), alt.dataset.groups(), "groups differ at n_jobs={n_jobs}");
        let thr = |d: &TrainingData| -> Vec<(u32, Option<u64>)> {
            d.thresholds
                .iter()
                .map(|(id, t)| (*id, t.map(f64::to_bits)))
                .collect()
        };
        assert_eq!(thr(&base), thr(&alt), "thresholds differ at n_jobs={n_jobs}");
        assert_eq!(
            base.scalein_labels, alt.scalein_labels,
            "scale-in labels differ at n_jobs={n_jobs}"
        );
        assert_eq!(
            base.observed_bottlenecks, alt.observed_bottlenecks,
            "observed bottlenecks differ at n_jobs={n_jobs}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incrementally appending rows to a presorted cache, then fitting,
    /// is bit-identical to presorting the concatenated matrix from
    /// scratch and fitting — including bootstrap sampling, NaN cells
    /// and duplicate-heavy columns.
    #[test]
    fn append_then_fit_matches_concat_then_fit(seed in 0u64..(1u64 << 40)) {
        let mut rng = Mix(seed ^ 0xF17);
        let cols = 3 + rng.below(4) as usize;
        let base_rows = 12 + rng.below(40) as usize;
        let extra_rows = 1 + rng.below(20) as usize;
        let base = messy_matrix(seed ^ 1, base_rows, cols);
        let extra = messy_matrix(seed ^ 2, extra_rows, cols);

        let mut all = Vec::with_capacity((base_rows + extra_rows) * cols);
        all.extend_from_slice(base.as_slice());
        all.extend_from_slice(extra.as_slice());
        let concat = Matrix::from_vec(base_rows + extra_rows, cols, all);

        let fresh = PresortedDataset::build(&concat);
        let mut incremental = PresortedDataset::build(&base);
        incremental.append_rows(&extra);
        prop_assert!(
            incremental.bit_identical(&fresh),
            "incremental cache diverged from the fresh presort"
        );

        let mut y: Vec<u8> =
            (0..base_rows + extra_rows).map(|_| rng.below(2) as u8).collect();
        // Both classes must be present for a meaningful fit.
        y[0] = 0;
        y[1] = 1;
        let params = RandomForestParams {
            n_estimators: 5,
            min_samples_leaf: 2,
            bootstrap: true,
            seed: 9,
            n_jobs: 1,
            ..RandomForestParams::default()
        };
        let mut from_fresh = RandomForest::new(params.clone());
        from_fresh.fit_presorted(&fresh, &y, None).expect("fit on fresh cache");
        let mut from_incremental = RandomForest::new(params);
        from_incremental.fit_presorted(&incremental, &y, None).expect("fit on incremental cache");
        // Debug output captures every node (thresholds, feature ids,
        // leaf distributions) and renders NaN/-0.0 faithfully, so
        // string equality here is structural bit equality.
        prop_assert_eq!(
            format!("{from_fresh:?}"),
            format!("{from_incremental:?}"),
            "forests diverged between append-then-fit and concat-then-fit"
        );
        let pf = from_fresh.to_flat().predict_proba(&concat, 1);
        let pi = from_incremental.to_flat().predict_proba(&concat, 1);
        let pb = |p: &[f64]| p.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(pb(&pf), pb(&pi));
    }
}

/// Shared generation + champion for the shadow-retrain tests — built
/// once; every test clones from it.
fn shared() -> &'static (TrainingData, MonitorlessModel) {
    static CELL: OnceLock<(TrainingData, MonitorlessModel)> = OnceLock::new();
    CELL.get_or_init(|| {
        let data = generate_training_data(&tiny_opts(2)).expect("generation");
        let opts = ModelOptions {
            forest: RandomForestParams {
                n_estimators: 12,
                min_samples_leaf: 5,
                n_jobs: 1,
                ..RandomForestParams::default()
            },
            ..ModelOptions::quick()
        };
        let model = MonitorlessModel::train(&data, &opts).expect("champion");
        (data, model)
    })
}

/// Episode options: long enough for Kneedle to find a knee in the
/// episode's own load/throughput curve.
fn episode_opts() -> TrainingOptions {
    TrainingOptions {
        run_seconds: 150,
        ramp_seconds: 80,
        seed: 11,
        n_jobs: 1,
    }
}

/// One full shadow-retrain pass: ingest a fresh episode, label a second
/// as holdout, retrain. Returns everything observable about the result.
fn retrain_once() -> (bool, u64, u64, usize, String) {
    let (data, model) = shared();
    let mut retrainer = ShadowRetrainer::new(model.clone(), data, RetrainParams::from_model(model))
        .expect("retrainer");
    let configs = table1();
    let opts = episode_opts();
    let fresh = run_fresh_episode(&configs[0], &opts, 0xF00D).expect("fresh episode");
    retrainer.ingest_run(&fresh).expect("ingest");
    let holdout_run = run_fresh_episode(&configs[1], &opts, 0xBEEF).expect("holdout episode");
    let holdout = retrainer
        .label_episode(&holdout_run)
        .expect("holdout labels");
    let report = retrainer.retrain(&holdout).expect("retrain");
    (
        report.promoted,
        report.champion_f1.to_bits(),
        report.challenger_f1.to_bits(),
        retrainer.train_rows(),
        format!("{:?}", retrainer.champion().forest()),
    )
}

#[test]
fn shadow_retrain_is_deterministic() {
    let first = retrain_once();
    let second = retrain_once();
    assert_eq!(first, second, "two identical shadow-retrain passes diverged");
}

#[test]
fn promotion_rejected_when_challenger_worse() {
    let (data, model) = shared();
    let mut retrainer = ShadowRetrainer::new(model.clone(), data, RetrainParams::from_model(model))
        .expect("retrainer");
    let before = format!("{:?}", retrainer.champion().forest());

    // Poison the cache: re-ingest the full base run with every label
    // inverted, so the challenger trains on 50% contradictory data.
    let poison = LabeledEpisode {
        group: 1,
        raw: data.dataset.x().clone(),
        labels: data.dataset.y().iter().map(|l| 1 - l).collect(),
        threshold: None,
    };
    retrainer.ingest(&poison).expect("poison ingest");

    let configs = table1();
    let holdout_run =
        run_fresh_episode(&configs[0], &episode_opts(), 0xBEEF).expect("holdout episode");
    let holdout = retrainer
        .label_episode(&holdout_run)
        .expect("holdout labels");
    assert!(
        holdout.labels.contains(&1),
        "holdout episode must contain saturated seconds for F1 to discriminate"
    );
    let report = retrainer.retrain(&holdout).expect("retrain");
    assert!(
        report.challenger_f1 < report.champion_f1,
        "poisoned challenger should underperform: challenger={} champion={}",
        report.challenger_f1,
        report.champion_f1
    );
    assert!(!report.promoted, "a worse challenger must not be promoted");
    assert_eq!(
        before,
        format!("{:?}", retrainer.champion().forest()),
        "rejected retrain must leave the champion untouched"
    );
}
