//! Property tests pinning the streaming feature-pipeline kernels to the
//! retained legacy paths.
//!
//! The streaming implementations are *exact* reimplementations: for
//! every input — arbitrary group layouts (length-1 groups, groups
//! shorter than the 16-sample window), NaN cells, products on/off, time
//! features on/off, any worker count — stage D, the batch transform and
//! the online per-instance transform must be bit-for-bit identical to
//! the legacy row-cloning code.

use std::sync::{Arc, OnceLock};

use monitorless::features::pipeline::{
    expand_stage_d, expand_stage_d_legacy, FeaturePipeline, FittedPipeline, InstanceTransformer,
    PipelineConfig, WINDOW_LEN,
};
use monitorless::features::{RawLayout, Reduction, TimeExpander};
use monitorless_learn::Matrix;
use monitorless_metrics::catalog::Catalog;
use monitorless_metrics::signals::{ContainerSignals, HostSignals};
use proptest::prelude::*;

/// SplitMix64 — a tiny deterministic generator so each proptest case can
/// expand one seed into a full messy dataset.
struct Mix(u64);

impl Mix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A random group vector for `rows` rows: consecutive blocks with sizes
/// from 1 up to 24 — deliberately covering length-1 groups and groups
/// shorter than the 16-sample window (the first two blocks are forced to
/// size 1 and size 3 when the row budget allows).
fn messy_groups(seed: u64, rows: usize) -> Vec<u32> {
    let mut rng = Mix(seed ^ 0x6060);
    let mut groups = Vec::with_capacity(rows);
    let mut g = 0u32;
    while groups.len() < rows {
        let size = match g {
            0 => 1,
            1 => 3,
            _ => 1 + rng.below(24) as usize,
        };
        for _ in 0..size.min(rows - groups.len()) {
            groups.push(g);
        }
        g += 1;
    }
    groups
}

/// A messy stage-C-like matrix: duplicate-heavy values and NaN cells.
fn messy_matrix(seed: u64, rows: usize, cols: usize, allow_nan: bool) -> Matrix {
    let mut rng = Mix(seed);
    let palette = [-3.0, 0.0, 0.5, 1.0, 2.5];
    let mut data = vec![0.0; rows * cols];
    for v in data.iter_mut() {
        *v = if allow_nan && rng.below(12) == 0 {
            f64::NAN
        } else if rng.below(2) == 0 {
            palette[rng.below(palette.len() as u64) as usize]
        } else {
            rng.next_f64() * 20.0 - 10.0
        };
    }
    Matrix::from_vec(rows, cols, data)
}

/// Random raw metric rows in catalog shape, with occasional NaN cells —
/// the shape `transform_batch` sees in production.
fn messy_raw(seed: u64, rows: usize, width: usize, allow_nan: bool) -> Matrix {
    let mut rng = Mix(seed ^ 0x7171);
    let mut data = vec![0.0; rows * width];
    for v in data.iter_mut() {
        *v = if allow_nan && rng.below(40) == 0 {
            f64::NAN
        } else {
            rng.next_f64() * 120.0
        };
    }
    Matrix::from_vec(rows, width, data)
}

/// Builds a toy labeled run (same shape as the pipeline unit tests).
fn toy_raw(n: usize, seed: u64) -> (Matrix, Vec<u8>, Vec<u32>) {
    let catalog = Catalog::standard();
    let mut rows = Vec::new();
    let mut y = Vec::new();
    let mut groups = Vec::new();
    for g in 0..2u32 {
        for t in 0..n {
            let util = (t as f64 / n as f64).min(1.0);
            let host = HostSignals {
                cpu_util: util * 0.9,
                tcp_estab: 50.0 + 100.0 * util,
                net_in_bytes: 1e6 * util,
                ..HostSignals::default()
            };
            let ctr = ContainerSignals {
                cpu_util: util,
                mem_util: 0.4,
                tcp_conns: 20.0 * util,
                ..ContainerSignals::default()
            };
            let mut v = catalog.expand_host(&host, t as u64, seed ^ u64::from(g));
            v.extend(catalog.expand_container(&ctr, t as u64, seed ^ u64::from(g) ^ 1));
            rows.push(v);
            y.push(u8::from(util > 0.85));
            groups.push(g);
        }
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    (Matrix::from_rows(&refs), y, groups)
}

fn layout() -> RawLayout {
    RawLayout::from_catalog(&Catalog::standard()).unwrap()
}

/// Pipeline variants fitted once and shared across all proptest cases:
/// the quick Select/Select shape, time features off, products off, and a
/// PCA second stage (which exercises the full-stage-D fallback instead
/// of the selective plan).
fn fitted_variants() -> &'static Vec<(&'static str, Arc<FittedPipeline>)> {
    static CELL: OnceLock<Vec<(&'static str, Arc<FittedPipeline>)>> = OnceLock::new();
    CELL.get_or_init(|| {
        let (x, y, groups) = toy_raw(40, 3);
        let quick = PipelineConfig::quick();
        let configs: Vec<(&'static str, PipelineConfig)> = vec![
            ("quick", quick),
            (
                "no_time",
                PipelineConfig {
                    time_features: false,
                    ..quick
                },
            ),
            (
                "no_products",
                PipelineConfig {
                    products: false,
                    ..quick
                },
            ),
            (
                "pca2",
                PipelineConfig {
                    reduce2: Reduction::Pca {
                        variance: 0.999,
                        max_components: 8,
                    },
                    ..quick
                },
            ),
        ];
        configs
            .into_iter()
            .map(|(name, config)| {
                let (fitted, _) = FeaturePipeline::new(config)
                    .fit_transform(&x, &y, &groups, layout())
                    .unwrap_or_else(|e| panic!("fitting {name}: {e:?}"));
                (name, Arc::new(fitted))
            })
            .collect()
    })
}

fn assert_matrices_bit_identical(
    a: &Matrix,
    b: &Matrix,
    what: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(a.rows(), b.rows(), "{}: row count", what);
    prop_assert_eq!(a.cols(), b.cols(), "{}: col count", what);
    for r in 0..a.rows() {
        for (c, (x, y)) in a.row(r).iter().zip(b.row(r)).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{}: cell ({}, {})", what, r, c);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The streaming stage-D kernel (any worker count) is bit-identical
    /// to the legacy row-cloning expansion.
    #[test]
    fn streaming_stage_d_matches_legacy(
        seed in 0u64..1_000_000,
        rows in 1usize..80,
        cols in 1usize..6,
        variant in 0u8..4,
    ) {
        let (with_time, with_products) = (variant & 1 != 0, variant & 2 != 0);
        let c = messy_matrix(seed, rows, cols, true);
        let groups = messy_groups(seed, rows);
        let names: Vec<String> = (0..cols).map(|i| format!("f{i}")).collect();
        let time = with_time.then(|| TimeExpander::new(cols));
        let mut pairs = Vec::new();
        if with_products {
            let mut rng = Mix(seed ^ 0x8282);
            for _ in 0..rng.below(6) + 1 {
                let i = rng.below(cols as u64) as usize;
                let j = rng.below(cols as u64) as usize;
                pairs.push((i.min(j), i.max(j)));
            }
        }
        let (legacy, legacy_names) = expand_stage_d_legacy(&c, &groups, time.as_ref(), &pairs, &names);
        for n_jobs in [1usize, 2, 5] {
            let (fast, fast_names) = expand_stage_d(&c, &groups, time.as_ref(), &pairs, &names, n_jobs);
            prop_assert_eq!(&fast_names, &legacy_names);
            assert_matrices_bit_identical(&fast, &legacy, &format!("stage D, n_jobs={n_jobs}"))?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The fused batch transform is bit-identical to the legacy
    /// stage-by-stage transform on arbitrary raw inputs and group
    /// layouts, for every fitted variant.
    #[test]
    fn streaming_batch_transform_matches_legacy(
        seed in 0u64..1_000_000,
        rows in 1usize..48,
    ) {
        let variants = fitted_variants();
        let (name, fitted) = &variants[(seed % variants.len() as u64) as usize];
        let raw = messy_raw(seed, rows, layout().raw_len(), true);
        let groups = messy_groups(seed, rows);
        let fast = fitted.transform_batch(&raw, &groups).unwrap();
        let legacy = fitted.transform_batch_legacy(&raw, &groups).unwrap();
        assert_matrices_bit_identical(&fast, &legacy, name)?;
    }

    /// The online transformer matches the batch transform bit for bit at
    /// every tick of every group — warmup ticks included, because the
    /// truncated window clamps exactly like a training block's first
    /// seconds — and the zero-allocation push matches the legacy
    /// row-cloning push.
    #[test]
    fn online_matches_batch_for_every_group(
        seed in 0u64..1_000_000,
        rows in 1usize..48,
    ) {
        let variants = fitted_variants();
        let (name, fitted) = &variants[(seed % variants.len() as u64) as usize];
        let raw = messy_raw(seed, rows, layout().raw_len(), true);
        let groups = messy_groups(seed, rows);
        let batch = fitted.transform_batch(&raw, &groups).unwrap();
        let mut r = 0;
        while r < rows {
            let g = groups[r];
            let mut online = InstanceTransformer::new(Arc::clone(fitted));
            let mut online_legacy = InstanceTransformer::new(Arc::clone(fitted));
            let mut t = 0;
            while r < rows && groups[r] == g {
                let legacy = online_legacy.push_legacy(raw.row(r)).unwrap();
                let out = online.push(raw.row(r)).unwrap();
                prop_assert_eq!(out.len(), batch.cols());
                for (c, ((a, b), l)) in out.iter().zip(batch.row(r)).zip(&legacy).enumerate() {
                    prop_assert_eq!(a.to_bits(), b.to_bits(),
                        "{}: group {} tick {} col {} vs batch", name, g, t, c);
                    prop_assert_eq!(a.to_bits(), l.to_bits(),
                        "{}: group {} tick {} col {} vs legacy push", name, g, t, c);
                }
                r += 1;
                t += 1;
            }
            prop_assert_eq!(online.warmup(), t.min(WINDOW_LEN));
        }
    }
}

/// Fitting and transforming are independent of the worker count: the
/// same data fitted with `n_jobs = 1` and `n_jobs = 3` yields bitwise
/// identical training matrices, fitted parameters and batch transforms.
#[test]
fn fit_and_transform_are_n_jobs_independent() {
    let (x, y, groups) = toy_raw(40, 5);
    let serial_cfg = PipelineConfig {
        n_jobs: 1,
        ..PipelineConfig::quick()
    };
    let parallel_cfg = PipelineConfig {
        n_jobs: 3,
        ..PipelineConfig::quick()
    };
    let (serial, xt_serial) = FeaturePipeline::new(serial_cfg)
        .fit_transform(&x, &y, &groups, layout())
        .unwrap();
    let (parallel, xt_parallel) = FeaturePipeline::new(parallel_cfg)
        .fit_transform(&x, &y, &groups, layout())
        .unwrap();
    assert_eq!(xt_serial.rows(), xt_parallel.rows());
    for r in 0..xt_serial.rows() {
        for (a, b) in xt_serial.row(r).iter().zip(xt_parallel.row(r)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    assert_eq!(serial.feature_names(), parallel.feature_names());
    let raw = messy_raw(11, 33, layout().raw_len(), true);
    let probe_groups = messy_groups(11, 33);
    let a = serial.transform_batch(&raw, &probe_groups).unwrap();
    let b = parallel.transform_batch(&raw, &probe_groups).unwrap();
    for r in 0..a.rows() {
        for (x, y) in a.row(r).iter().zip(b.row(r)) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
