//! Domain adaptation — the Section 5 "Calibration" direction.
//!
//! "Monitorless may require additional calibration to infer the
//! performance of applications with resource usage patterns
//! significantly different from those in the training set … in the case
//! where there is no labeled data in the target domain." This module
//! implements the simplest useful heuristic of that family: per-metric
//! first/second-moment alignment. Unlabeled target-domain samples are
//! linearly mapped so each raw metric's mean and spread match the
//! training distribution before entering the feature pipeline —
//! correcting hardware offsets (different clock speeds, link capacities)
//! without touching the trained model.
//!
//! Relative utilizations and the binary level features derived from them
//! are intentionally *not* remapped (they are already scale-free), so
//! alignment is applied only to metrics whose training/target moments
//! differ materially.

use monitorless_learn::Matrix;

use crate::Error;

/// Per-feature affine alignment from a target domain to the training
/// domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainAdapter {
    scale: Vec<f64>,
    offset: Vec<f64>,
}

/// Features whose moment ratio is within this factor of 1 are left
/// untouched (the distribution shift is noise, not hardware).
const MATERIAL_SHIFT: f64 = 1.15;

impl DomainAdapter {
    /// Fits the adapter from *unlabeled* raw samples of the source
    /// (training) and target domains.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] on empty inputs or column mismatch.
    pub fn fit(source: &Matrix, target: &Matrix) -> Result<Self, Error> {
        if source.rows() == 0 || target.rows() == 0 {
            return Err(Error::Invalid("empty domain sample".into()));
        }
        if source.cols() != target.cols() {
            return Err(Error::Invalid("domain feature counts differ".into()));
        }
        let s_mean = source.column_means();
        let s_std = source.column_stds();
        let t_mean = target.column_means();
        let t_std = target.column_stds();
        let mut scale = Vec::with_capacity(source.cols());
        let mut offset = Vec::with_capacity(source.cols());
        for c in 0..source.cols() {
            let (a, b) = if t_std[c] > 1e-12 && s_std[c] > 1e-12 {
                let ratio = s_std[c] / t_std[c];
                if !(1.0 / MATERIAL_SHIFT..=MATERIAL_SHIFT).contains(&ratio)
                    || relative_gap(s_mean[c], t_mean[c]) > MATERIAL_SHIFT - 1.0
                {
                    // x' = (x - μ_t) * σ_s/σ_t + μ_s
                    (ratio, s_mean[c] - t_mean[c] * ratio)
                } else {
                    (1.0, 0.0)
                }
            } else {
                (1.0, 0.0)
            };
            scale.push(a);
            offset.push(b);
        }
        Ok(DomainAdapter { scale, offset })
    }

    /// Number of features the adapter actually remaps.
    pub fn adapted_features(&self) -> usize {
        self.scale
            .iter()
            .zip(&self.offset)
            .filter(|(&a, &b)| a != 1.0 || b != 0.0)
            .count()
    }

    /// Adapts one raw sample in place.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fitted width.
    pub fn adapt_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.scale.len(), "row width");
        for ((v, &a), &b) in row.iter_mut().zip(&self.scale).zip(&self.offset) {
            *v = (*v * a + b).max(0.0);
        }
    }

    /// Adapts a whole matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted width.
    pub fn adapt_matrix(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            self.adapt_row(out.row_mut(r));
        }
        out
    }
}

fn relative_gap(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom < 1e-12 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monitorless_std::rng::{Rng, StdRng};

    fn domain(n: usize, scale: f64, shift: f64, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for _ in 0..n {
            rows.push(vec![
                (rng.gen::<f64>() * 100.0) * scale + shift,
                rng.gen::<f64>() * 10.0, // stable feature
            ]);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }

    #[test]
    fn adapter_restores_source_moments() {
        let source = domain(300, 1.0, 0.0, 1);
        let target = domain(300, 4.0, 50.0, 2); // different "hardware"
        let adapter = DomainAdapter::fit(&source, &target).unwrap();
        let adapted = adapter.adapt_matrix(&target);
        let s_mean = source.column_means()[0];
        let a_mean = adapted.column_means()[0];
        assert!((s_mean - a_mean).abs() < 0.1 * s_mean, "{s_mean} vs {a_mean}");
        let s_std = source.column_stds()[0];
        let a_std = adapted.column_stds()[0];
        assert!((s_std - a_std).abs() < 0.15 * s_std);
    }

    #[test]
    fn stable_features_are_left_alone() {
        let source = domain(300, 1.0, 0.0, 3);
        let target = domain(300, 4.0, 50.0, 4);
        let adapter = DomainAdapter::fit(&source, &target).unwrap();
        // Only the shifted feature is remapped.
        assert_eq!(adapter.adapted_features(), 1);
        let mut row = vec![10.0, 5.0];
        adapter.adapt_row(&mut row);
        assert_eq!(row[1], 5.0);
        assert_ne!(row[0], 10.0);
    }

    #[test]
    fn identical_domains_need_no_adaptation() {
        let source = domain(200, 1.0, 0.0, 5);
        let target = domain(200, 1.0, 0.0, 6);
        let adapter = DomainAdapter::fit(&source, &target).unwrap();
        assert_eq!(adapter.adapted_features(), 0);
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let a = domain(10, 1.0, 0.0, 7);
        let b = Matrix::zeros(5, 3);
        assert!(DomainAdapter::fit(&a, &b).is_err());
        assert!(DomainAdapter::fit(&Matrix::zeros(0, 2), &a).is_err());
    }

    #[test]
    fn adapted_values_stay_nonnegative() {
        let source = domain(100, 1.0, 0.0, 8);
        let target = domain(100, 1.0, 500.0, 9);
        let adapter = DomainAdapter::fit(&source, &target).unwrap();
        let mut row = vec![0.0, 0.0];
        adapter.adapt_row(&mut row);
        assert!(row.iter().all(|&v| v >= 0.0));
    }
}
