//! Domain adaptation and the production retraining loop.
//!
//! "Monitorless may require additional calibration to infer the
//! performance of applications with resource usage patterns
//! significantly different from those in the training set … in the case
//! where there is no labeled data in the target domain." This module
//! implements the simplest useful heuristic of that family: per-metric
//! first/second-moment alignment. Unlabeled target-domain samples are
//! linearly mapped so each raw metric's mean and spread match the
//! training distribution before entering the feature pipeline —
//! correcting hardware offsets (different clock speeds, link capacities)
//! without touching the trained model.
//!
//! Relative utilizations and the binary level features derived from them
//! are intentionally *not* remapped (they are already scale-free), so
//! alignment is applied only to metrics whose training/target moments
//! differ materially.
//!
//! The second half of the module is the **shadow-retrain fast path**
//! ([`ShadowRetrainer`]): drift-flagged fresh episodes are labeled with
//! the existing Kneedle pipeline, appended to a presorted training
//! cache incrementally
//! ([`monitorless_learn::PresortedDataset::append_rows`] — paying only
//! for the delta, not a full re-sort), a challenger forest is refit on
//! the cache, and the champion is replaced only when a
//! champion/challenger evaluation on a held-out episode passes.

use monitorless_label::kneedle::KneedleParams;
use monitorless_label::{SaturationDirection, SaturationThreshold};
use monitorless_learn::{Matrix, PresortedDataset, RandomForest, RandomForestParams};
use monitorless_obs as obs;

use crate::model::MonitorlessModel;
use crate::training::{saturation_label_parts, TrainingData};
use crate::Error;

/// Per-feature affine alignment from a target domain to the training
/// domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainAdapter {
    scale: Vec<f64>,
    offset: Vec<f64>,
}

/// Features whose moment ratio is within this factor of 1 are left
/// untouched (the distribution shift is noise, not hardware).
const MATERIAL_SHIFT: f64 = 1.15;

impl DomainAdapter {
    /// Fits the adapter from *unlabeled* raw samples of the source
    /// (training) and target domains.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] on empty inputs or column mismatch.
    pub fn fit(source: &Matrix, target: &Matrix) -> Result<Self, Error> {
        if source.rows() == 0 || target.rows() == 0 {
            return Err(Error::Invalid("empty domain sample".into()));
        }
        if source.cols() != target.cols() {
            return Err(Error::Invalid("domain feature counts differ".into()));
        }
        let s_mean = source.column_means();
        let s_std = source.column_stds();
        let t_mean = target.column_means();
        let t_std = target.column_stds();
        let mut scale = Vec::with_capacity(source.cols());
        let mut offset = Vec::with_capacity(source.cols());
        for c in 0..source.cols() {
            let (a, b) = if t_std[c] > 1e-12 && s_std[c] > 1e-12 {
                let ratio = s_std[c] / t_std[c];
                if !(1.0 / MATERIAL_SHIFT..=MATERIAL_SHIFT).contains(&ratio)
                    || relative_gap(s_mean[c], t_mean[c]) > MATERIAL_SHIFT - 1.0
                {
                    // x' = (x - μ_t) * σ_s/σ_t + μ_s
                    (ratio, s_mean[c] - t_mean[c] * ratio)
                } else {
                    (1.0, 0.0)
                }
            } else {
                (1.0, 0.0)
            };
            scale.push(a);
            offset.push(b);
        }
        Ok(DomainAdapter { scale, offset })
    }

    /// Number of features the adapter actually remaps.
    pub fn adapted_features(&self) -> usize {
        self.scale
            .iter()
            .zip(&self.offset)
            .filter(|(&a, &b)| a != 1.0 || b != 0.0)
            .count()
    }

    /// Adapts one raw sample in place.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fitted width.
    pub fn adapt_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.scale.len(), "row width");
        for ((v, &a), &b) in row.iter_mut().zip(&self.scale).zip(&self.offset) {
            *v = (*v * a + b).max(0.0);
        }
    }

    /// Adapts a whole matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted width.
    pub fn adapt_matrix(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            self.adapt_row(out.row_mut(r));
        }
        out
    }
}

fn relative_gap(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom < 1e-12 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// One fresh, unlabeled serving window: chronological raw samples plus
/// the per-tick KPI series needed to label them. Produced by
/// [`crate::training::run_fresh_episode`] in the simulator; in
/// production this is the window a drift alert flagged.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeRun {
    /// Group id of the rows (the Table 1 configuration id).
    pub group: u32,
    /// Raw 1040-metric samples, chronological.
    pub raw: Matrix,
    /// Offered load per recorded tick.
    pub offered_rps: Vec<f64>,
    /// Achieved throughput per recorded tick.
    pub throughput_rps: Vec<f64>,
    /// Failed-request fraction per recorded tick.
    pub failure_fraction: Vec<f64>,
}

/// An episode with its per-tick saturation labels attached.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledEpisode {
    /// Group id of the rows.
    pub group: u32,
    /// Raw samples, chronological.
    pub raw: Matrix,
    /// Saturation label per row.
    pub labels: Vec<u8>,
    /// The Υ the Kneedle calibration found for this episode (`None`
    /// when the window never showed a knee — labels then come from
    /// failures alone).
    pub threshold: Option<f64>,
}

/// Hyper-parameters of the shadow retraining loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrainParams {
    /// Challenger forest parameters (including its seed — retraining
    /// is deterministic for a fixed ingest sequence).
    pub forest: RandomForestParams,
    /// Allowed challenger-F1 shortfall against the champion on the
    /// held-out episode. `0.0` means the challenger must match or beat
    /// the champion to be promoted.
    pub tolerance: f64,
}

impl RetrainParams {
    /// Challenger parameters mirroring the champion's own forest.
    pub fn from_model(model: &MonitorlessModel) -> Self {
        RetrainParams {
            forest: model.forest().params().clone(),
            tolerance: 0.0,
        }
    }
}

/// Outcome of one champion/challenger round.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrainReport {
    /// Whether the challenger replaced the champion.
    pub promoted: bool,
    /// Champion F1 on the held-out episode.
    pub champion_f1: f64,
    /// Challenger F1 on the held-out episode.
    pub challenger_f1: f64,
    /// Rows in the training cache the challenger was fitted on.
    pub train_rows: usize,
    /// Rows in the held-out episode.
    pub holdout_rows: usize,
}

/// The shadow-retrain fast path: an incrementally growing presorted
/// training cache in the champion's *transformed* feature space, plus
/// the champion/challenger promotion gate.
///
/// The lifecycle closing the ROADMAP item:
///
/// 1. a drift alert flags a serving window → record it as an
///    [`EpisodeRun`];
/// 2. [`ShadowRetrainer::label_episode`] labels it with the existing
///    Kneedle pipeline (knee on offered-vs-throughput, failures
///    override);
/// 3. [`ShadowRetrainer::ingest`] transforms the rows through the
///    champion's fitted pipeline and appends them to the presorted
///    cache via [`PresortedDataset::append_rows`] — paying one sort of
///    the delta instead of a full rebuild;
/// 4. [`ShadowRetrainer::retrain`] refits a challenger forest directly
///    on the cache ([`RandomForest::fit_presorted`]) and promotes it
///    only if it matches or beats the champion's F1 on a held-out
///    episode.
///
/// The pipeline itself is not refit — the cache lives in the
/// champion's feature space, which is what makes both the incremental
/// append and the cheap challenger fit possible.
#[derive(Debug, Clone)]
pub struct ShadowRetrainer {
    champion: MonitorlessModel,
    ps: PresortedDataset,
    y: Vec<u8>,
    groups: Vec<u32>,
    params: RetrainParams,
}

impl ShadowRetrainer {
    /// Seeds the retrainer with the champion and its original training
    /// data: the base rows are transformed through the champion's
    /// pipeline once and presorted once; every later ingest is
    /// incremental.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn new(
        champion: MonitorlessModel,
        data: &TrainingData,
        params: RetrainParams,
    ) -> Result<Self, Error> {
        let x = champion
            .pipeline()
            .transform_batch(data.dataset.x(), data.dataset.groups())?;
        let mut ps = PresortedDataset::build(&x);
        // Headroom for the ingest loop: the first episodes land in
        // existing slack instead of forcing a cache re-stride.
        ps.reserve_rows(x.rows() / 4 + 256);
        Ok(ShadowRetrainer {
            champion,
            ps,
            y: data.dataset.y().to_vec(),
            groups: data.dataset.groups().to_vec(),
            params,
        })
    }

    /// The current champion model.
    pub fn champion(&self) -> &MonitorlessModel {
        &self.champion
    }

    /// Rows currently in the training cache.
    pub fn train_rows(&self) -> usize {
        self.ps.n_rows()
    }

    /// Labels a fresh episode with the existing Kneedle pipeline: Υ is
    /// calibrated from the episode's own offered/throughput series
    /// (`None` when no knee exists), then each tick is labeled exactly
    /// like training data
    /// ([`crate::training::saturation_label_parts`]).
    ///
    /// # Errors
    ///
    /// Propagates labeling errors other than a missing knee.
    pub fn label_episode(&self, episode: &EpisodeRun) -> Result<LabeledEpisode, Error> {
        let threshold = match SaturationThreshold::calibrate(
            &episode.offered_rps,
            &episode.throughput_rps,
            &KneedleParams::default(),
            SaturationDirection::Above,
        ) {
            Ok(t) => Some(t),
            Err(monitorless_label::Error::NoKnee) => None,
            Err(e) => return Err(e.into()),
        };
        let labels = episode
            .throughput_rps
            .iter()
            .zip(&episode.failure_fraction)
            .map(|(&tput, &fail)| saturation_label_parts(tput, fail, threshold.as_ref()))
            .collect();
        Ok(LabeledEpisode {
            group: episode.group,
            raw: episode.raw.clone(),
            labels,
            threshold: threshold.map(|t| t.upsilon()),
        })
    }

    /// Transforms a labeled episode through the champion's pipeline and
    /// appends it to the presorted cache incrementally. Returns the
    /// number of rows appended.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors; [`Error::Invalid`] when the label
    /// count does not match the episode's rows.
    pub fn ingest(&mut self, episode: &LabeledEpisode) -> Result<usize, Error> {
        if episode.labels.len() != episode.raw.rows() {
            return Err(Error::Invalid("episode labels do not match its rows".into()));
        }
        let groups = vec![episode.group; episode.raw.rows()];
        let x = self
            .champion
            .pipeline()
            .transform_batch(&episode.raw, &groups)?;
        self.ps.append_rows(&x);
        self.y.extend(&episode.labels);
        self.groups.extend(groups);
        obs::counter_add("adapt.ingested_rows", x.rows() as u64);
        Ok(x.rows())
    }

    /// Labels and ingests a fresh episode in one step.
    ///
    /// # Errors
    ///
    /// As [`ShadowRetrainer::label_episode`] and
    /// [`ShadowRetrainer::ingest`].
    pub fn ingest_run(&mut self, episode: &EpisodeRun) -> Result<usize, Error> {
        let labeled = self.label_episode(episode)?;
        self.ingest(&labeled)
    }

    /// Fits a challenger forest on the presorted cache and promotes it
    /// iff its F1 on the held-out episode is within
    /// [`RetrainParams::tolerance`] of the champion's (ties promote:
    /// the challenger has seen strictly more data).
    ///
    /// # Errors
    ///
    /// Propagates learner and pipeline errors.
    pub fn retrain(&mut self, holdout: &LabeledEpisode) -> Result<RetrainReport, Error> {
        let span = obs::Span::enter("adapt.retrain");
        let mut challenger = RandomForest::new(self.params.forest.clone());
        challenger.fit_presorted(&self.ps, &self.y, None)?;

        let holdout_groups = vec![holdout.group; holdout.raw.rows()];
        let hx = self
            .champion
            .pipeline()
            .transform_batch(&holdout.raw, &holdout_groups)?;
        let n_jobs = self.champion.forest().params().n_jobs;
        let threshold = self.champion.threshold();
        let decide = |probs: Vec<f64>| -> Vec<u8> {
            probs
                .into_iter()
                .map(|p| u8::from(p >= threshold))
                .collect()
        };
        let champion_pred = decide(self.champion.flat().predict_proba(&hx, n_jobs));
        let challenger_pred = decide(challenger.to_flat().predict_proba(&hx, n_jobs));
        let champion_f1 = monitorless_learn::metrics::f1_score(&holdout.labels, &champion_pred);
        let challenger_f1 = monitorless_learn::metrics::f1_score(&holdout.labels, &challenger_pred);

        let promoted = challenger_f1 + self.params.tolerance >= champion_f1;
        if promoted {
            self.champion = self.champion.clone().with_forest(challenger)?;
        }
        drop(span);
        obs::counter_add("adapt.retrains", 1);
        obs::counter_add("adapt.promotions", u64::from(promoted));
        Ok(RetrainReport {
            promoted,
            champion_f1,
            challenger_f1,
            train_rows: self.ps.n_rows(),
            holdout_rows: holdout.raw.rows(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monitorless_std::rng::{Rng, StdRng};

    fn domain(n: usize, scale: f64, shift: f64, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for _ in 0..n {
            rows.push(vec![
                (rng.gen::<f64>() * 100.0) * scale + shift,
                rng.gen::<f64>() * 10.0, // stable feature
            ]);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }

    #[test]
    fn adapter_restores_source_moments() {
        let source = domain(300, 1.0, 0.0, 1);
        let target = domain(300, 4.0, 50.0, 2); // different "hardware"
        let adapter = DomainAdapter::fit(&source, &target).unwrap();
        let adapted = adapter.adapt_matrix(&target);
        let s_mean = source.column_means()[0];
        let a_mean = adapted.column_means()[0];
        assert!((s_mean - a_mean).abs() < 0.1 * s_mean, "{s_mean} vs {a_mean}");
        let s_std = source.column_stds()[0];
        let a_std = adapted.column_stds()[0];
        assert!((s_std - a_std).abs() < 0.15 * s_std);
    }

    #[test]
    fn stable_features_are_left_alone() {
        let source = domain(300, 1.0, 0.0, 3);
        let target = domain(300, 4.0, 50.0, 4);
        let adapter = DomainAdapter::fit(&source, &target).unwrap();
        // Only the shifted feature is remapped.
        assert_eq!(adapter.adapted_features(), 1);
        let mut row = vec![10.0, 5.0];
        adapter.adapt_row(&mut row);
        assert_eq!(row[1], 5.0);
        assert_ne!(row[0], 10.0);
    }

    #[test]
    fn identical_domains_need_no_adaptation() {
        let source = domain(200, 1.0, 0.0, 5);
        let target = domain(200, 1.0, 0.0, 6);
        let adapter = DomainAdapter::fit(&source, &target).unwrap();
        assert_eq!(adapter.adapted_features(), 0);
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let a = domain(10, 1.0, 0.0, 7);
        let b = Matrix::zeros(5, 3);
        assert!(DomainAdapter::fit(&a, &b).is_err());
        assert!(DomainAdapter::fit(&Matrix::zeros(0, 2), &a).is_err());
    }

    #[test]
    fn adapted_values_stay_nonnegative() {
        let source = domain(100, 1.0, 0.0, 8);
        let target = domain(100, 1.0, 500.0, 9);
        let adapter = DomainAdapter::fit(&source, &target).unwrap();
        let mut row = vec![0.0, 0.0];
        adapter.adapt_row(&mut row);
        assert!(row.iter().all(|&v| v >= 0.0));
    }
}
