//! Streaming covariate-drift detection over the serving feature stream.
//!
//! Monitorless's premise — a platform-metrics-only model standing in
//! for app-level monitoring — holds only while the serving feature
//! distribution looks like the training distribution; the model is
//! itself an unmonitored component the moment it drifts. This module
//! monitors the monitor:
//!
//! * [`DriftProfile`] — a compact reference profile captured from the
//!   *transformed* training matrix at fit time (equi-depth quantile bin
//!   edges plus mean/std per feature) and serialized alongside
//!   [`crate::model::MonitorlessModel`]. Equi-depth edges make the
//!   reference distribution uniform by construction (`1/k` per bin), so no
//!   per-bin reference counts need to ship.
//! * [`DriftDetector`] — a zero-allocation-per-row streaming detector
//!   fed every feature row the orchestrator predicts on. Per feature it
//!   maintains Welford online mean/variance over the whole stream and a
//!   sliding-window histogram over the reference bins (a ring of bin
//!   indices, updated incrementally), and every `check_every` rows
//!   scores each feature with the Population Stability Index
//!   `PSI = Σ (p_i − q_i) · ln(p_i / q_i)` of the window against the
//!   uniform reference. Industry folklore reads PSI < 0.1 as stable
//!   and PSI > 0.25 as significant shift; those are the default
//!   hysteresis bounds.
//! * **Hysteresis.** A feature *trips* when its PSI crosses
//!   [`DriftConfig::psi_alert`] and must stay tripped for
//!   [`DriftConfig::patience`] consecutive checks before the detector
//!   raises an alert; it re-arms only after dropping below
//!   [`DriftConfig::psi_clear`]. A stationary stream therefore stays
//!   quiet (sampling noise has expected PSI ≈ (k−1)/window, an order of
//!   magnitude under the alert bound) while a sustained covariate shift
//!   trips within a bounded number of ticks — roughly
//!   `min_samples + patience · check_every` rows after onset
//!   (`tests/drift_detection.rs` pins both properties).
//!
//! The detector publishes `drift.checks` / `drift.alerts` counters and
//! a `drift.max_psi` gauge through `monitorless-obs`; the orchestrator
//! adds trace-stamped journal records on alert transitions.

use monitorless_learn::Matrix;
use monitorless_obs as obs;

/// Number of equi-depth bins per feature in the reference profile. Ten
/// is the classic PSI decile convention: coarse enough that a 256-row
/// window fills every bin, fine enough to see mean *and* scale shifts.
pub const PROFILE_BINS: usize = 10;

/// Reference statistics for one feature, captured at fit time.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureProfile {
    /// Interior equi-depth bin edges, ascending (`PROFILE_BINS − 1` of
    /// them; values `<= edges[0]` fall in bin 0, `> edges.last()` in the
    /// last bin). Degenerate (constant) features repeat one edge.
    pub edges: Vec<f64>,
    /// Training mean.
    pub mean: f64,
    /// Training standard deviation (population).
    pub std: f64,
}

monitorless_std::json_struct!(FeatureProfile { edges, mean, std });

impl FeatureProfile {
    /// Bin index of `v` among this feature's equi-depth bins. NaN — for
    /// which every comparison is false — lands in the last bin, mirroring
    /// the tree walk's NaN-goes-right convention.
    #[inline]
    pub fn bin(&self, v: f64) -> usize {
        self.edges.partition_point(|e| *e < v)
    }
}

/// A per-feature reference profile of the training feature matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftProfile {
    /// One profile per pipeline output feature.
    pub features: Vec<FeatureProfile>,
}

monitorless_std::json_struct!(DriftProfile { features });

impl DriftProfile {
    /// Captures a profile from a (transformed) training matrix: per
    /// column, equi-depth decile edges plus mean/std.
    ///
    /// # Panics
    ///
    /// Panics if `x` has no rows.
    pub fn from_matrix(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot profile an empty matrix");
        let rows = x.rows();
        let mut features = Vec::with_capacity(x.cols());
        let mut col = vec![0.0; rows];
        for c in 0..x.cols() {
            for (r, slot) in col.iter_mut().enumerate() {
                *slot = x.row(r)[c];
            }
            // NaNs sort last under total_cmp, biasing high quantile
            // edges; training matrices are imputed upstream so this is
            // a safety net, not a design point.
            col.sort_by(|a, b| a.total_cmp(b));
            let edges = (1..PROFILE_BINS)
                .map(|i| col[(i * rows / PROFILE_BINS).min(rows - 1)])
                .collect();
            let mean = col.iter().sum::<f64>() / rows as f64;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / rows as f64;
            features.push(FeatureProfile {
                edges,
                mean,
                std: var.sqrt(),
            });
        }
        DriftProfile { features }
    }

    /// Number of profiled features.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Creates a streaming detector over this profile.
    pub fn detector(&self, config: DriftConfig) -> DriftDetector {
        DriftDetector::new(self.clone(), config)
    }
}

/// Tuning knobs for [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Sliding-window length (rows) for the PSI histogram.
    pub window: usize,
    /// Rows required before the first score (avoids small-sample PSI
    /// spikes).
    pub min_samples: usize,
    /// Scoring cadence in rows.
    pub check_every: usize,
    /// PSI at or above which a feature trips.
    pub psi_alert: f64,
    /// PSI below which a tripped feature re-arms (hysteresis).
    pub psi_clear: f64,
    /// Consecutive tripped checks before an alert is raised.
    pub patience: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 256,
            min_samples: 128,
            check_every: 32,
            psi_alert: 0.25,
            psi_clear: 0.10,
            patience: 3,
        }
    }
}

/// Outcome of one scoring pass (every [`DriftConfig::check_every`] rows
/// once warmed up).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftCheck {
    /// Largest per-feature PSI this check.
    pub max_psi: f64,
    /// Feature index attaining `max_psi`.
    pub max_feature: usize,
    /// Features whose alert state switched on during this check.
    pub new_alerts: Vec<usize>,
}

/// Streaming per-feature drift detector (see the module docs).
#[derive(Debug, Clone)]
pub struct DriftDetector {
    profile: DriftProfile,
    config: DriftConfig,
    /// Ring of bin indices, `window × n_features`, row-major.
    ring: Vec<u8>,
    /// Current window histogram, `n_features × PROFILE_BINS`.
    counts: Vec<u32>,
    /// Next ring row to overwrite.
    head: usize,
    /// Rows currently in the window (saturates at `window`).
    filled: usize,
    /// Total rows ever pushed.
    rows: u64,
    rows_since_check: usize,
    /// Welford online mean per feature (whole stream).
    mean: Vec<f64>,
    /// Welford online M2 per feature (whole stream).
    m2: Vec<f64>,
    /// Latest PSI per feature.
    scores: Vec<f64>,
    /// Consecutive tripped checks per feature.
    trips: Vec<u32>,
    /// Latched alert state per feature.
    alerted: Vec<bool>,
}

impl DriftDetector {
    /// Creates a detector over `profile`.
    ///
    /// # Panics
    ///
    /// Panics on a zero-feature profile or degenerate config
    /// (`window == 0`, `check_every == 0`, or `psi_clear > psi_alert`).
    pub fn new(profile: DriftProfile, config: DriftConfig) -> Self {
        let n = profile.n_features();
        assert!(n > 0, "drift profile has no features");
        assert!(config.window > 0 && config.check_every > 0, "degenerate drift config");
        assert!(config.psi_clear <= config.psi_alert, "hysteresis bounds inverted");
        DriftDetector {
            ring: vec![0; config.window * n],
            counts: vec![0; n * PROFILE_BINS],
            head: 0,
            filled: 0,
            rows: 0,
            rows_since_check: 0,
            mean: vec![0.0; n],
            m2: vec![0.0; n],
            scores: vec![0.0; n],
            trips: vec![0; n],
            alerted: vec![false; n],
            profile,
            config,
        }
    }

    /// Feeds one feature row. Allocation-free. Returns `Some` when this
    /// row completed a scoring pass.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the profiled feature count.
    pub fn push(&mut self, row: &[f64]) -> Option<DriftCheck> {
        let n = self.profile.n_features();
        assert!(row.len() >= n, "row has {} features, profile has {n}", row.len());
        let base = self.head * n;
        for (f, (&v, fp)) in row[..n].iter().zip(&self.profile.features).enumerate() {
            // Evict the outgoing row's bin once the ring has wrapped.
            if self.filled == self.config.window {
                let old = self.ring[base + f] as usize;
                self.counts[f * PROFILE_BINS + old] -= 1;
            }
            let bin = fp.bin(v);
            self.ring[base + f] = bin as u8;
            self.counts[f * PROFILE_BINS + bin] += 1;
            // Welford over the whole stream.
            let count = (self.rows + 1) as f64;
            let delta = v - self.mean[f];
            self.mean[f] += delta / count;
            self.m2[f] += delta * (v - self.mean[f]);
        }
        self.head = (self.head + 1) % self.config.window;
        self.filled = (self.filled + 1).min(self.config.window);
        self.rows += 1;
        self.rows_since_check += 1;
        if self.rows < self.config.min_samples as u64
            || self.rows_since_check < self.config.check_every
        {
            return None;
        }
        self.rows_since_check = 0;
        Some(self.check())
    }

    /// Scores every feature's window against the reference and updates
    /// the hysteresis state.
    fn check(&mut self) -> DriftCheck {
        let n = self.profile.n_features();
        let total = self.filled as f64;
        let q = 1.0 / PROFILE_BINS as f64; // equi-depth reference mass
        let floor = 0.5 / total; // half-a-sample smoothing
        let mut max_psi = 0.0;
        let mut max_feature = 0;
        let mut new_alerts = Vec::new();
        for f in 0..n {
            let counts = &self.counts[f * PROFILE_BINS..(f + 1) * PROFILE_BINS];
            let mut psi = 0.0;
            for &c in counts {
                let p = (c as f64 / total).max(floor);
                psi += (p - q) * (p / q).ln();
            }
            self.scores[f] = psi;
            if psi > max_psi {
                max_psi = psi;
                max_feature = f;
            }
            if psi >= self.config.psi_alert {
                self.trips[f] += 1;
                if self.trips[f] >= self.config.patience as u32 && !self.alerted[f] {
                    self.alerted[f] = true;
                    new_alerts.push(f);
                }
            } else if psi < self.config.psi_clear {
                self.trips[f] = 0;
                self.alerted[f] = false;
            }
            // Between clear and alert: hold state (hysteresis band).
        }
        obs::counter_add("drift.checks", 1);
        obs::gauge_set("drift.max_psi", max_psi);
        if !new_alerts.is_empty() {
            obs::counter_add("drift.alerts", new_alerts.len() as u64);
        }
        DriftCheck {
            max_psi,
            max_feature,
            new_alerts,
        }
    }

    /// Latest PSI per feature (zeros before the first check).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Whether any feature is currently in the alerted state.
    pub fn drifting(&self) -> bool {
        self.alerted.iter().any(|&a| a)
    }

    /// Indices of currently-alerted features.
    pub fn alerted_features(&self) -> Vec<usize> {
        (0..self.alerted.len())
            .filter(|&f| self.alerted[f])
            .collect()
    }

    /// Streaming mean/std seen so far for `feature` (Welford, whole
    /// stream) — reported alongside alerts so the audit record shows
    /// *where* the distribution moved, not just that it moved.
    pub fn stream_stats(&self, feature: usize) -> (f64, f64) {
        if self.rows < 2 {
            return (self.mean[feature], 0.0);
        }
        (self.mean[feature], (self.m2[feature] / self.rows as f64).sqrt())
    }

    /// Total rows pushed.
    pub fn rows_seen(&self) -> u64 {
        self.rows
    }

    /// The reference profile this detector scores against.
    pub fn profile(&self) -> &DriftProfile {
        &self.profile
    }

    /// The active configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monitorless_std::rng::{Rng as _, StdRng};

    fn gaussian(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
        // Box–Muller; one draw per call is plenty for tests.
        let u1 = rng.gen_f64().max(1e-12);
        let u2 = rng.gen_f64();
        mean + std * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn profile_from(rng: &mut StdRng, rows: usize, cols: usize) -> DriftProfile {
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|c| gaussian(rng, c as f64, 1.0 + c as f64 * 0.5))
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = data.iter().map(|r| r.as_slice()).collect();
        DriftProfile::from_matrix(&Matrix::from_rows(&refs))
    }

    #[test]
    fn equi_depth_edges_are_deciles() {
        let col: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let refs: Vec<&[f64]> = col.iter().map(std::slice::from_ref).collect();
        let p = DriftProfile::from_matrix(&Matrix::from_rows(&refs));
        assert_eq!(p.features[0].edges.len(), PROFILE_BINS - 1);
        // Every decile bin of the training data itself gets ~1/10 mass.
        let fp = &p.features[0];
        let mut counts = [0usize; PROFILE_BINS];
        for &v in &col {
            counts[fp.bin(v)] += 1;
        }
        for c in counts {
            assert!((80..=120).contains(&c), "bin count {c} far from uniform");
        }
    }

    #[test]
    fn stationary_stream_stays_quiet() {
        let mut rng = StdRng::seed_from_u64(7);
        let profile = profile_from(&mut rng, 2000, 3);
        let mut det = profile.detector(DriftConfig::default());
        let mut row = [0.0; 3];
        for _ in 0..2000 {
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = gaussian(&mut rng, c as f64, 1.0 + c as f64 * 0.5);
            }
            if let Some(check) = det.push(&row) {
                assert!(check.new_alerts.is_empty(), "false alert: {check:?}");
            }
        }
        assert!(!det.drifting());
    }

    #[test]
    fn mean_shift_trips_within_bounded_ticks() {
        let mut rng = StdRng::seed_from_u64(11);
        let profile = profile_from(&mut rng, 2000, 3);
        let cfg = DriftConfig::default();
        let mut det = profile.detector(cfg);
        let mut row = [0.0; 3];
        // Warm up stationary, then shift feature 1 by 3 reference stds.
        for _ in 0..cfg.window {
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = gaussian(&mut rng, c as f64, 1.0 + c as f64 * 0.5);
            }
            det.push(&row);
        }
        assert!(!det.drifting());
        let bound = cfg.window + cfg.patience * cfg.check_every + cfg.check_every;
        let mut detected_at = None;
        for t in 0..bound {
            for (c, slot) in row.iter_mut().enumerate() {
                let shift = if c == 1 { 3.0 * 1.5 } else { 0.0 };
                *slot = gaussian(&mut rng, c as f64 + shift, 1.0 + c as f64 * 0.5);
            }
            if let Some(check) = det.push(&row) {
                if check.new_alerts.contains(&1) {
                    detected_at = Some(t);
                    break;
                }
            }
        }
        let at = detected_at.expect("shift in feature 1 never detected");
        assert!(det.alerted_features().contains(&1));
        assert!(at < bound, "detected only after {at} rows");
    }

    #[test]
    fn hysteresis_holds_alert_through_the_band() {
        let profile = DriftProfile {
            features: vec![FeatureProfile {
                edges: (1..PROFILE_BINS).map(|i| i as f64).collect(),
                mean: 5.0,
                std: 3.0,
            }],
        };
        let cfg = DriftConfig {
            window: 64,
            min_samples: 64,
            check_every: 16,
            patience: 1,
            ..DriftConfig::default()
        };
        let mut det = profile.detector(cfg);
        // All mass in one bin → PSI far above alert.
        for _ in 0..128 {
            det.push(&[0.5]);
        }
        assert!(det.drifting());
        // Back to uniform coverage: PSI decays below clear → re-arms.
        for i in 0..256u32 {
            det.push(&[(i % 10) as f64 + 0.5]);
        }
        assert!(!det.drifting(), "alert did not clear, scores {:?}", det.scores());
    }

    #[test]
    fn profile_serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = profile_from(&mut rng, 500, 4);
        let json = monitorless_std::json::to_string(&p);
        let back: DriftProfile = monitorless_std::json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn welford_matches_batch_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = profile_from(&mut rng, 200, 1);
        let mut det = p.detector(DriftConfig::default());
        let vals: Vec<f64> = (0..500).map(|_| rng.gen_f64() * 10.0).collect();
        for v in &vals {
            det.push(std::slice::from_ref(v));
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        let (m, s) = det.stream_stats(0);
        assert!((m - mean).abs() < 1e-9);
        assert!((s - var.sqrt()).abs() < 1e-9);
    }
}
