//! Stage 1: kind-aware scaling and binary level features.

use monitorless_metrics::catalog::Catalog;
use monitorless_metrics::kind::MetricKind;

use crate::Error;

/// Layout of the raw concatenated metric vector: names, kinds and the
/// indices of the four utilization metrics that drive the binary
/// features.
#[derive(Debug, Clone, PartialEq)]
pub struct RawLayout {
    names: Vec<String>,
    kinds: Vec<MetricKind>,
    host_cpu_idle: usize,
    host_mem_util: usize,
    ctr_cpu_util: usize,
    ctr_mem_util: usize,
}

impl RawLayout {
    /// Builds the layout from the standard catalog.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Invalid`] if the catalog is missing one of the
    /// utilization metrics (cannot happen for [`Catalog::standard`]).
    pub fn from_catalog(catalog: &Catalog) -> Result<Self, Error> {
        let need = |opt: Option<usize>, name: &str| {
            opt.ok_or_else(|| Error::Invalid(format!("catalog is missing {name}")))
        };
        Ok(RawLayout {
            names: catalog.concat_names(),
            kinds: catalog.concat_kinds(),
            host_cpu_idle: need(catalog.host_index("kernel.all.cpu.idle"), "kernel.all.cpu.idle")?,
            host_mem_util: need(catalog.host_index("mem.util.used"), "mem.util.used")?,
            ctr_cpu_util: need(
                catalog.concat_container_index("containers.cpu.util"),
                "containers.cpu.util",
            )?,
            ctr_mem_util: need(
                catalog.concat_container_index("containers.mem.util"),
                "containers.mem.util",
            )?,
        })
    }

    /// Number of raw metrics.
    pub fn raw_len(&self) -> usize {
        self.names.len()
    }

    /// Raw metric names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Host CPU utilization (%) from a raw vector.
    pub fn host_cpu_util(&self, raw: &[f64]) -> f64 {
        (100.0 - raw[self.host_cpu_idle]).clamp(0.0, 100.0)
    }

    /// Host memory utilization (%) from a raw vector.
    pub fn host_mem_util(&self, raw: &[f64]) -> f64 {
        raw[self.host_mem_util].clamp(0.0, 100.0)
    }

    /// Container CPU utilization (%) from a raw vector.
    pub fn ctr_cpu_util(&self, raw: &[f64]) -> f64 {
        raw[self.ctr_cpu_util].clamp(0.0, 100.0)
    }

    /// Container memory utilization (%) from a raw vector.
    pub fn ctr_mem_util(&self, raw: &[f64]) -> f64 {
        raw[self.ctr_mem_util].clamp(0.0, 100.0)
    }
}

/// Names and thresholds of the 16 binary features (Section 3.3.1): LOW /
/// MED / HIGH for CPU and memory at both scopes, plus VERYHIGH and
/// EXTREME for CPU. `H-`/`C-` prefixes denote host/container scope, as
/// in Table 4 of the paper.
pub const BINARY_FEATURES: [(&str, BinarySource, BinaryLevel); 16] = [
    ("H-CPU-LOW", BinarySource::HostCpu, BinaryLevel::Low),
    ("H-CPU-MEDIUM", BinarySource::HostCpu, BinaryLevel::Medium),
    ("H-CPU-HIGH", BinarySource::HostCpu, BinaryLevel::High),
    ("H-CPU-VERYHIGH", BinarySource::HostCpu, BinaryLevel::VeryHigh),
    ("H-CPU-EXTREME", BinarySource::HostCpu, BinaryLevel::Extreme),
    ("H-MEM-LOW", BinarySource::HostMem, BinaryLevel::Low),
    ("H-MEM-MEDIUM", BinarySource::HostMem, BinaryLevel::Medium),
    ("H-MEM-HIGH", BinarySource::HostMem, BinaryLevel::High),
    ("C-CPU-LOW", BinarySource::CtrCpu, BinaryLevel::Low),
    ("C-CPU-MEDIUM", BinarySource::CtrCpu, BinaryLevel::Medium),
    ("C-CPU-HIGH", BinarySource::CtrCpu, BinaryLevel::High),
    ("C-CPU-VERYHIGH", BinarySource::CtrCpu, BinaryLevel::VeryHigh),
    ("C-CPU-EXTREME", BinarySource::CtrCpu, BinaryLevel::Extreme),
    ("C-MEM-LOW", BinarySource::CtrMem, BinaryLevel::Low),
    ("C-MEM-MEDIUM", BinarySource::CtrMem, BinaryLevel::Medium),
    ("C-MEM-HIGH", BinarySource::CtrMem, BinaryLevel::High),
];

/// Which utilization a binary feature observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinarySource {
    HostCpu,
    HostMem,
    CtrCpu,
    CtrMem,
}

/// Utilization band of a binary feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryLevel {
    /// Below 50%.
    Low,
    /// 50–80%.
    Medium,
    /// At or above 80%.
    High,
    /// At or above 90%.
    VeryHigh,
    /// At or above 95%.
    Extreme,
}

impl BinaryLevel {
    /// Evaluates the indicator for a utilization percentage.
    pub fn indicator(self, util: f64) -> f64 {
        let on = match self {
            BinaryLevel::Low => util < 50.0,
            BinaryLevel::Medium => (50.0..80.0).contains(&util),
            BinaryLevel::High => util >= 80.0,
            BinaryLevel::VeryHigh => util >= 90.0,
            BinaryLevel::Extreme => util >= 95.0,
        };
        f64::from(u8::from(on))
    }
}

/// Expands a raw metric vector into the base feature vector: kind-scaled
/// raw metrics followed by the 16 binary features.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseExpander {
    layout: RawLayout,
}

impl BaseExpander {
    /// Creates the expander for a raw layout.
    pub fn new(layout: RawLayout) -> Self {
        BaseExpander { layout }
    }

    /// The underlying layout.
    pub fn layout(&self) -> &RawLayout {
        &self.layout
    }

    /// Number of base features.
    pub fn len(&self) -> usize {
        self.layout.raw_len() + BINARY_FEATURES.len()
    }

    /// Whether the expander produces no features (never for real layouts).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Base feature names.
    pub fn names(&self) -> Vec<String> {
        let mut names = self.layout.names.clone();
        names.extend(BINARY_FEATURES.iter().map(|(n, _, _)| n.to_string()));
        names
    }

    /// Expands one raw vector.
    ///
    /// # Panics
    ///
    /// Panics if `raw` has the wrong length.
    pub fn expand(&self, raw: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        self.expand_into(raw, &mut out);
        out
    }

    /// Expands one raw vector into `out` (cleared first), so
    /// steady-state callers can reuse the buffer instead of allocating a
    /// fresh vector per sample.
    ///
    /// # Panics
    ///
    /// Panics if `raw` has the wrong length.
    pub fn expand_into(&self, raw: &[f64], out: &mut Vec<f64>) {
        assert_eq!(raw.len(), self.layout.raw_len(), "raw vector length");
        out.clear();
        out.reserve(self.len());
        for (v, kind) in raw.iter().zip(&self.layout.kinds) {
            out.push(kind.preprocess(*v));
        }
        for (_, source, level) in BINARY_FEATURES {
            let util = match source {
                BinarySource::HostCpu => self.layout.host_cpu_util(raw),
                BinarySource::HostMem => self.layout.host_mem_util(raw),
                BinarySource::CtrCpu => self.layout.ctr_cpu_util(raw),
                BinarySource::CtrMem => self.layout.ctr_mem_util(raw),
            };
            out.push(level.indicator(util));
        }
    }

    /// Indices of the binary features in the base feature space.
    pub fn binary_indices(&self) -> Vec<usize> {
        (self.layout.raw_len()..self.len()).collect()
    }
}

monitorless_std::json_struct!(RawLayout {
    names,
    kinds,
    host_cpu_idle,
    host_mem_util,
    ctr_cpu_util,
    ctr_mem_util,
});
monitorless_std::json_struct!(BaseExpander { layout });

#[cfg(test)]
mod tests {
    use super::*;
    use monitorless_metrics::signals::{ContainerSignals, HostSignals};

    fn expander() -> (BaseExpander, Catalog) {
        let catalog = Catalog::standard();
        let layout = RawLayout::from_catalog(&catalog).unwrap();
        (BaseExpander::new(layout), catalog)
    }

    fn raw_vector(catalog: &Catalog, host: &HostSignals, ctr: &ContainerSignals) -> Vec<f64> {
        let mut v = catalog.expand_host(host, 0, 0);
        v.extend(catalog.expand_container(ctr, 0, 0));
        v
    }

    #[test]
    fn base_length_is_raw_plus_16() {
        let (e, _) = expander();
        assert_eq!(e.len(), 1040 + 16);
        assert_eq!(e.names().len(), e.len());
        assert_eq!(e.binary_indices().len(), 16);
    }

    #[test]
    fn binary_levels_fire_at_right_utilizations() {
        assert_eq!(BinaryLevel::Low.indicator(30.0), 1.0);
        assert_eq!(BinaryLevel::Low.indicator(60.0), 0.0);
        assert_eq!(BinaryLevel::Medium.indicator(60.0), 1.0);
        assert_eq!(BinaryLevel::High.indicator(85.0), 1.0);
        assert_eq!(BinaryLevel::VeryHigh.indicator(85.0), 0.0);
        assert_eq!(BinaryLevel::VeryHigh.indicator(92.0), 1.0);
        assert_eq!(BinaryLevel::Extreme.indicator(96.0), 1.0);
        // High levels are cumulative: 96% fires HIGH, VERYHIGH and EXTREME.
        assert_eq!(BinaryLevel::High.indicator(96.0), 1.0);
    }

    #[test]
    fn container_cpu_binaries_track_signal() {
        let (e, catalog) = expander();
        let saturated = raw_vector(
            &catalog,
            &HostSignals::default(),
            &ContainerSignals {
                cpu_util: 0.97,
                ..ContainerSignals::default()
            },
        );
        let base = e.expand(&saturated);
        let names = e.names();
        let get = |name: &str| base[names.iter().position(|n| n == name).unwrap()];
        assert_eq!(get("C-CPU-HIGH"), 1.0);
        assert_eq!(get("C-CPU-VERYHIGH"), 1.0);
        assert_eq!(get("C-CPU-LOW"), 0.0);

        let idle = raw_vector(&catalog, &HostSignals::default(), &ContainerSignals::default());
        let base = e.expand(&idle);
        let get = |name: &str| base[names.iter().position(|n| n == name).unwrap()];
        assert_eq!(get("C-CPU-LOW"), 1.0);
        assert_eq!(get("C-CPU-HIGH"), 0.0);
    }

    #[test]
    fn host_cpu_util_is_inverted_idle() {
        let (e, catalog) = expander();
        let busy = raw_vector(
            &catalog,
            &HostSignals {
                cpu_util: 0.93,
                ..HostSignals::default()
            },
            &ContainerSignals::default(),
        );
        let util = e.layout().host_cpu_util(&busy);
        assert!((util - 93.0).abs() < 5.0, "util = {util}");
    }

    #[test]
    fn byte_metrics_are_log_scaled() {
        let (e, catalog) = expander();
        let raw = raw_vector(
            &catalog,
            &HostSignals {
                mem_used_bytes: 1e9,
                ..HostSignals::default()
            },
            &ContainerSignals::default(),
        );
        let idx = catalog.host_index("mem.used").unwrap();
        let base = e.expand(&raw);
        assert!(base[idx] < 11.0 && base[idx] > 8.0, "log-scaled: {}", base[idx]);
    }
}
