//! Stage 4b: multiplicative feature combinations (Section 3.3.6).
//!
//! Pairs of features from *different* resource domains are multiplied.
//! Binary level features (`C-CPU-HIGH`, …) form their own domains and
//! may also combine with each other — Table 4's top features include
//! both `network.tcp.currestab × C-CPU-HIGH` (cross-domain) and
//! `C-CPU-HIGH × C-CPU-VERYHIGH` (level × level). Time-dependent
//! features are excluded from combination to bound the feature count.

/// Resource domain of a feature, derived from its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// CPU time / scheduling metrics.
    Cpu,
    /// Memory metrics.
    Mem,
    /// Network metrics.
    Net,
    /// Disk / filesystem metrics.
    Disk,
    /// Binary level indicators.
    Level,
    /// Everything else (inventory, process counts, …).
    Other,
}

/// Classifies a feature name into a domain.
pub fn domain_of(name: &str) -> Domain {
    if name.contains("-LOW")
        || name.contains("-MEDIUM")
        || name.contains("-HIGH")
        || name.contains("-VERYHIGH")
        || name.contains("-EXTREME")
    {
        return Domain::Level;
    }
    let lower = name.to_ascii_lowercase();
    if lower.contains("cpu") || lower.contains("cpusched") || lower.contains("load") {
        Domain::Cpu
    } else if lower.contains("mem") || lower.contains("vmstat") || lower.contains("swap") {
        Domain::Mem
    } else if lower.contains("network") || lower.contains("tcp") || lower.contains("udp") {
        Domain::Net
    } else if lower.contains("disk")
        || lower.contains("blkio")
        || lower.contains("vfs")
        || lower.contains("filesys")
    {
        Domain::Disk
    } else {
        Domain::Other
    }
}

/// Enumerates the index pairs to multiply for the given feature names:
/// all unordered pairs from different domains, plus all pairs (including
/// self-pairs) where both features are binary levels.
pub fn product_pairs(names: &[String]) -> Vec<(usize, usize)> {
    let domains: Vec<Domain> = names.iter().map(|n| domain_of(n)).collect();
    let mut pairs = Vec::new();
    for i in 0..names.len() {
        for j in i..names.len() {
            let cross = domains[i] != domains[j];
            let both_levels = domains[i] == Domain::Level && domains[j] == Domain::Level;
            if cross || both_levels {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

/// Names of the product features.
pub fn product_names(names: &[String], pairs: &[(usize, usize)]) -> Vec<String> {
    pairs
        .iter()
        .map(|&(i, j)| format!("{} × {}", names[i], names[j]))
        .collect()
}

/// Appends the products of `pairs` to a feature vector.
pub fn apply_products(row: &mut Vec<f64>, base: &[f64], pairs: &[(usize, usize)]) {
    row.reserve(pairs.len());
    for &(i, j) in pairs {
        row.push(base[i] * base[j]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_are_classified() {
        assert_eq!(domain_of("kernel.all.cpu.user"), Domain::Cpu);
        assert_eq!(domain_of("mem.vmstat.pgpgin"), Domain::Mem);
        assert_eq!(domain_of("network.tcp.currestab"), Domain::Net);
        assert_eq!(domain_of("disk.all.aveq"), Domain::Disk);
        assert_eq!(domain_of("C-CPU-VERYHIGH"), Domain::Level);
        assert_eq!(domain_of("hinv.ninterface"), Domain::Other);
    }

    #[test]
    fn pairs_cross_domains_only_except_levels() {
        let names: Vec<String> = vec![
            "kernel.all.cpu.user".into(), // Cpu
            "kernel.all.cpu.sys".into(),  // Cpu
            "mem.util.used".into(),       // Mem
            "C-CPU-HIGH".into(),          // Level
            "C-CPU-VERYHIGH".into(),      // Level
        ];
        let pairs = product_pairs(&names);
        // Cpu×Cpu (0,1) must be absent.
        assert!(!pairs.contains(&(0, 1)));
        // Cross-domain pairs present.
        assert!(pairs.contains(&(0, 2)));
        assert!(pairs.contains(&(2, 3)));
        // Level×Level including self-pairs present.
        assert!(pairs.contains(&(3, 4)));
        assert!(pairs.contains(&(4, 4)));
    }

    #[test]
    fn products_multiply_values() {
        let names: Vec<String> = vec!["kernel.all.cpu.user".into(), "mem.util.used".into()];
        let pairs = product_pairs(&names);
        assert_eq!(pairs, vec![(0, 1)]);
        let mut row = vec![3.0, 4.0];
        let base = row.clone();
        apply_products(&mut row, &base, &pairs);
        assert_eq!(row, vec![3.0, 4.0, 12.0]);
        let pnames = product_names(&names, &pairs);
        assert_eq!(pnames[0], "kernel.all.cpu.user × mem.util.used");
    }
}
