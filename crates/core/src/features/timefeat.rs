//! Stage 4a: time-dependent `X-AVG` / `X-LAG` features (Section 3.3.5).
//!
//! `X-AVG` averages the last `X + 1` samples including the current one;
//! `X-LAG` is the value `X` samples ago. The paper uses `X = 1, 5, 15`
//! (a 15-second window proved sufficient).

/// The lag distances used by the paper.
pub const TIME_LAGS: [usize; 3] = [1, 5, 15];

/// Expands a chronologically ordered block of feature vectors with AVG
/// and LAG variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeExpander {
    width: usize,
}

impl TimeExpander {
    /// Creates an expander for vectors of `width` features.
    pub fn new(width: usize) -> Self {
        TimeExpander { width }
    }

    /// Input width.
    pub fn input_width(&self) -> usize {
        self.width
    }

    /// Output width: original + (AVG + LAG) per lag distance.
    pub fn output_width(&self) -> usize {
        self.width * (1 + 2 * TIME_LAGS.len())
    }

    /// Names for the expanded features given input `names`.
    pub fn names(&self, names: &[String]) -> Vec<String> {
        let mut out: Vec<String> = names.to_vec();
        for x in TIME_LAGS {
            out.extend(names.iter().map(|n| format!("{n}-AVG{x}")));
        }
        for x in TIME_LAGS {
            out.extend(names.iter().map(|n| format!("{n}-LAG{x}")));
        }
        out
    }

    /// Expands sample `i` of a chronologically ordered block `rows`
    /// (each of `width` features). History before the block start is
    /// padded with the earliest available sample, as for a container
    /// that just started.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or a row has the wrong width.
    pub fn expand_at(&self, rows: &[Vec<f64>], i: usize) -> Vec<f64> {
        assert!(i < rows.len(), "sample index out of range");
        assert_eq!(rows[i].len(), self.width, "row width");
        let mut out = Vec::with_capacity(self.output_width());
        out.extend_from_slice(&rows[i]);
        for x in TIME_LAGS {
            // AVG over the last x+1 samples (clamped at block start).
            let start = i.saturating_sub(x);
            let n = (i - start + 1) as f64;
            for f in 0..self.width {
                let mut acc = 0.0;
                for row in rows.iter().take(i + 1).skip(start) {
                    acc += row[f];
                }
                out.push(acc / n);
            }
        }
        for x in TIME_LAGS {
            let j = i.saturating_sub(x);
            out.extend_from_slice(&rows[j]);
        }
        out
    }

    /// Expands a whole block.
    pub fn expand_block(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        (0..rows.len()).map(|i| self.expand_at(rows, i)).collect()
    }

    /// Streaming expansion of a whole chronologically ordered block,
    /// written straight into a caller-provided row-major buffer — no
    /// per-row vectors, no row clones.
    ///
    /// `block` is the contiguous row-major input (`n_rows × width`);
    /// row `i` of the output lands at `out[i * out_stride ..]`, leaving
    /// `out_stride - output_width()` trailing cells per row untouched
    /// for the caller (product features). `acc` is a `width`-long
    /// scratch accumulator reused across rows.
    ///
    /// Summation-order contract: each `X-AVG` cell re-accumulates its
    /// clamped window in ascending chronological order — for feature
    /// `f`, the adds happen in exactly the legacy [`Self::expand_at`]
    /// order (`rows[start][f] + … + rows[i][f]`, left to right), so the
    /// output is bit-identical to the legacy path. A true rolling sum
    /// (add new / evict old) would reassociate the f64 adds and break
    /// bit-equality, so the kernel deliberately re-accumulates the ≤16
    /// window rows; the win comes from the contiguous layout (the inner
    /// loop is an elementwise slice add the compiler vectorizes) rather
    /// than from fewer float operations.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not a whole number of rows, `acc` is not
    /// `width` long, or `out`/`out_stride` cannot hold the result.
    pub fn expand_block_into(
        &self,
        block: &[f64],
        out: &mut [f64],
        out_stride: usize,
        acc: &mut [f64],
    ) {
        let w = self.width;
        assert!(block.len().is_multiple_of(w.max(1)), "block is whole rows");
        assert_eq!(acc.len(), w, "accumulator width");
        assert!(out_stride >= self.output_width(), "output stride");
        let n_rows = block.len().checked_div(w).unwrap_or(0);
        assert!(out.len() >= n_rows * out_stride, "output buffer size");
        for i in 0..n_rows {
            let out_row = &mut out[i * out_stride..i * out_stride + self.output_width()];
            out_row[..w].copy_from_slice(&block[i * w..(i + 1) * w]);
            for (li, &x) in TIME_LAGS.iter().enumerate() {
                let start = i.saturating_sub(x);
                let n = (i - start + 1) as f64;
                acc.fill(0.0);
                for r in start..=i {
                    let row = &block[r * w..(r + 1) * w];
                    for (a, v) in acc.iter_mut().zip(row) {
                        *a += *v;
                    }
                }
                let dst = &mut out_row[(1 + li) * w..(2 + li) * w];
                for (d, a) in dst.iter_mut().zip(acc.iter()) {
                    *d = *a / n;
                }
            }
            let lag_base = 1 + TIME_LAGS.len();
            for (li, &x) in TIME_LAGS.iter().enumerate() {
                let j = i.saturating_sub(x);
                out_row[(lag_base + li) * w..(lag_base + li + 1) * w]
                    .copy_from_slice(&block[j * w..(j + 1) * w]);
            }
        }
    }
}

monitorless_std::json_struct!(TimeExpander { width });

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Vec<Vec<f64>> {
        (0..20).map(|i| vec![i as f64, 100.0 - i as f64]).collect()
    }

    #[test]
    fn widths_and_names() {
        let e = TimeExpander::new(2);
        assert_eq!(e.output_width(), 2 * 7);
        let names = e.names(&["a".into(), "b".into()]);
        assert_eq!(names.len(), 14);
        assert!(names.contains(&"a-AVG15".to_string()));
        assert!(names.contains(&"b-LAG5".to_string()));
    }

    #[test]
    fn lag_picks_past_value() {
        let e = TimeExpander::new(2);
        let rows = block();
        let v = e.expand_at(&rows, 10);
        // Layout: [orig(2), avg1(2), avg5(2), avg15(2), lag1(2), lag5(2), lag15(2)]
        assert_eq!(v[0], 10.0);
        let lag1 = v[8];
        let lag5 = v[10];
        assert_eq!(lag1, 9.0);
        assert_eq!(lag5, 5.0);
    }

    #[test]
    fn avg_is_window_mean() {
        let e = TimeExpander::new(2);
        let rows = block();
        let v = e.expand_at(&rows, 10);
        let avg1 = v[2];
        let avg5 = v[4];
        assert!((avg1 - 9.5).abs() < 1e-12); // mean of 9, 10
        assert!((avg5 - 7.5).abs() < 1e-12); // mean of 5..=10
    }

    #[test]
    fn early_samples_are_padded() {
        let e = TimeExpander::new(2);
        let rows = block();
        let v = e.expand_at(&rows, 0);
        // Everything collapses to the first value.
        assert!(v.iter().step_by(2).all(|&x| x == 0.0));
        let v2 = e.expand_at(&rows, 2);
        let lag15 = v2[12];
        assert_eq!(lag15, 0.0, "clamped to block start");
    }

    #[test]
    fn block_expansion_covers_all_samples() {
        let e = TimeExpander::new(2);
        let rows = block();
        let out = e.expand_block(&rows);
        assert_eq!(out.len(), rows.len());
        assert!(out.iter().all(|r| r.len() == e.output_width()));
    }

    #[test]
    fn streaming_block_kernel_is_bit_identical_to_expand_at() {
        let e = TimeExpander::new(2);
        let rows = block();
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        // Stride larger than the output width: trailing cells untouched.
        let stride = e.output_width() + 3;
        let mut out = vec![f64::NAN; rows.len() * stride];
        let mut acc = vec![0.0; 2];
        e.expand_block_into(&flat, &mut out, stride, &mut acc);
        for (i, legacy) in e.expand_block(&rows).iter().enumerate() {
            let got = &out[i * stride..i * stride + e.output_width()];
            for (a, b) in got.iter().zip(legacy) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
            }
            assert!(out[i * stride + e.output_width()..(i + 1) * stride]
                .iter()
                .all(|v| v.is_nan()));
        }
    }
}
