//! The Section 3.3 feature-engineering pipeline.
//!
//! The pipeline turns raw 1040-metric vectors `M_{I,t}` into the model's
//! feature vectors `x_{I,t}` via six steps (Section 3.3.7):
//!
//! 1. binary CPU/MEM level features + kind-aware scaling ([`base`]);
//! 2. normalization (`StandardScaler`);
//! 3. first reduction: per-dataset random-forest filtering (union of
//!    top-30 lists) or PCA ([`reduce`]);
//! 4. time-dependent `X-AVG`/`X-LAG` variants ([`timefeat`]) and
//!    multiplicative cross-domain products ([`combine`]);
//! 5. second reduction (filtering or PCA);
//! 6. zero-variance removal.

pub mod base;
pub mod combine;
pub mod pipeline;
pub mod reduce;
pub mod timefeat;

pub use base::{BaseExpander, RawLayout};
pub use combine::{domain_of, Domain};
pub use pipeline::{
    FeaturePipeline, FittedPipeline, InstanceTransformer, PipelineConfig, TransformScratch,
};
pub use reduce::Reduction;
pub use timefeat::{TimeExpander, TIME_LAGS};
