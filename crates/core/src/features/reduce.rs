//! Stages 3/5: feature reduction via random-forest filtering or PCA
//! (Section 3.3.4).

use monitorless_learn::pca::ComponentSelection;
use monitorless_learn::{Classifier, Matrix, Pca, RandomForest, RandomForestParams};

use crate::Error;

/// Reduction strategy for a pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reduction {
    /// Keep everything.
    None,
    /// Train a random forest per training configuration and keep the
    /// union of each configuration's `top_k` most important features —
    /// the paper uses `top_k = 30`, yielding 117 unique features.
    ForestFilter {
        /// Features kept per configuration.
        top_k: usize,
        /// Trees per filtering forest (the paper uses defaults; smaller
        /// values keep the quick configurations fast).
        n_estimators: usize,
    },
    /// Project onto principal components explaining the given variance
    /// fraction, capped at `max_components` (the paper reduces to 50
    /// components at 99.99% variance).
    Pca {
        /// Cumulative explained-variance target in `(0, 1]`.
        variance: f64,
        /// Upper bound on components.
        max_components: usize,
    },
}

impl Reduction {
    /// The paper's first-stage filter (top-30 per dataset).
    pub fn paper_filter() -> Self {
        Reduction::ForestFilter {
            top_k: 30,
            n_estimators: 50,
        }
    }

    /// The paper's PCA alternative (50 components, 99.99% variance).
    pub fn paper_pca() -> Self {
        Reduction::Pca {
            variance: 0.9999,
            max_components: 50,
        }
    }
}

/// A fitted reduction stage.
#[derive(Debug, Clone, PartialEq)]
pub enum FittedReduction {
    /// Identity.
    None,
    /// Column selection (sorted indices into the stage input).
    Select(Vec<usize>),
    /// PCA projection.
    Pca(Pca),
}

impl FittedReduction {
    /// Fits the reduction on `(x, y, groups)`.
    ///
    /// # Errors
    ///
    /// Propagates learner errors; degenerate groups (single class) are
    /// skipped for forest filtering.
    pub fn fit(
        reduction: Reduction,
        x: &Matrix,
        y: &[u8],
        groups: &[u32],
        seed: u64,
    ) -> Result<Self, Error> {
        match reduction {
            Reduction::None => Ok(FittedReduction::None),
            Reduction::Pca {
                variance,
                max_components,
            } => {
                // Fit capped, then trim to the variance target: fitting an
                // uncapped variance fraction first would extract far more
                // components than the stage can ever keep.
                let mut pca = Pca::new(ComponentSelection::Count(max_components));
                pca.fit(x)?;
                let ratios = pca.explained_variance_ratio();
                let mut acc = 0.0;
                let mut keep = ratios.len();
                for (i, r) in ratios.iter().enumerate() {
                    acc += r;
                    if acc >= variance {
                        keep = i + 1;
                        break;
                    }
                }
                pca.truncate(keep.max(1));
                Ok(FittedReduction::Pca(pca))
            }
            Reduction::ForestFilter {
                top_k,
                n_estimators,
            } => {
                let mut distinct: Vec<u32> = groups.to_vec();
                distinct.sort_unstable();
                distinct.dedup();
                let mut union: Vec<usize> = Vec::new();
                for g in distinct {
                    let idx: Vec<usize> = (0..x.rows()).filter(|&i| groups[i] == g).collect();
                    let yg: Vec<u8> = idx.iter().map(|&i| y[i]).collect();
                    let n_pos = yg.iter().filter(|&&l| l == 1).count();
                    if n_pos == 0 || n_pos == yg.len() {
                        continue; // degenerate configuration
                    }
                    let xg = x.select_rows(&idx);
                    let mut rf = RandomForest::new(RandomForestParams {
                        n_estimators,
                        seed: seed ^ u64::from(g),
                        ..RandomForestParams::default()
                    });
                    rf.fit(&xg, &yg, None)?;
                    union.extend(rf.top_features(top_k));
                }
                union.sort_unstable();
                union.dedup();
                if union.is_empty() {
                    return Err(Error::Invalid(
                        "forest filter found no informative features (all groups degenerate)"
                            .into(),
                    ));
                }
                Ok(FittedReduction::Select(union))
            }
        }
    }

    /// Output width for `input_width` inputs.
    pub fn output_width(&self, input_width: usize) -> usize {
        match self {
            FittedReduction::None => input_width,
            FittedReduction::Select(idx) => idx.len(),
            FittedReduction::Pca(p) => p.n_components(),
        }
    }

    /// Output feature names.
    pub fn names(&self, input_names: &[String]) -> Vec<String> {
        match self {
            FittedReduction::None => input_names.to_vec(),
            FittedReduction::Select(idx) => idx.iter().map(|&i| input_names[i].clone()).collect(),
            FittedReduction::Pca(p) => (0..p.n_components()).map(|i| format!("PC{i}")).collect(),
        }
    }

    /// Applies the reduction to a matrix.
    ///
    /// # Errors
    ///
    /// Propagates PCA transform errors.
    pub fn apply(&self, x: &Matrix) -> Result<Matrix, Error> {
        match self {
            FittedReduction::None => Ok(x.clone()),
            FittedReduction::Select(idx) => Ok(x.select_columns(idx)),
            FittedReduction::Pca(p) => Ok(p.transform(x)?),
        }
    }

    /// Applies the reduction to a single row.
    ///
    /// # Errors
    ///
    /// Propagates PCA transform errors.
    pub fn apply_row(&self, row: &[f64]) -> Result<Vec<f64>, Error> {
        match self {
            FittedReduction::None => Ok(row.to_vec()),
            FittedReduction::Select(idx) => Ok(idx.iter().map(|&i| row[i]).collect()),
            FittedReduction::Pca(p) => {
                let m = Matrix::from_rows(&[row]);
                Ok(p.transform(&m)?.row(0).to_vec())
            }
        }
    }

    /// Applies the reduction to a single row, writing into `out`
    /// (cleared first) — bit-identical to [`FittedReduction::apply_row`]
    /// but allocation-free once `out` has capacity.
    ///
    /// # Errors
    ///
    /// Propagates PCA transform errors.
    pub fn apply_row_into(&self, row: &[f64], out: &mut Vec<f64>) -> Result<(), Error> {
        match self {
            FittedReduction::None => {
                out.clear();
                out.extend_from_slice(row);
            }
            FittedReduction::Select(idx) => {
                out.clear();
                out.reserve(idx.len());
                out.extend(idx.iter().map(|&i| row[i]));
            }
            FittedReduction::Pca(p) => p.transform_row_into(row, out)?,
        }
        Ok(())
    }
}

impl monitorless_std::json::ToJson for Reduction {
    fn to_json(&self) -> monitorless_std::json::Json {
        use monitorless_std::json::Json;
        match self {
            Reduction::None => Json::Str("None".into()),
            Reduction::ForestFilter {
                top_k,
                n_estimators,
            } => Json::Obj(vec![(
                "ForestFilter".into(),
                Json::Obj(vec![
                    ("top_k".into(), top_k.to_json()),
                    ("n_estimators".into(), n_estimators.to_json()),
                ]),
            )]),
            Reduction::Pca {
                variance,
                max_components,
            } => Json::Obj(vec![(
                "Pca".into(),
                Json::Obj(vec![
                    ("variance".into(), variance.to_json()),
                    ("max_components".into(), max_components.to_json()),
                ]),
            )]),
        }
    }
}

impl monitorless_std::json::FromJson for Reduction {
    fn from_json(
        json: &monitorless_std::json::Json,
    ) -> Result<Self, monitorless_std::json::JsonError> {
        use monitorless_std::json::{field, Json, JsonError};
        match json {
            Json::Str(s) if s == "None" => Ok(Reduction::None),
            Json::Obj(members) => match members.first().map(|(k, v)| (k.as_str(), v)) {
                Some(("ForestFilter", body)) => Ok(Reduction::ForestFilter {
                    top_k: field(body, "top_k")?,
                    n_estimators: field(body, "n_estimators")?,
                }),
                Some(("Pca", body)) => Ok(Reduction::Pca {
                    variance: field(body, "variance")?,
                    max_components: field(body, "max_components")?,
                }),
                _ => Err(JsonError("unknown Reduction variant".into())),
            },
            _ => Err(JsonError("expected Reduction".into())),
        }
    }
}

impl monitorless_std::json::ToJson for FittedReduction {
    fn to_json(&self) -> monitorless_std::json::Json {
        use monitorless_std::json::Json;
        match self {
            FittedReduction::None => Json::Str("None".into()),
            FittedReduction::Select(idx) => Json::Obj(vec![("Select".into(), idx.to_json())]),
            FittedReduction::Pca(p) => Json::Obj(vec![("Pca".into(), p.to_json())]),
        }
    }
}

impl monitorless_std::json::FromJson for FittedReduction {
    fn from_json(
        json: &monitorless_std::json::Json,
    ) -> Result<Self, monitorless_std::json::JsonError> {
        use monitorless_std::json::{field, Json, JsonError};
        match json {
            Json::Str(s) if s == "None" => Ok(FittedReduction::None),
            Json::Obj(members) => match members.first().map(|(k, _)| k.as_str()) {
                Some("Select") => Ok(FittedReduction::Select(field(json, "Select")?)),
                Some("Pca") => Ok(FittedReduction::Pca(field(json, "Pca")?)),
                _ => Err(JsonError("unknown FittedReduction variant".into())),
            },
            _ => Err(JsonError("expected FittedReduction".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Matrix, Vec<u8>, Vec<u32>) {
        // Feature 0 informative in group 0, feature 1 in group 1,
        // feature 2 pure noise.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for i in 0..40 {
            let label = u8::from(i % 2 == 1);
            rows.push(vec![label as f64, 0.5, (i % 7) as f64]);
            y.push(label);
            groups.push(0);
        }
        for i in 0..40 {
            let label = u8::from(i % 2 == 1);
            rows.push(vec![0.5, label as f64, (i % 5) as f64]);
            y.push(label);
            groups.push(1);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y, groups)
    }

    #[test]
    fn forest_filter_unions_per_group_tops() {
        let (x, y, groups) = toy();
        let fitted = FittedReduction::fit(
            Reduction::ForestFilter {
                top_k: 1,
                n_estimators: 15,
            },
            &x,
            &y,
            &groups,
            0,
        )
        .unwrap();
        match &fitted {
            FittedReduction::Select(idx) => {
                assert!(idx.contains(&0), "group 0 top feature");
                assert!(idx.contains(&1), "group 1 top feature");
                assert!(!idx.contains(&2), "noise feature filtered: {idx:?}");
            }
            other => panic!("expected Select, got {other:?}"),
        }
        let reduced = fitted.apply(&x).unwrap();
        assert_eq!(reduced.cols(), 2);
    }

    #[test]
    fn none_is_identity() {
        let (x, y, groups) = toy();
        let fitted = FittedReduction::fit(Reduction::None, &x, &y, &groups, 0).unwrap();
        assert_eq!(fitted.apply(&x).unwrap(), x);
        assert_eq!(fitted.output_width(3), 3);
    }

    #[test]
    fn pca_caps_components() {
        let (x, y, groups) = toy();
        let fitted = FittedReduction::fit(
            Reduction::Pca {
                variance: 1.0,
                max_components: 2,
            },
            &x,
            &y,
            &groups,
            0,
        )
        .unwrap();
        assert_eq!(fitted.output_width(3), 2);
        assert_eq!(fitted.apply(&x).unwrap().cols(), 2);
        assert_eq!(fitted.names(&["a".into(), "b".into(), "c".into()]), vec!["PC0", "PC1"]);
    }

    #[test]
    fn apply_row_matches_matrix_apply() {
        let (x, y, groups) = toy();
        for reduction in [
            Reduction::None,
            Reduction::ForestFilter {
                top_k: 2,
                n_estimators: 10,
            },
            Reduction::Pca {
                variance: 0.99,
                max_components: 3,
            },
        ] {
            let fitted = FittedReduction::fit(reduction, &x, &y, &groups, 1).unwrap();
            let whole = fitted.apply(&x).unwrap();
            let row = fitted.apply_row(x.row(5)).unwrap();
            for (a, b) in row.iter().zip(whole.row(5)) {
                assert!((a - b).abs() < 1e-9);
            }
            // The buffer-reusing variant is bit-identical to apply_row.
            let mut buffered = vec![f64::NAN; 1];
            fitted.apply_row_into(x.row(5), &mut buffered).unwrap();
            assert_eq!(buffered.len(), row.len());
            for (a, b) in buffered.iter().zip(&row) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn degenerate_groups_are_skipped() {
        // Group 1 has a single class; only group 0 contributes.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for i in 0..20 {
            rows.push(vec![(i % 2) as f64, 0.0]);
            y.push((i % 2) as u8);
            groups.push(0);
        }
        for _ in 0..10 {
            rows.push(vec![0.0, 1.0]);
            y.push(0);
            groups.push(1);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let fitted = FittedReduction::fit(
            Reduction::ForestFilter {
                top_k: 1,
                n_estimators: 10,
            },
            &x,
            &y,
            &groups,
            0,
        )
        .unwrap();
        match fitted {
            FittedReduction::Select(idx) => assert_eq!(idx, vec![0]),
            other => panic!("expected Select, got {other:?}"),
        }
    }
}

// Both reduction enums carry data, so they keep the externally tagged
// encoding by hand.
