//! Stage orchestration: the six-step feature pipeline (Section 3.3.7)
//! and its online per-instance form.

use std::collections::VecDeque;
use std::sync::Arc;

use monitorless_learn::{Matrix, StandardScaler, Transformer};
use monitorless_obs as obs;

use super::base::{BaseExpander, RawLayout};
use super::combine::{apply_products, product_names, product_pairs};
use super::reduce::{FittedReduction, Reduction};
use super::timefeat::TimeExpander;
use crate::Error;

/// Configuration of the feature pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Step 2: standardize features.
    pub normalize: bool,
    /// Step 3: first reduction.
    pub reduce1: Reduction,
    /// Step 4a: add `X-AVG`/`X-LAG` features.
    pub time_features: bool,
    /// Step 4b: add multiplicative cross-domain products.
    pub products: bool,
    /// Step 5: second reduction.
    pub reduce2: Reduction,
    /// Seed for the filtering forests.
    pub seed: u64,
}

impl PipelineConfig {
    /// The configuration the paper's grid search settled on: normalize,
    /// forest-filter to the top-30 union, add time and product features,
    /// then filter again.
    pub fn paper_default() -> Self {
        PipelineConfig {
            normalize: true,
            reduce1: Reduction::paper_filter(),
            time_features: true,
            products: true,
            reduce2: Reduction::ForestFilter {
                top_k: 30,
                n_estimators: 50,
            },
            seed: 0,
        }
    }

    /// A scaled-down configuration for tests and quick runs.
    pub fn quick() -> Self {
        PipelineConfig {
            normalize: true,
            reduce1: Reduction::ForestFilter {
                top_k: 8,
                n_estimators: 12,
            },
            time_features: true,
            products: true,
            reduce2: Reduction::ForestFilter {
                top_k: 16,
                n_estimators: 12,
            },
            seed: 0,
        }
    }
}

/// An unfitted feature pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeaturePipeline {
    config: PipelineConfig,
}

impl FeaturePipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        FeaturePipeline { config }
    }

    /// Fits the pipeline on raw metric vectors and returns the fitted
    /// pipeline together with the transformed training matrix.
    ///
    /// Rows must be ordered chronologically *within* each group (a group
    /// is one Table 1 training run / one instance's time series).
    ///
    /// # Errors
    ///
    /// Propagates learner errors; returns [`Error::Invalid`] for empty
    /// input or mismatched lengths.
    pub fn fit_transform(
        &self,
        x_raw: &Matrix,
        y: &[u8],
        groups: &[u32],
        layout: RawLayout,
    ) -> Result<(FittedPipeline, Matrix), Error> {
        if x_raw.rows() == 0 {
            return Err(Error::Invalid("empty training matrix".into()));
        }
        if y.len() != x_raw.rows() || groups.len() != x_raw.rows() {
            return Err(Error::Invalid("labels/groups do not match rows".into()));
        }
        let cfg = self.config;
        let _fit_span = obs::Span::enter("pipeline.fit");
        let expander = BaseExpander::new(layout);

        // Step 1: base expansion.
        let stage = obs::Span::enter("pipeline.fit.base_expand");
        let mut base_rows: Vec<f64> = Vec::with_capacity(x_raw.rows() * expander.len());
        for row in x_raw.iter_rows() {
            base_rows.extend(expander.expand(row));
        }
        let mut b = Matrix::from_vec(x_raw.rows(), expander.len(), base_rows);
        let names_b = expander.names();
        drop(stage);
        obs::gauge_set("pipeline.features.base", names_b.len() as f64);

        // Step 2: normalization.
        let stage = obs::Span::enter("pipeline.fit.normalize");
        let scaler = if cfg.normalize {
            let mut s = StandardScaler::new();
            b = s.fit_transform(&b)?;
            Some(s)
        } else {
            None
        };
        drop(stage);

        // Step 3: first reduction. The binary level features and the
        // relative utilization metrics are always kept: they are the
        // scale-free features that make the model portable across
        // hardware and load magnitudes (Sections 3.3.1-3.3.3) — absolute
        // metrics alone would overfit each training configuration's
        // traffic level.
        let stage = obs::Span::enter("pipeline.fit.reduce1");
        let mut reduce1 = FittedReduction::fit(cfg.reduce1, &b, y, groups, cfg.seed)?;
        if let FittedReduction::Select(idx) = &mut reduce1 {
            idx.extend(forced_base_indices(&names_b));
            idx.sort_unstable();
            idx.dedup();
        }
        let c = reduce1.apply(&b)?;
        let names_c = reduce1.names(&names_b);
        drop(stage);
        obs::gauge_set("pipeline.features.reduced", names_c.len() as f64);

        // Step 4: time features + products (per group, chronological).
        let stage = obs::Span::enter("pipeline.fit.time_products");
        let time = cfg.time_features.then(|| TimeExpander::new(c.cols()));
        let pairs = if cfg.products {
            product_pairs(&names_c)
        } else {
            Vec::new()
        };
        let (d, names_d) = expand_stage_d(&c, groups, time.as_ref(), &pairs, &names_c);
        drop(stage);
        obs::gauge_set("pipeline.features.expanded", names_d.len() as f64);

        // Step 5: second reduction, again keeping the scale-free
        // originals and their pairwise products.
        let stage = obs::Span::enter("pipeline.fit.reduce2");
        let mut reduce2 = FittedReduction::fit(cfg.reduce2, &d, y, groups, cfg.seed ^ 0x5a5a)?;
        if let FittedReduction::Select(idx) = &mut reduce2 {
            let forced_names: Vec<&String> = forced_base_indices(&names_b)
                .into_iter()
                .map(|i| &names_b[i])
                .collect();
            for (j, name) in names_d.iter().enumerate() {
                let is_forced_original = forced_names.contains(&name);
                let is_level_product = name.contains(" × ")
                    && name
                        .split(" × ")
                        .all(|part| forced_names.iter().any(|f| part == *f));
                if is_forced_original || is_level_product {
                    idx.push(j);
                }
            }
            idx.sort_unstable();
            idx.dedup();
        }
        let e = reduce2.apply(&d)?;
        let names_e = reduce2.names(&names_d);
        drop(stage);

        // Step 6: zero-variance removal.
        let stage = obs::Span::enter("pipeline.fit.zero_variance");
        let stds = e.column_stds();
        let keep: Vec<usize> = (0..e.cols()).filter(|&i| stds[i] > 0.0).collect();
        let final_x = e.select_columns(&keep);
        let names: Vec<String> = keep.iter().map(|&i| names_e[i].clone()).collect();
        drop(stage);
        obs::gauge_set("pipeline.features.final", names.len() as f64);

        let fitted = FittedPipeline {
            config: cfg,
            expander,
            scaler,
            reduce1,
            time,
            pairs,
            names_c,
            reduce2,
            keep,
            names,
        };
        Ok((fitted, final_x))
    }
}

/// Indices of base features that are never filtered out: the 16 binary
/// level features plus the four relative utilization metrics (and the
/// cgroup throttle counter, which is relative to the period rate).
fn forced_base_indices(names_b: &[String]) -> Vec<usize> {
    names_b
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            n.contains("-LOW")
                || n.contains("-MEDIUM")
                || n.contains("-HIGH")
                || n.contains("-VERYHIGH")
                || n.contains("-EXTREME")
                || n.as_str() == "ctr.containers.cpu.util"
                || n.as_str() == "ctr.containers.mem.util"
                || n.as_str() == "mem.util.used"
                || n.as_str() == "kernel.all.cpu.idle"
                || n.as_str() == "ctr.cgroup.cpusched.throttled"
        })
        .map(|(i, _)| i)
        .collect()
}

fn expand_stage_d(
    c: &Matrix,
    groups: &[u32],
    time: Option<&TimeExpander>,
    pairs: &[(usize, usize)],
    names_c: &[String],
) -> (Matrix, Vec<String>) {
    let time_width = time.map_or(c.cols(), |t| t.output_width());
    let width = time_width + pairs.len();
    let mut data = Vec::with_capacity(c.rows() * width);

    // Partition rows by group, preserving order.
    let mut i = 0;
    while i < c.rows() {
        let g = groups[i];
        let mut j = i;
        while j < c.rows() && groups[j] == g {
            j += 1;
        }
        let block: Vec<Vec<f64>> = (i..j).map(|r| c.row(r).to_vec()).collect();
        for (local, row) in block.iter().enumerate() {
            let mut out = match time {
                Some(t) => t.expand_at(&block, local),
                None => row.clone(),
            };
            apply_products(&mut out, row, pairs);
            data.extend(out);
        }
        i = j;
    }

    let mut names = match time {
        Some(t) => t.names(names_c),
        None => names_c.to_vec(),
    };
    names.extend(product_names(names_c, pairs));
    (Matrix::from_vec(c.rows(), width, data), names)
}

/// A fitted feature pipeline: transforms raw metric windows into model
/// inputs, both in batch (training) and online (per instance) form.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedPipeline {
    config: PipelineConfig,
    expander: BaseExpander,
    scaler: Option<StandardScaler>,
    reduce1: FittedReduction,
    time: Option<TimeExpander>,
    pairs: Vec<(usize, usize)>,
    names_c: Vec<String>,
    reduce2: FittedReduction,
    keep: Vec<usize>,
    names: Vec<String>,
}

impl FittedPipeline {
    /// The configuration used to fit.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Final feature names (model-input space).
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }

    /// Number of model-input features.
    pub fn output_width(&self) -> usize {
        self.names.len()
    }

    /// Width of the intermediate (post-reduction-1) space.
    pub fn reduced_width(&self) -> usize {
        self.names_c.len()
    }

    /// Batch transform mirroring the fit-time flow. Rows must be ordered
    /// chronologically within each group.
    ///
    /// # Errors
    ///
    /// Propagates scaler/PCA errors.
    pub fn transform_batch(&self, x_raw: &Matrix, groups: &[u32]) -> Result<Matrix, Error> {
        let _span = obs::Span::enter("pipeline.transform_batch");
        let mut base_rows: Vec<f64> = Vec::with_capacity(x_raw.rows() * self.expander.len());
        for row in x_raw.iter_rows() {
            base_rows.extend(self.expander.expand(row));
        }
        let mut b = Matrix::from_vec(x_raw.rows(), self.expander.len(), base_rows);
        if let Some(s) = &self.scaler {
            b = s.transform(&b)?;
        }
        let c = self.reduce1.apply(&b)?;
        let (d, _) = expand_stage_d(&c, groups, self.time.as_ref(), &self.pairs, &self.names_c);
        let e = self.reduce2.apply(&d)?;
        Ok(e.select_columns(&self.keep))
    }

    fn transform_window(&self, window: &[Vec<f64>]) -> Result<Vec<f64>, Error> {
        let current = window.last().ok_or(Error::NotFitted)?;
        let mut out = match &self.time {
            Some(t) => t.expand_at(window, window.len() - 1),
            None => current.clone(),
        };
        apply_products(&mut out, current, &self.pairs);
        let reduced = self.reduce2.apply_row(&out)?;
        Ok(self.keep.iter().map(|&i| reduced[i]).collect())
    }

    fn reduce_raw(&self, raw: &[f64]) -> Result<Vec<f64>, Error> {
        let base = self.expander.expand(raw);
        let scaled = match &self.scaler {
            Some(s) => {
                let m = Matrix::from_rows(&[base.as_slice()]);
                s.transform(&m)?.row(0).to_vec()
            }
            None => base,
        };
        self.reduce1.apply_row(&scaled)
    }
}

/// Online per-instance transformer: feeds one raw metric vector per
/// second and yields the model-input vector using a rolling window for
/// the time-dependent features — the orchestrator keeps one of these per
/// running container.
#[derive(Debug, Clone)]
pub struct InstanceTransformer {
    pipeline: Arc<FittedPipeline>,
    window: VecDeque<Vec<f64>>,
}

/// Window length required by the 15-second lags (current + 15 history).
pub const WINDOW_LEN: usize = 16;

impl InstanceTransformer {
    /// Creates a transformer bound to a fitted pipeline.
    pub fn new(pipeline: Arc<FittedPipeline>) -> Self {
        InstanceTransformer {
            pipeline,
            window: VecDeque::with_capacity(WINDOW_LEN),
        }
    }

    /// Number of samples seen so far (capped at the window length).
    pub fn warmup(&self) -> usize {
        self.window.len()
    }

    /// Pushes one raw metric vector and returns the model-input vector.
    ///
    /// Early samples use a truncated history, exactly like a training
    /// block's first seconds.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn push(&mut self, raw: &[f64]) -> Result<Vec<f64>, Error> {
        let _span = obs::Span::enter("pipeline.transform_online");
        let reduced = self.pipeline.reduce_raw(raw)?;
        if self.window.len() == WINDOW_LEN {
            self.window.pop_front();
        }
        self.window.push_back(reduced);
        let rows: Vec<Vec<f64>> = self.window.iter().cloned().collect();
        self.pipeline.transform_window(&rows)
    }
}

monitorless_std::json_struct!(PipelineConfig {
    normalize,
    reduce1,
    time_features,
    products,
    reduce2,
    seed,
});
monitorless_std::json_struct!(FittedPipeline {
    config,
    expander,
    scaler,
    reduce1,
    time,
    pairs,
    names_c,
    reduce2,
    keep,
    names,
});

#[cfg(test)]
mod tests {
    use super::*;
    use monitorless_metrics::catalog::Catalog;
    use monitorless_metrics::signals::{ContainerSignals, HostSignals};

    /// Builds a toy labeled run: container CPU utilization ramps up and
    /// the label is "cpu util > 0.85".
    fn toy_raw(n: usize, seed: u64) -> (Matrix, Vec<u8>, Vec<u32>) {
        let catalog = Catalog::standard();
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for g in 0..2u32 {
            for t in 0..n {
                let util = (t as f64 / n as f64).min(1.0);
                let host = HostSignals {
                    cpu_util: util * 0.9,
                    tcp_estab: 50.0 + 100.0 * util,
                    net_in_bytes: 1e6 * util,
                    ..HostSignals::default()
                };
                let ctr = ContainerSignals {
                    cpu_util: util,
                    mem_util: 0.4,
                    tcp_conns: 20.0 * util,
                    ..ContainerSignals::default()
                };
                let mut v = catalog.expand_host(&host, t as u64, seed ^ u64::from(g));
                v.extend(catalog.expand_container(&ctr, t as u64, seed ^ u64::from(g) ^ 1));
                rows.push(v);
                y.push(u8::from(util > 0.85));
                groups.push(g);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y, groups)
    }

    fn layout() -> RawLayout {
        RawLayout::from_catalog(&Catalog::standard()).unwrap()
    }

    #[test]
    fn fit_transform_produces_informative_features() {
        let (x, y, groups) = toy_raw(60, 3);
        let pipeline = FeaturePipeline::new(PipelineConfig::quick());
        let (fitted, xt) = pipeline.fit_transform(&x, &y, &groups, layout()).unwrap();
        assert_eq!(xt.rows(), x.rows());
        assert!(xt.cols() > 0);
        assert_eq!(xt.cols(), fitted.output_width());
        // No zero-variance columns survive.
        assert!(xt.column_stds().iter().all(|&s| s > 0.0));
    }

    #[test]
    fn transform_batch_matches_fit_transform() {
        let (x, y, groups) = toy_raw(40, 5);
        let pipeline = FeaturePipeline::new(PipelineConfig::quick());
        let (fitted, xt) = pipeline.fit_transform(&x, &y, &groups, layout()).unwrap();
        let again = fitted.transform_batch(&x, &groups).unwrap();
        assert_eq!(xt.rows(), again.rows());
        for r in 0..xt.rows() {
            for (a, b) in xt.row(r).iter().zip(again.row(r)) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn online_transformer_matches_batch_after_warmup() {
        let (x, y, groups) = toy_raw(40, 7);
        let pipeline = FeaturePipeline::new(PipelineConfig::quick());
        let (fitted, xt) = pipeline.fit_transform(&x, &y, &groups, layout()).unwrap();
        let fitted = Arc::new(fitted);
        let mut online = InstanceTransformer::new(Arc::clone(&fitted));
        // Feed group 0's rows (first 40 rows).
        for t in 0..40 {
            let out = online.push(x.row(t)).unwrap();
            if t >= WINDOW_LEN {
                // After warmup the window holds only the last 16 samples;
                // batch lag-15 looks back at most 15 → identical.
                for (a, b) in out.iter().zip(xt.row(t)) {
                    assert!((a - b).abs() < 1e-9, "t={t}");
                }
            }
        }
        assert_eq!(online.warmup(), WINDOW_LEN);
    }

    #[test]
    fn product_features_appear_in_names() {
        let (x, y, groups) = toy_raw(40, 9);
        let pipeline = FeaturePipeline::new(PipelineConfig::quick());
        let (fitted, _) = pipeline.fit_transform(&x, &y, &groups, layout()).unwrap();
        let names = fitted.feature_names();
        assert!(
            names.iter().any(|n| n.contains(" × ")),
            "expected product features among {names:?}"
        );
    }

    #[test]
    fn pca_pipeline_also_works() {
        let (x, y, groups) = toy_raw(30, 11);
        let config = PipelineConfig {
            normalize: true,
            reduce1: Reduction::Pca {
                variance: 0.999,
                max_components: 10,
            },
            time_features: true,
            products: true,
            reduce2: Reduction::Pca {
                variance: 0.999,
                max_components: 8,
            },
            seed: 0,
        };
        let (fitted, xt) = FeaturePipeline::new(config)
            .fit_transform(&x, &y, &groups, layout())
            .unwrap();
        assert!(xt.cols() <= 8);
        assert!(fitted.feature_names().iter().all(|n| n.starts_with("PC")));
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let (x, y, _) = toy_raw(10, 1);
        let pipeline = FeaturePipeline::new(PipelineConfig::quick());
        let err = pipeline.fit_transform(&x, &y, &[0, 1], layout());
        assert!(matches!(err, Err(Error::Invalid(_))));
    }
}
