//! Stage orchestration: the six-step feature pipeline (Section 3.3.7)
//! and its online per-instance form.
//!
//! The batch and online transform paths run on streaming, column-major
//! kernels that write straight into preallocated buffers; the original
//! row-cloning implementations are retained as `*_legacy` reference
//! paths and the streaming paths are proven bit-identical to them
//! (`tests/featurize_equivalence.rs`, `table1_featurize`).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use monitorless_learn::{Matrix, StandardScaler, Transformer};
use monitorless_obs as obs;

use super::base::{BaseExpander, RawLayout};
use super::combine::{apply_products, product_names, product_pairs};
use super::reduce::{FittedReduction, Reduction};
use super::timefeat::{TimeExpander, TIME_LAGS};
use crate::Error;

/// Configuration of the feature pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Step 2: standardize features.
    pub normalize: bool,
    /// Step 3: first reduction.
    pub reduce1: Reduction,
    /// Step 4a: add `X-AVG`/`X-LAG` features.
    pub time_features: bool,
    /// Step 4b: add multiplicative cross-domain products.
    pub products: bool,
    /// Step 5: second reduction.
    pub reduce2: Reduction,
    /// Seed for the filtering forests.
    pub seed: u64,
    /// Worker threads for sharding independent group blocks in stage D
    /// (1 = serial; the output is identical for any value).
    pub n_jobs: usize,
}

impl PipelineConfig {
    /// The configuration the paper's grid search settled on: normalize,
    /// forest-filter to the top-30 union, add time and product features,
    /// then filter again.
    pub fn paper_default() -> Self {
        PipelineConfig {
            normalize: true,
            reduce1: Reduction::paper_filter(),
            time_features: true,
            products: true,
            reduce2: Reduction::ForestFilter {
                top_k: 30,
                n_estimators: 50,
            },
            seed: 0,
            n_jobs: 4,
        }
    }

    /// A scaled-down configuration for tests and quick runs.
    pub fn quick() -> Self {
        PipelineConfig {
            normalize: true,
            reduce1: Reduction::ForestFilter {
                top_k: 8,
                n_estimators: 12,
            },
            time_features: true,
            products: true,
            reduce2: Reduction::ForestFilter {
                top_k: 16,
                n_estimators: 12,
            },
            seed: 0,
            n_jobs: 2,
        }
    }
}

/// An unfitted feature pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeaturePipeline {
    config: PipelineConfig,
}

impl FeaturePipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        FeaturePipeline { config }
    }

    /// Fits the pipeline on raw metric vectors and returns the fitted
    /// pipeline together with the transformed training matrix.
    ///
    /// Rows must be ordered chronologically *within* each group (a group
    /// is one Table 1 training run / one instance's time series).
    ///
    /// # Errors
    ///
    /// Propagates learner errors; returns [`Error::Invalid`] for empty
    /// input or mismatched lengths.
    pub fn fit_transform(
        &self,
        x_raw: &Matrix,
        y: &[u8],
        groups: &[u32],
        layout: RawLayout,
    ) -> Result<(FittedPipeline, Matrix), Error> {
        if x_raw.rows() == 0 {
            return Err(Error::Invalid("empty training matrix".into()));
        }
        if y.len() != x_raw.rows() || groups.len() != x_raw.rows() {
            return Err(Error::Invalid("labels/groups do not match rows".into()));
        }
        let cfg = self.config;
        let _fit_span = obs::Span::enter("pipeline.fit");
        let expander = BaseExpander::new(layout);

        // Step 1: base expansion.
        let stage = obs::Span::enter("pipeline.fit.base_expand");
        let mut base_rows: Vec<f64> = Vec::with_capacity(x_raw.rows() * expander.len());
        for row in x_raw.iter_rows() {
            base_rows.extend(expander.expand(row));
        }
        let mut b = Matrix::from_vec(x_raw.rows(), expander.len(), base_rows);
        let names_b = expander.names();
        drop(stage);
        obs::gauge_set("pipeline.features.base", names_b.len() as f64);

        // Step 2: normalization.
        let stage = obs::Span::enter("pipeline.fit.normalize");
        let scaler = if cfg.normalize {
            let mut s = StandardScaler::new();
            b = s.fit_transform(&b)?;
            Some(s)
        } else {
            None
        };
        drop(stage);

        // Step 3: first reduction. The binary level features and the
        // relative utilization metrics are always kept: they are the
        // scale-free features that make the model portable across
        // hardware and load magnitudes (Sections 3.3.1-3.3.3) — absolute
        // metrics alone would overfit each training configuration's
        // traffic level.
        let stage = obs::Span::enter("pipeline.fit.reduce1");
        let mut reduce1 = FittedReduction::fit(cfg.reduce1, &b, y, groups, cfg.seed)?;
        if let FittedReduction::Select(idx) = &mut reduce1 {
            idx.extend(forced_base_indices(&names_b));
            idx.sort_unstable();
            idx.dedup();
        }
        let c = reduce1.apply(&b)?;
        let names_c = reduce1.names(&names_b);
        drop(stage);
        obs::gauge_set("pipeline.features.reduced", names_c.len() as f64);

        // Step 4: time features + products (per group, chronological).
        let stage = obs::Span::enter("pipeline.fit.time_products");
        let time = cfg.time_features.then(|| TimeExpander::new(c.cols()));
        let pairs = if cfg.products {
            product_pairs(&names_c)
        } else {
            Vec::new()
        };
        let (d, names_d) = expand_stage_d(&c, groups, time.as_ref(), &pairs, &names_c, cfg.n_jobs);
        drop(stage);
        obs::gauge_set("pipeline.features.expanded", names_d.len() as f64);

        // Step 5: second reduction, again keeping the scale-free
        // originals and their pairwise products. Forced names go into a
        // set once instead of rescanning the name list per candidate.
        let stage = obs::Span::enter("pipeline.fit.reduce2");
        let mut reduce2 = FittedReduction::fit(cfg.reduce2, &d, y, groups, cfg.seed ^ 0x5a5a)?;
        if let FittedReduction::Select(idx) = &mut reduce2 {
            let forced: HashSet<&str> = forced_base_indices(&names_b)
                .into_iter()
                .map(|i| names_b[i].as_str())
                .collect();
            for (j, name) in names_d.iter().enumerate() {
                let is_forced_original = forced.contains(name.as_str());
                let is_level_product =
                    name.contains(" × ") && name.split(" × ").all(|part| forced.contains(part));
                if is_forced_original || is_level_product {
                    idx.push(j);
                }
            }
            idx.sort_unstable();
            idx.dedup();
        }
        let e = reduce2.apply(&d)?;
        let names_e = reduce2.names(&names_d);
        drop(stage);

        // Step 6: zero-variance removal.
        let stage = obs::Span::enter("pipeline.fit.zero_variance");
        let stds = e.column_stds();
        let keep: Vec<usize> = (0..e.cols()).filter(|&i| stds[i] > 0.0).collect();
        let final_x = e.select_columns(&keep);
        let names: Vec<String> = keep.iter().map(|&i| names_e[i].clone()).collect();
        drop(stage);
        obs::gauge_set("pipeline.features.final", names.len() as f64);

        let fitted = FittedPipeline {
            config: cfg,
            expander,
            scaler,
            reduce1,
            time,
            pairs,
            names_c,
            reduce2,
            keep,
            names,
        };
        Ok((fitted, final_x))
    }
}

/// Indices of base features that are never filtered out: the 16 binary
/// level features plus the four relative utilization metrics (and the
/// cgroup throttle counter, which is relative to the period rate).
fn forced_base_indices(names_b: &[String]) -> Vec<usize> {
    names_b
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            n.contains("-LOW")
                || n.contains("-MEDIUM")
                || n.contains("-HIGH")
                || n.contains("-VERYHIGH")
                || n.contains("-EXTREME")
                || n.as_str() == "ctr.containers.cpu.util"
                || n.as_str() == "ctr.containers.mem.util"
                || n.as_str() == "mem.util.used"
                || n.as_str() == "kernel.all.cpu.idle"
                || n.as_str() == "ctr.cgroup.cpusched.throttled"
        })
        .map(|(i, _)| i)
        .collect()
}

/// Contiguous `[start, end)` row ranges of equal group id, in input
/// order (rows of one group must be adjacent and chronological).
fn group_blocks(groups: &[u32]) -> Vec<(usize, usize)> {
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < groups.len() {
        let g = groups[i];
        let mut j = i;
        while j < groups.len() && groups[j] == g {
            j += 1;
        }
        blocks.push((i, j));
        i = j;
    }
    blocks
}

/// Carves one contiguous output slice per group block out of `data`
/// (row-major, `width` columns) and runs `work(start, end, out)` for
/// each block over `n_jobs` pool workers, recording per-block busy time
/// behind the `pipeline.worker_utilization` gauge.
fn shard_blocks<F>(
    data: &mut [f64],
    width: usize,
    blocks: &[(usize, usize)],
    n_jobs: usize,
    work: F,
) where
    F: Fn(usize, usize, &mut [f64]) + Sync,
{
    let span = obs::Span::enter("pipeline.stage_d");
    let mut tasks: Vec<(usize, usize, &mut [f64])> = Vec::with_capacity(blocks.len());
    let mut rest = data;
    for &(start, end) in blocks {
        let (head, tail) = rest.split_at_mut((end - start) * width);
        tasks.push((start, end, head));
        rest = tail;
    }
    let busy_us = AtomicU64::new(0);
    let busy = &busy_us;
    let work = &work;
    monitorless_std::pool::for_each_item_mut(&mut tasks, n_jobs, |_, (start, end, out)| {
        let started = obs::enabled().then(std::time::Instant::now);
        work(*start, *end, out);
        if let Some(started) = started {
            let us = started.elapsed().as_micros() as u64;
            obs::observe("pipeline.block_busy_us", us as f64);
            busy.fetch_add(us, Ordering::Relaxed);
        }
    });
    if let Some(wall_us) = span.elapsed_us() {
        if wall_us > 0.0 {
            let total_busy = busy_us.load(Ordering::Relaxed) as f64;
            obs::gauge_set(
                "pipeline.worker_utilization",
                total_busy / (n_jobs.max(1) as f64 * wall_us),
            );
        }
    }
}

/// Stage D (time features + products) on the streaming kernels: every
/// group block is expanded straight into its slice of the output matrix
/// buffer — no row clones, no per-row vectors — and independent blocks
/// are sharded over `n_jobs` pool workers (the output is identical for
/// any worker count). Bit-identical to [`expand_stage_d_legacy`].
pub fn expand_stage_d(
    c: &Matrix,
    groups: &[u32],
    time: Option<&TimeExpander>,
    pairs: &[(usize, usize)],
    names_c: &[String],
    n_jobs: usize,
) -> (Matrix, Vec<String>) {
    let w = c.cols();
    let time_width = time.map_or(w, |t| t.output_width());
    let width = time_width + pairs.len();
    let blocks = group_blocks(groups);
    obs::counter_add("pipeline.rows", c.rows() as u64);
    obs::counter_add("pipeline.groups", blocks.len() as u64);
    let mut data = vec![0.0; c.rows() * width];
    let c_data = c.as_slice();
    shard_blocks(&mut data, width, &blocks, n_jobs, |start, end, out| {
        let block = &c_data[start * w..end * w];
        expand_block_full(block, w, time, pairs, time_width, width, out);
    });

    let mut names = match time {
        Some(t) => t.names(names_c),
        None => names_c.to_vec(),
    };
    names.extend(product_names(names_c, pairs));
    (Matrix::from_vec(c.rows(), width, data), names)
}

/// Expands one contiguous group block (`block`, row-major with `w`
/// columns) into `out` (row-major with `width` columns): time features
/// first, then products of the original (stage-C) values.
fn expand_block_full(
    block: &[f64],
    w: usize,
    time: Option<&TimeExpander>,
    pairs: &[(usize, usize)],
    time_width: usize,
    width: usize,
    out: &mut [f64],
) {
    let n_rows = block.len().checked_div(w).unwrap_or(0);
    match time {
        Some(t) => {
            let mut acc = vec![0.0; w];
            t.expand_block_into(block, out, width, &mut acc);
        }
        None => {
            for i in 0..n_rows {
                out[i * width..i * width + w].copy_from_slice(&block[i * w..(i + 1) * w]);
            }
        }
    }
    for i in 0..n_rows {
        let orig = &block[i * w..(i + 1) * w];
        let prod = &mut out[i * width + time_width..(i + 1) * width];
        for (dst, &(a, b)) in prod.iter_mut().zip(pairs) {
            *dst = orig[a] * orig[b];
        }
    }
}

/// The original row-cloning stage-D implementation, retained as the
/// reference the streaming path is proven bit-identical against.
pub fn expand_stage_d_legacy(
    c: &Matrix,
    groups: &[u32],
    time: Option<&TimeExpander>,
    pairs: &[(usize, usize)],
    names_c: &[String],
) -> (Matrix, Vec<String>) {
    let time_width = time.map_or(c.cols(), |t| t.output_width());
    let width = time_width + pairs.len();
    let mut data = Vec::with_capacity(c.rows() * width);

    // Partition rows by group, preserving order.
    let mut i = 0;
    while i < c.rows() {
        let g = groups[i];
        let mut j = i;
        while j < c.rows() && groups[j] == g {
            j += 1;
        }
        let block: Vec<Vec<f64>> = (i..j).map(|r| c.row(r).to_vec()).collect();
        for (local, row) in block.iter().enumerate() {
            let mut out = match time {
                Some(t) => t.expand_at(&block, local),
                None => row.clone(),
            };
            apply_products(&mut out, row, pairs);
            data.extend(out);
        }
        i = j;
    }

    let mut names = match time {
        Some(t) => t.names(names_c),
        None => names_c.to_vec(),
    };
    names.extend(product_names(names_c, pairs));
    (Matrix::from_vec(c.rows(), width, data), names)
}

/// One final-output cell of the selective stage-D/E plan: which stage-D
/// value a kept output column corresponds to, resolved through the
/// second reduction's selection and the zero-variance `keep` list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanCell {
    /// Stage-C column `f` of the current row.
    Orig(usize),
    /// Mean of stage-C column `f` over the clamped trailing window.
    Avg {
        /// Stage-C column.
        f: usize,
        /// Lag distance (window is `lag + 1` samples).
        lag: usize,
    },
    /// Stage-C column `f`, `lag` samples ago (clamped at block start).
    Lag {
        /// Stage-C column.
        f: usize,
        /// Lag distance.
        lag: usize,
    },
    /// Product of stage-C columns `a` and `b` of the current row.
    Product(usize, usize),
}

/// Evaluates the plan for chronological row `i` of a contiguous block
/// (`rw` stage-C columns), writing one value per plan cell into `out`.
///
/// Each `Avg` cell re-accumulates its clamped window in ascending
/// chronological order — the same left-to-right f64 add sequence as the
/// legacy full expansion, so every cell is bit-identical to the
/// corresponding legacy stage-D column.
fn eval_plan_row(plan: &[PlanCell], block: &[f64], rw: usize, i: usize, out: &mut [f64]) {
    let cur = &block[i * rw..(i + 1) * rw];
    for (dst, cell) in out.iter_mut().zip(plan) {
        *dst = match *cell {
            PlanCell::Orig(f) => cur[f],
            PlanCell::Avg { f, lag } => {
                let start = i.saturating_sub(lag);
                let n = (i - start + 1) as f64;
                let mut acc = 0.0;
                for r in start..=i {
                    acc += block[r * rw + f];
                }
                acc / n
            }
            PlanCell::Lag { f, lag } => block[i.saturating_sub(lag) * rw + f],
            PlanCell::Product(a, b) => cur[a] * cur[b],
        };
    }
}

/// Expands one chronological row of a contiguous block into the full
/// stage-D row (time features + products), reusing `d` — the online
/// fallback when the second reduction is PCA and every stage-D column
/// is needed. Bit-identical to `expand_at` + `apply_products`.
fn expand_row_full(
    time: Option<&TimeExpander>,
    block: &[f64],
    rw: usize,
    i: usize,
    pairs: &[(usize, usize)],
    d: &mut Vec<f64>,
) {
    d.clear();
    let cur = &block[i * rw..(i + 1) * rw];
    match time {
        Some(_) => {
            d.extend_from_slice(cur);
            for &x in &TIME_LAGS {
                let start = i.saturating_sub(x);
                let n = (i - start + 1) as f64;
                for f in 0..rw {
                    let mut acc = 0.0;
                    for r in start..=i {
                        acc += block[r * rw + f];
                    }
                    d.push(acc / n);
                }
            }
            for &x in &TIME_LAGS {
                let j = i.saturating_sub(x);
                d.extend_from_slice(&block[j * rw..(j + 1) * rw]);
            }
        }
        None => d.extend_from_slice(cur),
    }
    for &(a, b) in pairs {
        d.push(cur[a] * cur[b]);
    }
}

/// A fitted feature pipeline: transforms raw metric windows into model
/// inputs, both in batch (training) and online (per instance) form.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedPipeline {
    config: PipelineConfig,
    expander: BaseExpander,
    scaler: Option<StandardScaler>,
    reduce1: FittedReduction,
    time: Option<TimeExpander>,
    pairs: Vec<(usize, usize)>,
    names_c: Vec<String>,
    reduce2: FittedReduction,
    keep: Vec<usize>,
    names: Vec<String>,
}

impl FittedPipeline {
    /// The configuration used to fit.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Final feature names (model-input space).
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }

    /// Number of model-input features.
    pub fn output_width(&self) -> usize {
        self.names.len()
    }

    /// Width of the intermediate (post-reduction-1) space.
    pub fn reduced_width(&self) -> usize {
        self.names_c.len()
    }

    /// Width of the time-feature span of a stage-D row.
    fn time_width(&self) -> usize {
        let rw = self.names_c.len();
        match &self.time {
            Some(t) => t.output_width(),
            None => rw,
        }
    }

    /// Builds the selective stage-D/E evaluation plan: when the second
    /// reduction is a column selection (or identity), final output
    /// column `k` is exactly one stage-D value, so the batch and online
    /// paths compute only those cells instead of materializing the full
    /// stage-D row. Returns `None` for PCA, which mixes every column.
    fn plan(&self) -> Option<Vec<PlanCell>> {
        let rw = self.names_c.len();
        let time_width = self.time_width();
        let d_index = |k: usize| match &self.reduce2 {
            FittedReduction::Select(idx) => Some(idx[self.keep[k]]),
            FittedReduction::None => Some(self.keep[k]),
            FittedReduction::Pca(_) => None,
        };
        (0..self.keep.len())
            .map(|k| {
                let j = d_index(k)?;
                Some(if j < time_width {
                    if self.time.is_some() {
                        let band = j / rw;
                        let f = j % rw;
                        if band == 0 {
                            PlanCell::Orig(f)
                        } else if band <= TIME_LAGS.len() {
                            PlanCell::Avg {
                                f,
                                lag: TIME_LAGS[band - 1],
                            }
                        } else {
                            PlanCell::Lag {
                                f,
                                lag: TIME_LAGS[band - 1 - TIME_LAGS.len()],
                            }
                        }
                    } else {
                        PlanCell::Orig(j)
                    }
                } else {
                    let (a, b) = self.pairs[j - time_width];
                    PlanCell::Product(a, b)
                })
            })
            .collect()
    }

    /// Batch transform mirroring the fit-time flow on the streaming
    /// kernels: stages 1–3 are fused row by row into the reduced matrix
    /// (no intermediate base/scaled matrices), and stage D/E evaluates
    /// only the kept output cells when the second reduction is a column
    /// selection. Rows must be ordered chronologically within each
    /// group. Bit-identical to [`FittedPipeline::transform_batch_legacy`].
    ///
    /// # Errors
    ///
    /// Propagates scaler/PCA errors.
    pub fn transform_batch(&self, x_raw: &Matrix, groups: &[u32]) -> Result<Matrix, Error> {
        let span = obs::Span::enter("pipeline.transform_batch");
        let rows = x_raw.rows();
        let rw = self.names_c.len();

        // Fused stages 1-3: expand → scale → reduce, one row at a time.
        let mut c_data: Vec<f64> = Vec::with_capacity(rows * rw);
        let mut base = Vec::with_capacity(self.expander.len());
        let mut scaled = Vec::with_capacity(self.expander.len());
        let mut reduced = Vec::with_capacity(rw);
        for raw in x_raw.iter_rows() {
            self.expander.expand_into(raw, &mut base);
            let srow: &[f64] = match &self.scaler {
                Some(s) => {
                    s.transform_row_into(&base, &mut scaled)?;
                    &scaled
                }
                None => &base,
            };
            self.reduce1.apply_row_into(srow, &mut reduced)?;
            c_data.extend_from_slice(&reduced);
        }
        let c = Matrix::from_vec(rows, rw, c_data);

        let out = match self.plan() {
            Some(plan) => {
                let ow = plan.len();
                let blocks = group_blocks(groups);
                obs::counter_add("pipeline.rows", rows as u64);
                obs::counter_add("pipeline.groups", blocks.len() as u64);
                let mut data = vec![0.0; rows * ow];
                let c_slice = c.as_slice();
                let plan = &plan;
                shard_blocks(&mut data, ow, &blocks, self.config.n_jobs, |start, end, out| {
                    let block = &c_slice[start * rw..end * rw];
                    for i in 0..end - start {
                        eval_plan_row(plan, block, rw, i, &mut out[i * ow..(i + 1) * ow]);
                    }
                });
                Matrix::from_vec(rows, ow, data)
            }
            None => {
                // PCA second stage: the projection needs every stage-D
                // column, so run the full streaming expansion.
                let (d, _) = expand_stage_d(
                    &c,
                    groups,
                    self.time.as_ref(),
                    &self.pairs,
                    &self.names_c,
                    self.config.n_jobs,
                );
                let e = self.reduce2.apply(&d)?;
                e.select_columns(&self.keep)
            }
        };
        if let Some(us) = span.elapsed_us() {
            if us > 0.0 {
                obs::gauge_set("pipeline.transform_batch.rows_per_sec", rows as f64 / us * 1e6);
            }
        }
        Ok(out)
    }

    /// The original batch transform (intermediate matrices at every
    /// stage, row-cloning stage D), retained as the reference path the
    /// streaming [`FittedPipeline::transform_batch`] is proven
    /// bit-identical against.
    ///
    /// # Errors
    ///
    /// Propagates scaler/PCA errors.
    pub fn transform_batch_legacy(&self, x_raw: &Matrix, groups: &[u32]) -> Result<Matrix, Error> {
        let _span = obs::Span::enter("pipeline.transform_batch");
        let mut base_rows: Vec<f64> = Vec::with_capacity(x_raw.rows() * self.expander.len());
        for row in x_raw.iter_rows() {
            base_rows.extend(self.expander.expand(row));
        }
        let mut b = Matrix::from_vec(x_raw.rows(), self.expander.len(), base_rows);
        if let Some(s) = &self.scaler {
            b = s.transform(&b)?;
        }
        let c = self.reduce1.apply(&b)?;
        let (d, _) =
            expand_stage_d_legacy(&c, groups, self.time.as_ref(), &self.pairs, &self.names_c);
        let e = self.reduce2.apply(&d)?;
        Ok(e.select_columns(&self.keep))
    }

    fn transform_window(&self, window: &[Vec<f64>]) -> Result<Vec<f64>, Error> {
        let current = window.last().ok_or(Error::NotFitted)?;
        let mut out = match &self.time {
            Some(t) => t.expand_at(window, window.len() - 1),
            None => current.clone(),
        };
        apply_products(&mut out, current, &self.pairs);
        let reduced = self.reduce2.apply_row(&out)?;
        Ok(self.keep.iter().map(|&i| reduced[i]).collect())
    }

    /// Stages 1–3 for one raw sample — expand, scale, reduce — written
    /// into reusable scratch buffers: no 1-row matrix through the
    /// scaler, no fresh vectors, allocation-free once the buffers have
    /// capacity.
    fn reduce_raw_into(
        &self,
        raw: &[f64],
        base: &mut Vec<f64>,
        scaled: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<(), Error> {
        self.expander.expand_into(raw, base);
        let srow: &[f64] = match &self.scaler {
            Some(s) => {
                s.transform_row_into(base, scaled)?;
                scaled
            }
            None => base,
        };
        self.reduce1.apply_row_into(srow, out)
    }
}

/// Caller-owned working space for [`InstanceTransformer::push_into`],
/// shared across a whole fleet of transformers.
///
/// Stages 1–3 need roughly `2 × expanded_width + reduced_width` f64s of
/// transient space per push (~18 KB at paper scale). One instance
/// owning that is fine; 100 k instances each owning a copy is ~1.8 GB
/// of scratch that is only ever live for one instance at a time. The
/// fleet tick therefore owns a single `TransformScratch` and lends it
/// to each transformer in turn, leaving per-instance state at just the
/// rolling window (16 × reduced_width).
///
/// Buffers grow to their high-water mark on first use and are reused
/// thereafter; a warmed scratch makes `push_into` allocation-free.
#[derive(Debug, Default, Clone)]
pub struct TransformScratch {
    base: Vec<f64>,
    scaled: Vec<f64>,
    reduced: Vec<f64>,
    d: Vec<f64>,
    e: Vec<f64>,
}

impl TransformScratch {
    /// An empty scratch; buffers grow on first push.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for `pipeline`, so even the first push
    /// through it allocates nothing.
    pub fn for_pipeline(pipeline: &FittedPipeline) -> Self {
        let d_width = pipeline.time_width() + pipeline.pairs.len();
        let (d_cap, e_cap) = if pipeline.plan().is_some() {
            (0, 0)
        } else {
            (d_width, pipeline.reduce2.output_width(d_width))
        };
        TransformScratch {
            base: Vec::with_capacity(pipeline.expander.len()),
            scaled: Vec::with_capacity(pipeline.expander.len()),
            reduced: Vec::with_capacity(pipeline.reduced_width()),
            d: Vec::with_capacity(d_cap),
            e: Vec::with_capacity(e_cap),
        }
    }
}

/// Online per-instance transformer: feeds one raw metric vector per
/// second and yields the model-input vector using a rolling window for
/// the time-dependent features — the orchestrator keeps one of these per
/// running container.
///
/// The window is a fixed preallocated buffer of reduced rows and every
/// intermediate lives in preallocated scratch, so steady-state
/// [`InstanceTransformer::push`] performs no heap allocation (asserted
/// by `table1_featurize`'s counting allocator). Fleets that serve many
/// instances should prefer [`InstanceTransformer::push_into`] with one
/// shared [`TransformScratch`]: the internal scratch buffers start
/// empty and only grow if [`InstanceTransformer::push`] itself is
/// called.
#[derive(Debug, Clone)]
pub struct InstanceTransformer {
    pipeline: Arc<FittedPipeline>,
    plan: Option<Vec<PlanCell>>,
    /// Row-major chronological window, at most [`WINDOW_LEN`] × `rw`.
    window: Vec<f64>,
    filled: usize,
    rw: usize,
    /// Private working space for [`InstanceTransformer::push`]; stays
    /// empty (zero heap) on instances served via `push_into`.
    scratch: TransformScratch,
    out: Vec<f64>,
}

/// Window length required by the 15-second lags (current + 15 history).
pub const WINDOW_LEN: usize = 16;

impl InstanceTransformer {
    /// Creates a transformer bound to a fitted pipeline.
    ///
    /// Only the rolling window is preallocated; the private
    /// stage-1–3 scratch grows lazily on the first
    /// [`InstanceTransformer::push`] and never materialises on
    /// instances served through [`InstanceTransformer::push_into`].
    pub fn new(pipeline: Arc<FittedPipeline>) -> Self {
        let rw = pipeline.reduced_width();
        InstanceTransformer {
            plan: pipeline.plan(),
            window: Vec::with_capacity(WINDOW_LEN * rw),
            filled: 0,
            rw,
            scratch: TransformScratch::new(),
            out: Vec::new(),
            pipeline,
        }
    }

    /// Number of samples seen so far (capped at the window length).
    pub fn warmup(&self) -> usize {
        self.filled
    }

    /// Pushes one raw metric vector and returns the model-input vector,
    /// borrowed from an internal buffer (valid until the next push).
    ///
    /// Early samples use a truncated history, exactly like a training
    /// block's first seconds. Steady state performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn push(&mut self, raw: &[f64]) -> Result<&[f64], Error> {
        // Lend the private scratch and output buffer to `push_into`;
        // `mem::take` moves the heap pointers without touching the
        // allocator, so this wrapper adds no per-push cost.
        let width = self.pipeline.output_width();
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut out = std::mem::take(&mut self.out);
        out.resize(width, 0.0);
        let result = self.push_into(raw, &mut scratch, &mut out);
        self.scratch = scratch;
        self.out = out;
        result?;
        Ok(&self.out)
    }

    /// [`InstanceTransformer::push`] writing the model-input vector
    /// directly into a caller-provided slice — the fleet serving entry
    /// point: the orchestrator hands each instance its row of the
    /// shared feature matrix plus one fleet-wide [`TransformScratch`],
    /// so a tick over N instances performs zero heap allocation and
    /// carries no per-instance scratch (bit-identical to `push`, which
    /// delegates here).
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the pipeline output width.
    pub fn push_into(
        &mut self,
        raw: &[f64],
        scratch: &mut TransformScratch,
        out: &mut [f64],
    ) -> Result<(), Error> {
        let _span = obs::Span::enter("pipeline.transform_online");
        obs::counter_add("pipeline.online.pushes", 1);
        assert_eq!(
            out.len(),
            self.pipeline.output_width(),
            "output slice must match pipeline width"
        );
        self.pipeline.reduce_raw_into(
            raw,
            &mut scratch.base,
            &mut scratch.scaled,
            &mut scratch.reduced,
        )?;
        let rw = self.rw;
        if self.filled == WINDOW_LEN {
            self.window.copy_within(rw.., 0);
            self.window[(WINDOW_LEN - 1) * rw..].copy_from_slice(&scratch.reduced);
        } else {
            self.window.extend_from_slice(&scratch.reduced);
            self.filled += 1;
        }
        let i = self.filled - 1;
        let block = &self.window[..self.filled * rw];
        match &self.plan {
            Some(plan) => eval_plan_row(plan, block, rw, i, out),
            None => {
                let p = &self.pipeline;
                expand_row_full(p.time.as_ref(), block, rw, i, &p.pairs, &mut scratch.d);
                p.reduce2.apply_row_into(&scratch.d, &mut scratch.e)?;
                for (dst, &k) in out.iter_mut().zip(&p.keep) {
                    *dst = scratch.e[k];
                }
            }
        }
        Ok(())
    }

    /// The original per-tick path (1-row matrix through the scaler, the
    /// window cloned into fresh vectors, full stage-D row), retained as
    /// the reference [`InstanceTransformer::push`] is proven
    /// bit-identical against. Maintains the same window state, so the
    /// two paths cannot be interleaved on one instance — feed separate
    /// instances the same samples to compare.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn push_legacy(&mut self, raw: &[f64]) -> Result<Vec<f64>, Error> {
        let _span = obs::Span::enter("pipeline.transform_online");
        obs::counter_add("pipeline.online.pushes", 1);
        let p = Arc::clone(&self.pipeline);
        let base = p.expander.expand(raw);
        let scaled = match &p.scaler {
            Some(s) => {
                let m = Matrix::from_rows(&[base.as_slice()]);
                s.transform(&m)?.row(0).to_vec()
            }
            None => base,
        };
        let reduced = p.reduce1.apply_row(&scaled)?;
        let rw = self.rw;
        if self.filled == WINDOW_LEN {
            self.window.copy_within(rw.., 0);
            self.window[(WINDOW_LEN - 1) * rw..].copy_from_slice(&reduced);
        } else {
            self.window.extend_from_slice(&reduced);
            self.filled += 1;
        }
        let rows: Vec<Vec<f64>> = self
            .window
            .chunks(rw)
            .take(self.filled)
            .map(<[f64]>::to_vec)
            .collect();
        p.transform_window(&rows)
    }
}

monitorless_std::json_struct!(PipelineConfig {
    normalize,
    reduce1,
    time_features,
    products,
    reduce2,
    seed,
    n_jobs,
});
monitorless_std::json_struct!(FittedPipeline {
    config,
    expander,
    scaler,
    reduce1,
    time,
    pairs,
    names_c,
    reduce2,
    keep,
    names,
});

#[cfg(test)]
mod tests {
    use super::*;
    use monitorless_metrics::catalog::Catalog;
    use monitorless_metrics::signals::{ContainerSignals, HostSignals};

    /// Builds a toy labeled run: container CPU utilization ramps up and
    /// the label is "cpu util > 0.85".
    fn toy_raw(n: usize, seed: u64) -> (Matrix, Vec<u8>, Vec<u32>) {
        let catalog = Catalog::standard();
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for g in 0..2u32 {
            for t in 0..n {
                let util = (t as f64 / n as f64).min(1.0);
                let host = HostSignals {
                    cpu_util: util * 0.9,
                    tcp_estab: 50.0 + 100.0 * util,
                    net_in_bytes: 1e6 * util,
                    ..HostSignals::default()
                };
                let ctr = ContainerSignals {
                    cpu_util: util,
                    mem_util: 0.4,
                    tcp_conns: 20.0 * util,
                    ..ContainerSignals::default()
                };
                let mut v = catalog.expand_host(&host, t as u64, seed ^ u64::from(g));
                v.extend(catalog.expand_container(&ctr, t as u64, seed ^ u64::from(g) ^ 1));
                rows.push(v);
                y.push(u8::from(util > 0.85));
                groups.push(g);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y, groups)
    }

    fn layout() -> RawLayout {
        RawLayout::from_catalog(&Catalog::standard()).unwrap()
    }

    #[test]
    fn fit_transform_produces_informative_features() {
        let (x, y, groups) = toy_raw(60, 3);
        let pipeline = FeaturePipeline::new(PipelineConfig::quick());
        let (fitted, xt) = pipeline.fit_transform(&x, &y, &groups, layout()).unwrap();
        assert_eq!(xt.rows(), x.rows());
        assert!(xt.cols() > 0);
        assert_eq!(xt.cols(), fitted.output_width());
        // No zero-variance columns survive.
        assert!(xt.column_stds().iter().all(|&s| s > 0.0));
    }

    #[test]
    fn transform_batch_matches_fit_transform() {
        let (x, y, groups) = toy_raw(40, 5);
        let pipeline = FeaturePipeline::new(PipelineConfig::quick());
        let (fitted, xt) = pipeline.fit_transform(&x, &y, &groups, layout()).unwrap();
        let again = fitted.transform_batch(&x, &groups).unwrap();
        assert_eq!(xt.rows(), again.rows());
        for r in 0..xt.rows() {
            for (a, b) in xt.row(r).iter().zip(again.row(r)) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn streaming_batch_is_bit_identical_to_legacy() {
        let (x, y, groups) = toy_raw(40, 13);
        let pipeline = FeaturePipeline::new(PipelineConfig::quick());
        let (fitted, _) = pipeline.fit_transform(&x, &y, &groups, layout()).unwrap();
        let fast = fitted.transform_batch(&x, &groups).unwrap();
        let legacy = fitted.transform_batch_legacy(&x, &groups).unwrap();
        assert_eq!(fast.rows(), legacy.rows());
        assert_eq!(fast.cols(), legacy.cols());
        for r in 0..fast.rows() {
            for (a, b) in fast.row(r).iter().zip(legacy.row(r)) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn online_transformer_matches_batch_after_warmup() {
        let (x, y, groups) = toy_raw(40, 7);
        let pipeline = FeaturePipeline::new(PipelineConfig::quick());
        let (fitted, xt) = pipeline.fit_transform(&x, &y, &groups, layout()).unwrap();
        let fitted = Arc::new(fitted);
        let mut online = InstanceTransformer::new(Arc::clone(&fitted));
        let mut online_legacy = InstanceTransformer::new(Arc::clone(&fitted));
        // Feed group 0's rows (first 40 rows).
        for t in 0..40 {
            let legacy = online_legacy.push_legacy(x.row(t)).unwrap();
            let out = online.push(x.row(t)).unwrap();
            // Streaming and legacy online paths are bit-identical at
            // every tick, warmup included.
            for (a, b) in out.iter().zip(&legacy) {
                assert_eq!(a.to_bits(), b.to_bits(), "t={t}");
            }
            if t >= WINDOW_LEN {
                // After warmup the window holds only the last 16 samples;
                // batch lag-15 looks back at most 15 → identical.
                for (a, b) in out.iter().zip(xt.row(t)) {
                    assert!((a - b).abs() < 1e-9, "t={t}");
                }
            }
        }
        assert_eq!(online.warmup(), WINDOW_LEN);
    }

    #[test]
    fn product_features_appear_in_names() {
        let (x, y, groups) = toy_raw(40, 9);
        let pipeline = FeaturePipeline::new(PipelineConfig::quick());
        let (fitted, _) = pipeline.fit_transform(&x, &y, &groups, layout()).unwrap();
        let names = fitted.feature_names();
        assert!(
            names.iter().any(|n| n.contains(" × ")),
            "expected product features among {names:?}"
        );
    }

    #[test]
    fn pca_pipeline_also_works() {
        let (x, y, groups) = toy_raw(30, 11);
        let config = PipelineConfig {
            normalize: true,
            reduce1: Reduction::Pca {
                variance: 0.999,
                max_components: 10,
            },
            time_features: true,
            products: true,
            reduce2: Reduction::Pca {
                variance: 0.999,
                max_components: 8,
            },
            seed: 0,
            n_jobs: 2,
        };
        let (fitted, xt) = FeaturePipeline::new(config)
            .fit_transform(&x, &y, &groups, layout())
            .unwrap();
        assert!(xt.cols() <= 8);
        assert!(fitted.feature_names().iter().all(|n| n.starts_with("PC")));
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let (x, y, _) = toy_raw(10, 1);
        let pipeline = FeaturePipeline::new(PipelineConfig::quick());
        let err = pipeline.fit_transform(&x, &y, &[0, 1], layout());
        assert!(matches!(err, Err(Error::Invalid(_))));
    }
}
