//! The Section 4 baseline detectors.
//!
//! The paper compares monitorless against four static-threshold
//! approaches (CPU, MEM, CPU-OR-MEM, CPU-AND-MEM) whose thresholds are
//! tuned *a posteriori* on the full evaluation data — the best possible
//! outcome for threshold detectors — plus a response-time-based detector
//! that observes the application KPI directly (the upper bound).

use monitorless_learn::metrics::lagged_confusion;

/// Per-instance utilization snapshot: `(cpu %, mem %)` relative to the
/// container's limits — the inputs of all threshold baselines.
pub type InstanceUtil = (f64, f64);

/// Threshold-detector family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Relative container CPU usage only.
    Cpu,
    /// Relative container memory usage only.
    Mem,
    /// Saturated when CPU **or** memory exceeds its threshold.
    CpuOrMem,
    /// Saturated when CPU **and** memory exceed their thresholds.
    CpuAndMem,
}

impl std::fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BaselineKind::Cpu => "CPU",
            BaselineKind::Mem => "MEM",
            BaselineKind::CpuOrMem => "CPU-OR-MEM",
            BaselineKind::CpuAndMem => "CPU-AND-MEM",
        };
        f.write_str(s)
    }
}

/// A configured threshold baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdBaseline {
    /// Detector family.
    pub kind: BaselineKind,
    /// CPU threshold in percent.
    pub cpu_threshold: f64,
    /// Memory threshold in percent.
    pub mem_threshold: f64,
}

impl ThresholdBaseline {
    /// Whether one instance is flagged saturated.
    pub fn instance_saturated(&self, util: InstanceUtil) -> bool {
        let (cpu, mem) = util;
        match self.kind {
            BaselineKind::Cpu => cpu > self.cpu_threshold,
            BaselineKind::Mem => mem > self.mem_threshold,
            BaselineKind::CpuOrMem => cpu > self.cpu_threshold || mem > self.mem_threshold,
            BaselineKind::CpuAndMem => cpu > self.cpu_threshold && mem > self.mem_threshold,
        }
    }

    /// Application-level prediction: OR over instances (as for
    /// monitorless).
    pub fn app_prediction(&self, instances: &[InstanceUtil]) -> u8 {
        u8::from(instances.iter().any(|&u| self.instance_saturated(u)))
    }

    /// Predicts a whole run (outer index = time).
    pub fn predict_run(&self, utils: &[Vec<InstanceUtil>]) -> Vec<u8> {
        utils.iter().map(|us| self.app_prediction(us)).collect()
    }
}

/// Finds the threshold(s) maximizing the lagged F1 score against the
/// ground truth — the paper's *a-posteriori optimal* configuration.
///
/// Thresholds are swept over 1..=100% in 1-point steps (both axes for
/// the combined detectors).
///
/// # Panics
///
/// Panics if `utils` and `y_true` differ in length.
pub fn optimal_baseline(
    kind: BaselineKind,
    utils: &[Vec<InstanceUtil>],
    y_true: &[u8],
    lag: usize,
) -> ThresholdBaseline {
    assert_eq!(utils.len(), y_true.len(), "length mismatch");
    let sweep: Vec<f64> = (1..=100).map(|v| v as f64).collect();
    struct Best {
        baseline: ThresholdBaseline,
        f1: f64,
    }
    fn consider(
        best: &mut Best,
        utils: &[Vec<InstanceUtil>],
        y_true: &[u8],
        lag: usize,
        cpu: f64,
        mem: f64,
    ) {
        let candidate = ThresholdBaseline {
            cpu_threshold: cpu,
            mem_threshold: mem,
            ..best.baseline
        };
        let pred = candidate.predict_run(utils);
        let f1 = lagged_confusion(y_true, &pred, lag).f1();
        if f1 > best.f1 {
            best.f1 = f1;
            best.baseline = candidate;
        }
    }
    let mut best = Best {
        baseline: ThresholdBaseline {
            kind,
            cpu_threshold: 100.0,
            mem_threshold: 100.0,
        },
        f1: -1.0,
    };
    match kind {
        BaselineKind::Cpu => {
            for &c in &sweep {
                consider(&mut best, utils, y_true, lag, c, 100.0);
            }
        }
        BaselineKind::Mem => {
            for &m in &sweep {
                consider(&mut best, utils, y_true, lag, 100.0, m);
            }
        }
        BaselineKind::CpuOrMem | BaselineKind::CpuAndMem => {
            // Coarse 2-D sweep (5-point grid) followed by a fine sweep
            // around the best cell keeps this O(n·700) instead of O(n·10⁴).
            let coarse: Vec<f64> = (1..=20).map(|v| v as f64 * 5.0).collect();
            for &c in &coarse {
                for &m in &coarse {
                    consider(&mut best, utils, y_true, lag, c, m);
                }
            }
            let (c0, m0) = (best.baseline.cpu_threshold, best.baseline.mem_threshold);
            for dc in -4..=4 {
                for dm in -4..=4 {
                    let c = (c0 + f64::from(dc)).clamp(1.0, 100.0);
                    let m = (m0 + f64::from(dm)).clamp(1.0, 100.0);
                    consider(&mut best, utils, y_true, lag, c, m);
                }
            }
        }
    }
    best.baseline
}

/// Response-time-based detector: flags saturation when the measured
/// end-to-end response time exceeds a threshold. This observes the KPI
/// directly and acts as the paper's optimal reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtBaseline {
    /// Response-time threshold in milliseconds.
    pub rt_threshold_ms: f64,
}

impl RtBaseline {
    /// Predicts a run from measured response times.
    pub fn predict_run(&self, response_ms: &[f64]) -> Vec<u8> {
        response_ms
            .iter()
            .map(|&rt| u8::from(rt > self.rt_threshold_ms))
            .collect()
    }
}

/// Sweeps the RT threshold to maximize lagged F1 (a-posteriori optimal).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn optimal_rt_baseline(response_ms: &[f64], y_true: &[u8], lag: usize) -> RtBaseline {
    assert_eq!(response_ms.len(), y_true.len(), "length mismatch");
    let mut candidates: Vec<f64> = response_ms.to_vec();
    candidates.sort_by(|a, b| a.total_cmp(b));
    candidates.dedup();
    let mut best = RtBaseline {
        rt_threshold_ms: f64::MAX,
    };
    let mut best_f1 = -1.0;
    for &rt in &candidates {
        let candidate = RtBaseline {
            rt_threshold_ms: rt,
        };
        let pred = candidate.predict_run(response_ms);
        let f1 = lagged_confusion(y_true, &pred, lag).f1();
        if f1 > best_f1 {
            best_f1 = f1;
            best = candidate;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A run where instance CPU > 70% exactly matches the ground truth.
    fn cpu_run() -> (Vec<Vec<InstanceUtil>>, Vec<u8>) {
        let mut utils = Vec::new();
        let mut y = Vec::new();
        for t in 0..100 {
            let cpu = t as f64;
            utils.push(vec![(cpu, 30.0), (10.0, 35.0)]);
            y.push(u8::from(cpu > 70.0));
        }
        (utils, y)
    }

    #[test]
    fn optimal_cpu_threshold_is_found() {
        let (utils, y) = cpu_run();
        let b = optimal_baseline(BaselineKind::Cpu, &utils, &y, 0);
        assert!((b.cpu_threshold - 70.0).abs() <= 1.0, "{}", b.cpu_threshold);
        let pred = b.predict_run(&utils);
        assert_eq!(monitorless_learn::metrics::f1_score(&y, &pred), 1.0);
    }

    #[test]
    fn mem_detector_ignores_cpu() {
        let b = ThresholdBaseline {
            kind: BaselineKind::Mem,
            cpu_threshold: 1.0,
            mem_threshold: 90.0,
        };
        assert!(!b.instance_saturated((100.0, 50.0)));
        assert!(b.instance_saturated((0.0, 95.0)));
    }

    #[test]
    fn and_requires_both() {
        let b = ThresholdBaseline {
            kind: BaselineKind::CpuAndMem,
            cpu_threshold: 80.0,
            mem_threshold: 80.0,
        };
        assert!(!b.instance_saturated((90.0, 50.0)));
        assert!(!b.instance_saturated((50.0, 90.0)));
        assert!(b.instance_saturated((90.0, 90.0)));
    }

    #[test]
    fn or_requires_either() {
        let b = ThresholdBaseline {
            kind: BaselineKind::CpuOrMem,
            cpu_threshold: 80.0,
            mem_threshold: 80.0,
        };
        assert!(b.instance_saturated((90.0, 10.0)));
        assert!(b.instance_saturated((10.0, 90.0)));
        assert!(!b.instance_saturated((10.0, 10.0)));
    }

    #[test]
    fn app_prediction_is_or_over_instances() {
        let b = ThresholdBaseline {
            kind: BaselineKind::Cpu,
            cpu_threshold: 80.0,
            mem_threshold: 100.0,
        };
        assert_eq!(b.app_prediction(&[(10.0, 0.0), (90.0, 0.0)]), 1);
        assert_eq!(b.app_prediction(&[(10.0, 0.0), (20.0, 0.0)]), 0);
        assert_eq!(b.app_prediction(&[]), 0);
    }

    #[test]
    fn combined_optimal_beats_mismatched_single() {
        // Saturation only when BOTH cpu and mem are high.
        let mut utils = Vec::new();
        let mut y = Vec::new();
        for t in 0..200 {
            let cpu = (t % 100) as f64;
            let mem = (t / 2) as f64;
            utils.push(vec![(cpu, mem)]);
            y.push(u8::from(cpu > 60.0 && mem > 50.0));
        }
        let and = optimal_baseline(BaselineKind::CpuAndMem, &utils, &y, 0);
        let cpu_only = optimal_baseline(BaselineKind::Cpu, &utils, &y, 0);
        let f1 = |b: &ThresholdBaseline| {
            monitorless_learn::metrics::f1_score(&y, &b.predict_run(&utils))
        };
        assert!(f1(&and) > f1(&cpu_only));
        assert!(f1(&and) > 0.95);
    }

    #[test]
    fn rt_baseline_optimal_threshold() {
        let rts: Vec<f64> = (0..100).map(|t| t as f64 * 10.0).collect();
        let y: Vec<u8> = rts.iter().map(|&rt| u8::from(rt > 750.0)).collect();
        let b = optimal_rt_baseline(&rts, &y, 0);
        let pred = b.predict_run(&rts);
        assert_eq!(monitorless_learn::metrics::f1_score(&y, &pred), 1.0);
    }
}
