//! The scale-in (overprovisioning) classifier proposed in Section 5.
//!
//! "It is possible to extend our approach training an additional
//! classifier for detecting overprovisioned services and conservatively
//! scale in to reduce costs." The classifier reuses the full monitorless
//! machinery — same platform metrics, same feature pipeline, same forest
//! — but is trained on *overprovisioning* labels (the service runs far
//! below its knee with zero failures) and uses a conservative decision
//! threshold so scale-in only fires when the model is confident.

use std::sync::Arc;

use monitorless_learn::Matrix;

use crate::features::InstanceTransformer;
use crate::model::{ModelOptions, MonitorlessModel};
use crate::training::TrainingData;
use crate::Error;

/// Conservative default decision threshold for scale-in: the opposite
/// bias from the saturation model's 0.4 — removing capacity by mistake is
/// the expensive error here.
pub const SCALE_IN_THRESHOLD: f64 = 0.8;

/// A trained overprovisioning detector.
#[derive(Debug, Clone)]
pub struct ScaleInModel {
    inner: MonitorlessModel,
}

impl ScaleInModel {
    /// Trains on the overprovisioning labels carried by the training
    /// data ([`TrainingData::scalein_labels`]).
    ///
    /// # Errors
    ///
    /// Propagates pipeline and learner errors.
    pub fn train(data: &TrainingData, opts: &ModelOptions) -> Result<Self, Error> {
        let mut opts = opts.clone();
        opts.threshold = SCALE_IN_THRESHOLD;
        let inner = MonitorlessModel::train_with_labels(data, &data.scalein_labels, &opts)?;
        Ok(ScaleInModel { inner })
    }

    /// The underlying model (pipeline + forest).
    pub fn inner(&self) -> &MonitorlessModel {
        &self.inner
    }

    /// Batch prediction: 1 = overprovisioned (safe to scale in).
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn predict_batch(&self, x_raw: &Matrix, groups: &[u32]) -> Result<Vec<u8>, Error> {
        self.inner.predict_batch(x_raw, groups)
    }

    /// Batch probabilities of the overprovisioned class.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn predict_proba_batch(&self, x_raw: &Matrix, groups: &[u32]) -> Result<Vec<f64>, Error> {
        self.inner.predict_proba_batch(x_raw, groups)
    }

    /// Creates an online per-instance transformer for this model.
    pub fn transformer(self: &Arc<Self>) -> InstanceTransformer {
        // Reuse the inner model's pipeline.
        InstanceTransformer::new(Arc::new(self.inner.pipeline().clone()))
    }

    /// Predicts from an already-transformed feature vector:
    /// `(probability, overprovisioned)`.
    pub fn predict_features(&self, features: &[f64]) -> (f64, u8) {
        self.inner.predict_features(features)
    }

    /// Recommends how many of `current_replicas` could be removed given
    /// per-instance overprovisioning predictions, conservatively keeping
    /// at least one replica and never removing more than half at once.
    pub fn scale_in_recommendation(predictions: &[u8], current_replicas: usize) -> usize {
        if current_replicas <= 1 {
            return 0;
        }
        let overprovisioned = predictions.iter().filter(|&&p| p == 1).count();
        // Only act when EVERY instance looks overprovisioned (the paper's
        // "conservative" guidance), and remove at most half.
        if overprovisioned == predictions.len() && !predictions.is_empty() {
            (current_replicas / 2).max(1).min(current_replicas - 1)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{generate_training_data, TrainingOptions};
    use monitorless_learn::metrics::f1_score;

    fn data() -> TrainingData {
        generate_training_data(&TrainingOptions {
            run_seconds: 40,
            ramp_seconds: 120,
            seed: 401,
            n_jobs: 4,
        })
        .unwrap()
    }

    #[test]
    fn scalein_labels_are_present_and_disjoint_from_saturation() {
        let d = data();
        assert_eq!(d.scalein_labels.len(), d.dataset.len());
        let both = d
            .scalein_labels
            .iter()
            .zip(d.dataset.y())
            .filter(|(&o, &s)| o == 1 && s == 1)
            .count();
        assert_eq!(both, 0, "a sample cannot be both saturated and overprovisioned");
        let over: usize = d.scalein_labels.iter().map(|&v| v as usize).sum();
        assert!(over > 0, "training data must contain overprovisioned samples");
    }

    #[test]
    fn scalein_model_learns_its_labels() {
        let d = data();
        let model = ScaleInModel::train(&d, &ModelOptions::quick()).unwrap();
        // Measure learning at the neutral 0.5 point: the 0.8 operating
        // threshold deliberately trades recall for precision, so its F1
        // fluctuates with the forest's bootstrap draws.
        let proba = model
            .predict_proba_batch(d.dataset.x(), d.dataset.groups())
            .unwrap();
        let pred: Vec<u8> = proba.iter().map(|&p| u8::from(p >= 0.5)).collect();
        let f1 = f1_score(&d.scalein_labels, &pred);
        assert!(f1 > 0.6, "scale-in training F1 = {f1}");
        assert_eq!(model.inner().threshold(), SCALE_IN_THRESHOLD);
    }

    #[test]
    fn recommendation_is_conservative() {
        assert_eq!(ScaleInModel::scale_in_recommendation(&[1, 1, 1], 1), 0);
        assert_eq!(ScaleInModel::scale_in_recommendation(&[1, 1, 0], 4), 0);
        assert_eq!(ScaleInModel::scale_in_recommendation(&[1, 1, 1], 4), 2);
        assert_eq!(ScaleInModel::scale_in_recommendation(&[1, 1], 2), 1);
        assert_eq!(ScaleInModel::scale_in_recommendation(&[], 3), 0);
    }
}
