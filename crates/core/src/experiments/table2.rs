//! Table 2: hyper-parameter grid search per algorithm.
//!
//! The paper runs a 5-fold cross-validation where folds are whole
//! training sets (20 train / 5 validation per fold) and reports the
//! selected parameters. The full grids match Table 2; the quick grids
//! shrink each axis so the search completes in seconds.

use monitorless_learn::adaboost::{AdaBoost, AdaBoostParams, BoostAlgorithm};
use monitorless_learn::forest::{ClassWeight, RandomForest, RandomForestParams};
use monitorless_learn::gboost::{GradientBoosting, GradientBoostingParams};
use monitorless_learn::linear::{
    LinearSvc, LinearSvcParams, LogisticRegression, LogisticRegressionParams, Penalty,
};
use monitorless_learn::model_selection::{GridSearch, GroupKFold, ParamGrid, ParamSet, ParamValue};
use monitorless_learn::nn::{Activation, NeuralNet, NeuralNetParams};
use monitorless_learn::tree::{SplitCriterion, Splitter};
use monitorless_learn::{Classifier, Matrix};

use crate::Error;

/// Grid size selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridScale {
    /// Shrunken grids for tests and quick runs.
    Quick,
    /// The paper's full Table 2 grids.
    Full,
}

/// Algorithms examined by Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Algorithm {
    LogisticRegression,
    Svc,
    AdaBoost,
    XgBoost,
    NeuralNet,
    RandomForest,
}

impl Algorithm {
    /// All six algorithms.
    pub fn all() -> [Algorithm; 6] {
        [
            Algorithm::LogisticRegression,
            Algorithm::Svc,
            Algorithm::AdaBoost,
            Algorithm::XgBoost,
            Algorithm::NeuralNet,
            Algorithm::RandomForest,
        ]
    }

    /// Display name as in Tables 2/3.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::LogisticRegression => "Logistic Regression",
            Algorithm::Svc => "SVC",
            Algorithm::AdaBoost => "AdaBoost",
            Algorithm::XgBoost => "XGBoost",
            Algorithm::NeuralNet => "Neural Net",
            Algorithm::RandomForest => "Random Forest",
        }
    }
}

fn f(values: &[f64]) -> Vec<ParamValue> {
    values.iter().map(|&v| ParamValue::F(v)).collect()
}

fn i(values: &[i64]) -> Vec<ParamValue> {
    values.iter().map(|&v| ParamValue::I(v)).collect()
}

fn s(values: &[&str]) -> Vec<ParamValue> {
    values.iter().map(|&v| ParamValue::S(v.into())).collect()
}

/// The hyper-parameter grid for one algorithm.
pub fn grid(algorithm: Algorithm, scale: GridScale) -> ParamGrid {
    let full = matches!(scale, GridScale::Full);
    match algorithm {
        Algorithm::LogisticRegression => {
            let c = if full {
                vec![0.01, 0.1, 1.0]
            } else {
                vec![0.1, 1.0]
            };
            let tol = if full {
                vec![0.1, 0.01, 0.001, 0.0001]
            } else {
                vec![0.01]
            };
            ParamGrid::new()
                .add("C", f(&c))
                .add("tol", f(&tol))
                .add("class_weight", s(&["balanced", "none"]))
        }
        Algorithm::Svc => {
            let c = if full {
                vec![0.1, 1.0, 10.0]
            } else {
                vec![1.0, 10.0]
            };
            let tol = if full {
                vec![0.01, 0.0001, 0.00001]
            } else {
                vec![0.01]
            };
            let cw = if full {
                vec!["balanced", "none"]
            } else {
                vec!["none"]
            };
            ParamGrid::new()
                .add("C", f(&c))
                .add("tol", f(&tol))
                .add("penalty", s(&["l1", "l2"]))
                .add("class_weight", s(&cw))
        }
        Algorithm::AdaBoost => {
            let n = if full { vec![50, 250, 500] } else { vec![20] };
            let mss = if full { vec![5, 10, 20] } else { vec![5] };
            let split = if full {
                vec!["random", "best"]
            } else {
                vec!["best"]
            };
            ParamGrid::new()
                .add("n_estimators", i(&n))
                .add("algorithm", s(&["SAMME", "SAMME.R"]))
                .add("DT_criterion", s(&["gini", "entropy"]))
                .add("DT_splitter", s(&split))
                .add("DT_min_samples_split", i(&mss))
        }
        Algorithm::XgBoost => {
            let mcw = if full { vec![1, 4, 16, 64] } else { vec![1, 4] };
            let depth = if full {
                vec![1, 4, 16, 64]
            } else {
                vec![4, 16]
            };
            let gamma = if full { vec![0, 1, 4, 16] } else { vec![0] };
            ParamGrid::new()
                .add("min_child_weight", i(&mcw))
                .add("max_depth", i(&depth))
                .add("gamma", i(&gamma))
        }
        Algorithm::NeuralNet => {
            let acts = if full {
                vec!["softmax", "relu", "sigmoid", "linear"]
            } else {
                vec!["relu", "sigmoid"]
            };
            let out_acts: Vec<&str> = if full {
                vec!["softmax", "relu", "sigmoid", "linear"]
            } else {
                vec!["sigmoid"]
            };
            ParamGrid::new()
                .add("activation_function1", s(&acts))
                .add("activation_function2", s(&acts))
                .add("activation_function3", s(&out_acts))
        }
        Algorithm::RandomForest => {
            let n = if full { vec![250, 500, 1000] } else { vec![30] };
            let leaf = if full {
                vec![5, 10, 20, 30]
            } else {
                vec![5, 20]
            };
            let split = if full { vec![5, 10, 20, 30] } else { vec![5] };
            let cw = if full {
                vec!["balanced", "subsample", "none"]
            } else {
                vec!["none"]
            };
            ParamGrid::new()
                .add("n_estimators", i(&n))
                .add("min_samples_leaf", i(&leaf))
                .add("min_samples_split", i(&split))
                .add("criterion", s(&["gini", "entropy"]))
                .add("class_weight", s(&cw))
        }
    }
}

fn criterion_of(p: &ParamSet, key: &str) -> SplitCriterion {
    match p[key].as_str() {
        "entropy" => SplitCriterion::Entropy,
        _ => SplitCriterion::Gini,
    }
}

/// Builds a classifier for an algorithm from a grid parameter set.
pub fn build(algorithm: Algorithm, p: &ParamSet, quick: bool) -> Box<dyn Classifier> {
    match algorithm {
        Algorithm::LogisticRegression => {
            Box::new(LogisticRegression::new(LogisticRegressionParams {
                c: p["C"].as_f64(),
                tol: p["tol"].as_f64(),
                balanced: p["class_weight"].as_str() == "balanced",
                max_iter: if quick { 20 } else { 100 },
                ..LogisticRegressionParams::default()
            }))
        }
        Algorithm::Svc => Box::new(LinearSvc::new(LinearSvcParams {
            c: p["C"].as_f64(),
            tol: p["tol"].as_f64(),
            penalty: if p["penalty"].as_str() == "l1" {
                Penalty::L1
            } else {
                Penalty::L2
            },
            balanced: p
                .get("class_weight")
                .is_some_and(|v| v.as_str() == "balanced"),
            max_iter: if quick { 30 } else { 200 },
            ..LinearSvcParams::default()
        })),
        Algorithm::AdaBoost => Box::new(AdaBoost::new(AdaBoostParams {
            n_estimators: p["n_estimators"].as_usize(),
            algorithm: if p["algorithm"].as_str() == "SAMME" {
                BoostAlgorithm::Samme
            } else {
                BoostAlgorithm::SammeR
            },
            criterion: criterion_of(p, "DT_criterion"),
            splitter: if p["DT_splitter"].as_str() == "random" {
                Splitter::Random
            } else {
                Splitter::Best
            },
            min_samples_split: p["DT_min_samples_split"].as_usize(),
            ..AdaBoostParams::default()
        })),
        Algorithm::XgBoost => Box::new(GradientBoosting::new(GradientBoostingParams {
            min_child_weight: p["min_child_weight"].as_f64(),
            max_depth: p["max_depth"].as_usize(),
            gamma: p["gamma"].as_f64(),
            n_rounds: if quick { 15 } else { 50 },
            ..GradientBoostingParams::default()
        })),
        Algorithm::NeuralNet => {
            let act = |key: &str| match p[key].as_str() {
                "relu" => Activation::Relu,
                "sigmoid" => Activation::Sigmoid,
                "linear" => Activation::Linear,
                "softmax" => Activation::Softmax,
                other => panic!("unknown activation {other}"),
            };
            Box::new(NeuralNet::new(NeuralNetParams {
                activations: [
                    act("activation_function1"),
                    act("activation_function2"),
                    act("activation_function3"),
                ],
                epochs: if quick { 15 } else { 100 },
                ..NeuralNetParams::default()
            }))
        }
        Algorithm::RandomForest => Box::new(RandomForest::new(RandomForestParams {
            n_estimators: p["n_estimators"].as_usize(),
            min_samples_leaf: p["min_samples_leaf"].as_usize(),
            min_samples_split: p["min_samples_split"].as_usize(),
            criterion: criterion_of(p, "criterion"),
            class_weight: match p["class_weight"].as_str() {
                "balanced" => ClassWeight::Balanced,
                "subsample" => ClassWeight::BalancedSubsample,
                _ => ClassWeight::None,
            },
            // The grid search itself runs candidates × folds on worker
            // threads (see `run`); keeping each forest sequential avoids
            // oversubscribing the machine.
            n_jobs: 1,
            ..RandomForestParams::default()
        })),
    }
}

/// One Table 2 result row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Best parameter set rendered as `key=value` pairs.
    pub best_params: String,
    /// Mean cross-validated F1 of the best combination.
    pub best_f1: f64,
    /// Number of grid points evaluated.
    pub combinations: usize,
}

/// Runs the grid search for the given algorithms on transformed training
/// features.
///
/// # Errors
///
/// Propagates learner errors.
pub fn run(
    x: &Matrix,
    y: &[u8],
    groups: &[u32],
    algorithms: &[Algorithm],
    scale: GridScale,
) -> Result<Vec<Table2Row>, Error> {
    let n_groups = {
        let mut g = groups.to_vec();
        g.sort_unstable();
        g.dedup();
        g.len()
    };
    let folds = GroupKFold::new(5.min(n_groups.max(2))).split(groups)?;
    let quick = matches!(scale, GridScale::Quick);
    let mut rows = Vec::new();
    for &algorithm in algorithms {
        let g = grid(algorithm, scale);
        let combinations = g.len();
        // Candidates × folds fan out across workers; every candidate on
        // a fold shares that fold's presorted training cache.
        let search = GridSearch::new(g, folds.clone()).with_n_jobs(4);
        let result = search.run(
            |p| build(algorithm, p, quick),
            monitorless_learn::metrics::f1_score,
            x,
            y,
        )?;
        let (best, score) = result.best();
        let best_params = best
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect::<Vec<_>>()
            .join(", ");
        rows.push(Table2Row {
            algorithm: algorithm.name().to_string(),
            best_params,
            best_f1: score,
            combinations,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Matrix, Vec<u8>, Vec<u32>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut groups = Vec::new();
        for g in 0..6u32 {
            for t in 0..30 {
                let v = t as f64 / 30.0;
                rows.push(vec![v, (g as f64) * 0.01, 1.0 - v]);
                y.push(u8::from(v > 0.7));
                groups.push(g);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Matrix::from_rows(&refs), y, groups)
    }

    #[test]
    fn full_grids_match_table2_sizes() {
        assert_eq!(grid(Algorithm::LogisticRegression, GridScale::Full).len(), 24);
        assert_eq!(grid(Algorithm::Svc, GridScale::Full).len(), 36);
        assert_eq!(grid(Algorithm::AdaBoost, GridScale::Full).len(), 72);
        assert_eq!(grid(Algorithm::XgBoost, GridScale::Full).len(), 64);
        assert_eq!(grid(Algorithm::NeuralNet, GridScale::Full).len(), 64);
        assert_eq!(grid(Algorithm::RandomForest, GridScale::Full).len(), 288);
    }

    #[test]
    fn quick_search_finds_good_forest_params() {
        let (x, y, groups) = toy();
        let rows =
            run(&x, &y, &groups, &[Algorithm::RandomForest, Algorithm::XgBoost], GridScale::Quick)
                .unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.best_f1 > 0.8, "{} scored {}", row.algorithm, row.best_f1);
            assert!(!row.best_params.is_empty());
        }
    }

    #[test]
    fn build_constructs_every_algorithm() {
        for algorithm in Algorithm::all() {
            let g = grid(algorithm, GridScale::Quick);
            let combo = &g.iter_combinations()[0];
            let clf = build(algorithm, combo, true);
            assert!(!clf.name().is_empty());
        }
    }
}
