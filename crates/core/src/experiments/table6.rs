//! Table 6: baseline comparison on TeaStore in the multi-tenant
//! deployment.

use std::sync::Arc;

use super::scenario::{comparison_rows, run_eval_scenario, EvalApp, EvalOptions, EvalRun};
use super::ComparisonRow;
use crate::model::MonitorlessModel;
use crate::Error;

/// Runs the TeaStore evaluation; returns the comparison rows and the
/// underlying run (reused by Figure 3 and Table 7).
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run(
    model: &Arc<MonitorlessModel>,
    opts: &EvalOptions,
) -> Result<(Vec<ComparisonRow>, EvalRun), Error> {
    let run = run_eval_scenario(EvalApp::TeaStore, Some(model), opts)?;
    Ok((comparison_rows(&run), run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelOptions;
    use crate::training::{generate_training_data, TrainingOptions};

    #[test]
    fn teastore_comparison_produces_five_rows() {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 60,
            ramp_seconds: 150,
            seed: 61,
            n_jobs: 4,
        })
        .unwrap();
        let model = Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap());
        let (rows, run) = run(
            &model,
            &EvalOptions {
                duration: 300,
                ramp_seconds: 200,
                seed: 63,
                record_raw: false,
            },
        )
        .unwrap();
        assert_eq!(rows.len(), 5);
        assert!(run.per_service.as_ref().unwrap().len() == 7);
        // Accuracy stays high for monitorless (paper: 0.977) because
        // saturation is rare; F1 varies more at this scale.
        let ml = rows.iter().find(|r| r.algorithm == "monitorless").unwrap();
        assert!(ml.confusion.accuracy() > 0.6, "accuracy = {}", ml.confusion.accuracy());
    }
}
