//! Figure 2: observed throughput, Savitzky-Golay smoothed curve and the
//! Kneedle difference curve for a linearly increasing load on Solr.

use monitorless_label::kneedle::{detect_knee, Knee, KneedleParams};
use monitorless_metrics::NodeId;
use monitorless_sim::apps::{build_single, solr_profile};
use monitorless_sim::{Cluster, ContainerLimits, NodeSpec};
use monitorless_workload::{LoadProfile, RampProfile};

use crate::Error;

/// Options for [`run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Options {
    /// Ramp length in seconds.
    pub ramp_seconds: u64,
    /// Peak request rate of the ramp.
    pub peak_rps: f64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for Fig2Options {
    fn default() -> Self {
        Fig2Options {
            ramp_seconds: 300,
            peak_rps: 1000.0,
            seed: 2,
        }
    }
}

/// The three series of Figure 2 plus the detected knee.
#[derive(Debug, Clone)]
pub struct Fig2Data {
    /// Workload intensity per second (x axis).
    pub workload: Vec<f64>,
    /// Observed throughput (blue dots).
    pub observed: Vec<f64>,
    /// Smoothed curve (orange line).
    pub smoothed: Vec<f64>,
    /// Normalized difference curve `β − α` (green line).
    pub difference: Vec<f64>,
    /// The detected knee.
    pub knee: Knee,
}

impl Fig2Data {
    /// Prints the series as CSV (`workload,observed,smoothed,difference`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("workload,observed,smoothed,difference\n");
        for i in 0..self.workload.len() {
            out.push_str(&format!(
                "{:.2},{:.2},{:.2},{:.4}\n",
                self.workload[i], self.observed[i], self.smoothed[i], self.difference[i]
            ));
        }
        out
    }
}

/// Regenerates Figure 2: ramps Solr (unlimited, on the training server)
/// and runs the paper's four labeling steps.
///
/// # Errors
///
/// Propagates simulation and knee-detection errors.
pub fn run(opts: &Fig2Options) -> Result<Fig2Data, Error> {
    let mut cluster = Cluster::new(vec![NodeSpec::training_server()], opts.seed);
    let (app, _) =
        build_single(&mut cluster, solr_profile(), ContainerLimits::unlimited(), NodeId(0));
    let ramp = RampProfile::new(1.0, opts.peak_rps, opts.ramp_seconds);
    let mut workload = Vec::new();
    let mut observed = Vec::new();
    for t in 0..opts.ramp_seconds {
        let load = ramp.intensity(t);
        let report = cluster.step(&[(app, load)]);
        workload.push(load);
        observed.push(report.kpi(app).expect("app exists").throughput_rps);
    }
    let knee = detect_knee(&workload, &observed, &KneedleParams::default())?;
    Ok(Fig2Data {
        workload,
        observed,
        smoothed: knee.smoothed.clone(),
        difference: knee.difference.clone(),
        knee,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knee_is_near_700_rps_as_in_the_paper() {
        let data = run(&Fig2Options::default()).unwrap();
        // Figure 2's knee sits around 700 req/s; the simulated Solr is
        // calibrated for the same shape (48 cores / 65 ms per request).
        assert!(data.knee.x > 550.0 && data.knee.x < 850.0, "knee at {} rps", data.knee.x);
        assert_eq!(data.workload.len(), data.smoothed.len());
        let csv = data.to_csv();
        assert!(csv.lines().count() > 100);
        assert!(csv.starts_with("workload,"));
    }
}
