//! Table 7: autoscaling comparison — provisioning vs SLO violations.
//!
//! Seven policies from the paper: the four a-posteriori threshold
//! scalers, monitorless, the no-scaling baseline and the RT-based
//! (optimal) scaler. Thresholds for the a-posteriori scalers are tuned
//! on an unscaled run of the same trace, exactly like the paper's
//! baselines with "knowledge of the entire input data in advance".

use std::sync::Arc;

use monitorless_workload::LoadProfile;

use super::scenario::{run_eval_scenario, EvalApp, EvalOptions, EVAL_LAG};
use crate::autoscale::{run_teastore_autoscale, AutoscaleOptions, AutoscaleResult, Policy};
use crate::baselines::{optimal_baseline, optimal_rt_baseline, BaselineKind};
use crate::model::MonitorlessModel;
use crate::Error;

/// Options for the Table 7 harness.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7Options {
    /// Autoscaling run options.
    pub autoscale: AutoscaleOptions,
    /// Calibration-run options (for the a-posteriori thresholds).
    pub eval: EvalOptions,
}

impl Table7Options {
    /// Laptop-scale defaults.
    pub fn quick(seed: u64) -> Self {
        Table7Options {
            autoscale: AutoscaleOptions::quick(seed),
            eval: EvalOptions {
                duration: 400,
                ramp_seconds: 200,
                seed,
                record_raw: false,
            },
        }
    }
}

/// Formats rows like the paper's Table 7.
pub fn format(rows: &[AutoscaleResult]) -> String {
    let mut out =
        format!("{:<26} {:>18} {:>14}\n", "Algorithm", "Provisioning (Avg)", "SLO viol. (#)");
    for r in rows {
        out.push_str(&format!(
            "{:<26} {:>17.1}% {:>14}\n",
            r.policy, r.provisioning_pct, r.slo_violations
        ));
    }
    out
}

/// Runs the full Table 7 comparison.
///
/// # Errors
///
/// Propagates scenario/autoscale errors.
pub fn run(
    model: &Arc<MonitorlessModel>,
    profile: &dyn LoadProfile,
    opts: &Table7Options,
) -> Result<Vec<AutoscaleResult>, Error> {
    // Calibration pass: unscaled run of the trace to tune the
    // a-posteriori thresholds (ground truth + utilizations + RTs).
    let calibration = run_eval_scenario(EvalApp::TeaStore, None, &opts.eval)?;

    let mut policies: Vec<Policy> = vec![
        Policy::Threshold(optimal_baseline(
            BaselineKind::Cpu,
            &calibration.utils,
            &calibration.ground_truth,
            EVAL_LAG,
        )),
        Policy::Threshold(optimal_baseline(
            BaselineKind::Mem,
            &calibration.utils,
            &calibration.ground_truth,
            EVAL_LAG,
        )),
        Policy::Threshold(optimal_baseline(
            BaselineKind::CpuOrMem,
            &calibration.utils,
            &calibration.ground_truth,
            EVAL_LAG,
        )),
        Policy::Threshold(optimal_baseline(
            BaselineKind::CpuAndMem,
            &calibration.utils,
            &calibration.ground_truth,
            EVAL_LAG,
        )),
        Policy::Monitorless(Arc::clone(model)),
        Policy::NoScaling,
        Policy::RtBased {
            rt_threshold_ms: optimal_rt_baseline(
                &calibration.response_ms,
                &calibration.ground_truth,
                EVAL_LAG,
            )
            .rt_threshold_ms,
        },
    ];

    let mut rows = Vec::new();
    for policy in &mut policies {
        rows.push(run_teastore_autoscale(policy, profile, &opts.autoscale)?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::scenario::eval_workload;
    use crate::model::ModelOptions;
    use crate::training::{generate_training_data, TrainingOptions};

    #[test]
    fn scaling_policies_beat_no_scaling() {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 50,
            ramp_seconds: 120,
            seed: 81,
            n_jobs: 4,
        })
        .unwrap();
        let model = Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap());
        let opts = Table7Options {
            autoscale: AutoscaleOptions {
                duration: 350,
                replica_lifespan: 120,
                rt_slo_ms: 750.0,
                background_rps: 60.0,
                seed: 83,
            },
            eval: EvalOptions {
                duration: 350,
                ramp_seconds: 180,
                seed: 83,
                record_raw: false,
            },
        };
        let profile = eval_workload(EvalApp::TeaStore, 350, 83);
        let rows = run(&model, profile.as_ref(), &opts).unwrap();
        assert_eq!(rows.len(), 7);
        let table = format(&rows);
        let no_scaling = rows
            .iter()
            .find(|r| r.policy.contains("No Scaling"))
            .unwrap();
        assert_eq!(no_scaling.provisioning_pct, 0.0);
        // The RT-based (optimal) scaler must improve on no scaling.
        let rt = rows.iter().find(|r| r.policy.contains("RT-based")).unwrap();
        assert!(rt.slo_violations <= no_scaling.slo_violations, "{table}");
        // Monitorless provisions a bounded amount.
        let ml = rows.iter().find(|r| r.policy == "monitorless").unwrap();
        assert!(ml.provisioning_pct >= 0.0 && ml.provisioning_pct < 60.0, "{table}");
    }
}
