//! Table 4: the top-30 features by random-forest importance.

use crate::model::MonitorlessModel;

/// One importance-ranking row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Rank (1 = most important).
    pub rank: usize,
    /// Feature name (pipeline naming: products use `a × b`, time
    /// variants use `-AVGk` / `-LAGk` suffixes).
    pub feature: String,
    /// Normalized importance.
    pub importance: f64,
}

/// Extracts the top-`k` features of a trained model.
pub fn run(model: &MonitorlessModel, k: usize) -> Vec<Table4Row> {
    model
        .feature_importances()
        .into_iter()
        .take(k)
        .enumerate()
        .map(|(i, (feature, importance))| Table4Row {
            rank: i + 1,
            feature,
            importance,
        })
        .collect()
}

/// Formats rows like the paper's Table 4.
pub fn format(rows: &[Table4Row]) -> String {
    let mut out = format!("{:>4}  {:<60} {:>10}\n", "Rank", "Feature name", "Importance");
    for r in rows {
        out.push_str(&format!("{:>4}  {:<60} {:>10.4}\n", r.rank, r.feature, r.importance));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelOptions;
    use crate::training::{generate_training_data, TrainingOptions};

    #[test]
    fn top_features_are_ranked_and_mostly_engineered() {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 40,
            ramp_seconds: 120,
            seed: 41,
            n_jobs: 4,
        })
        .unwrap();
        let model = MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap();
        let rows = run(&model, 30);
        assert!(!rows.is_empty());
        assert!(rows.len() <= 30);
        // Descending importance.
        assert!(rows.windows(2).all(|w| w[0].importance >= w[1].importance));
        // As in the paper, engineered features (products / time variants /
        // binary levels) should dominate the top of the list.
        let engineered = rows
            .iter()
            .filter(|r| {
                r.feature.contains(" × ")
                    || r.feature.contains("-AVG")
                    || r.feature.contains("-LAG")
                    || r.feature.contains("-HIGH")
                    || r.feature.contains("-LOW")
                    || r.feature.contains("-MEDIUM")
                    || r.feature.contains("-VERYHIGH")
                    || r.feature.contains("-EXTREME")
            })
            .count();
        assert!(
            engineered * 2 >= rows.len(),
            "only {engineered}/{} engineered features:\n{}",
            rows.len(),
            format(&rows)
        );
        assert!(format(&rows).contains("Rank"));
    }
}
