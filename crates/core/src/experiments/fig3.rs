//! Figure 3: per-service prediction timeline for the TeaStore run.
//!
//! For each second and each TeaStore service, the service's OR-aggregated
//! prediction is classified against the application ground truth with the
//! lagged rules (green = TP₂, yellow = FP₂, red = FN₂ in the paper's
//! plot; TNs are omitted). The workload (gray) and response-time (purple)
//! curves are included as CSV columns.

use monitorless_learn::metrics::{lagged_classification, SampleOutcome};

use super::scenario::{EvalRun, EVAL_LAG};
use crate::Error;

/// Marker kind for one (service, second) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Marker {
    /// Not shown in the paper's figure.
    TrueNegative,
    /// Green dot.
    TruePositive,
    /// Yellow dot.
    FalsePositive,
    /// Red dot.
    FalseNegative,
}

impl Marker {
    fn from_outcome(o: SampleOutcome) -> Self {
        match o {
            SampleOutcome::TrueNegative => Marker::TrueNegative,
            SampleOutcome::TruePositive => Marker::TruePositive,
            SampleOutcome::FalsePositive => Marker::FalsePositive,
            SampleOutcome::FalseNegative => Marker::FalseNegative,
        }
    }

    fn code(self) -> &'static str {
        match self {
            Marker::TrueNegative => "",
            Marker::TruePositive => "TP",
            Marker::FalsePositive => "FP",
            Marker::FalseNegative => "FN",
        }
    }
}

/// The Figure 3 data: one marker row per service plus the two curves.
#[derive(Debug, Clone)]
pub struct Fig3Data {
    /// Service names in display order.
    pub services: Vec<String>,
    /// `markers[s][t]` for service `s` at second `t`.
    pub markers: Vec<Vec<Marker>>,
    /// Workload intensity per second (gray curve).
    pub workload: Vec<f64>,
    /// Average response time per second (purple curve).
    pub response_ms: Vec<f64>,
}

impl Fig3Data {
    /// Serializes as CSV: `t,workload,response_ms,<service columns>`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t,workload,response_ms");
        for s in &self.services {
            out.push(',');
            out.push_str(s);
        }
        out.push('\n');
        for t in 0..self.workload.len() {
            out.push_str(&format!("{t},{:.2},{:.2}", self.workload[t], self.response_ms[t]));
            for s in 0..self.services.len() {
                out.push(',');
                out.push_str(self.markers[s][t].code());
            }
            out.push('\n');
        }
        out
    }

    /// Counts (TP, FP, FN) markers for one service.
    pub fn counts(&self, service: &str) -> Option<(usize, usize, usize)> {
        let idx = self.services.iter().position(|s| s == service)?;
        let count = |m: Marker| self.markers[idx].iter().filter(|&&x| x == m).count();
        Some((
            count(Marker::TruePositive),
            count(Marker::FalsePositive),
            count(Marker::FalseNegative),
        ))
    }
}

/// Builds Figure 3 from a TeaStore evaluation run that carried a model.
///
/// # Errors
///
/// Returns [`Error::Invalid`] if the run has no per-service predictions.
pub fn run(eval: &EvalRun) -> Result<Fig3Data, Error> {
    let per_service = eval
        .per_service
        .as_ref()
        .ok_or_else(|| Error::Invalid("run was executed without a model".into()))?;
    // The KPI is only observable at application level, so false
    // negatives cannot be attributed to one service (Section 4.2.2);
    // FN markers are placed on every service row at seconds where the
    // application-level OR missed.
    let n = eval.ground_truth.len();
    let mut app_pred = vec![0u8; n];
    for (_, preds) in per_service {
        for (t, &p) in preds.iter().enumerate() {
            app_pred[t] |= p;
        }
    }
    let app_outcomes = lagged_classification(&eval.ground_truth, &app_pred, EVAL_LAG);

    let mut services = Vec::new();
    let mut markers = Vec::new();
    for (name, preds) in per_service {
        let outcomes = lagged_classification(&eval.ground_truth, preds, EVAL_LAG);
        services.push(name.clone());
        markers.push(
            outcomes
                .into_iter()
                .zip(&app_outcomes)
                .map(|(o, app)| match (o, app) {
                    // A silent service is only "wrong" when the whole
                    // application missed the saturation.
                    (SampleOutcome::FalseNegative, SampleOutcome::FalseNegative) => {
                        Marker::FalseNegative
                    }
                    (SampleOutcome::FalseNegative, _) => Marker::TrueNegative,
                    (other, _) => Marker::from_outcome(other),
                })
                .collect(),
        );
    }
    Ok(Fig3Data {
        services,
        markers,
        workload: eval.workload.clone(),
        response_ms: eval.response_ms.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_run() -> EvalRun {
        EvalRun {
            ground_truth: vec![0, 0, 1, 1, 0],
            workload: vec![10.0, 20.0, 90.0, 95.0, 15.0],
            throughput: vec![10.0, 20.0, 70.0, 70.0, 15.0],
            response_ms: vec![10.0, 12.0, 900.0, 950.0, 20.0],
            utils: vec![vec![]; 5],
            monitorless: Some(vec![0, 1, 1, 0, 0]),
            per_service: Some(vec![
                ("auth".into(), vec![0, 1, 1, 0, 0]),
                ("webui".into(), vec![0, 0, 0, 0, 0]),
            ]),
            raw_instances: None,
            upsilon: 60.0,
        }
    }

    #[test]
    fn markers_follow_lagged_rules() {
        let data = run(&fake_run()).unwrap();
        assert_eq!(data.services, vec!["auth", "webui"]);
        // auth: early prediction at t=1 forgiven (saturation at t=2),
        // miss at t=3 forgiven (prediction at t=2).
        let (tp, fp, fn_) = data.counts("auth").unwrap();
        assert_eq!((tp, fp, fn_), (2, 0, 0));
        // webui never fires, but auth covered both saturated seconds at
        // application level, so no FN is attributed to webui.
        let (tp, fp, fn_) = data.counts("webui").unwrap();
        assert_eq!((tp, fp, fn_), (0, 0, 0));
    }

    #[test]
    fn app_level_misses_are_marked_on_every_service() {
        let mut r = fake_run();
        // Nothing ever fires: both saturated seconds are app-level FNs.
        r.per_service = Some(vec![
            ("auth".into(), vec![0, 0, 0, 0, 0]),
            ("webui".into(), vec![0, 0, 0, 0, 0]),
        ]);
        let data = run(&r).unwrap();
        assert_eq!(data.counts("auth").unwrap(), (0, 0, 2));
        assert_eq!(data.counts("webui").unwrap(), (0, 0, 2));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let data = run(&fake_run()).unwrap();
        let csv = data.to_csv();
        assert!(csv.starts_with("t,workload,response_ms,auth,webui"));
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.contains("TP"));
    }

    #[test]
    fn missing_model_is_an_error() {
        let mut r = fake_run();
        r.per_service = None;
        assert!(matches!(run(&r), Err(Error::Invalid(_))));
    }
}
