//! Table 3: training time, per-sample classification time and lagged F1
//! of the six classifiers.
//!
//! All classifiers share the same fitted feature pipeline (its cost is
//! excluded from the timings, as in the paper, where feature extraction
//! "takes the same time for all algorithms"). The validation F1₂ is
//! measured on the three-tier web application run, which the training
//! data never saw.

use std::sync::Arc;
use std::time::Instant;

use monitorless_learn::metrics::lagged_confusion;
use monitorless_learn::{Classifier, Matrix};

use super::scenario::{run_eval_scenario, EvalApp, EvalOptions, EVAL_LAG};
use super::table2::{build, Algorithm, GridScale};
use crate::features::FeaturePipeline;
use crate::training::TrainingData;
use crate::Error;

/// One Table 3 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Wall-clock training time in seconds.
    pub training_time_s: f64,
    /// Per-sample classification time in milliseconds.
    pub class_time_ms: f64,
    /// Lagged F1 on the validation scenario.
    pub f1_2: f64,
}

/// Formats rows like the paper's Table 3.
pub fn format(rows: &[Table3Row]) -> String {
    let mut out = format!(
        "{:<22} {:>14} {:>12} {:>7}\n",
        "Algorithm", "Training Time", "Class. Time", "F1_2"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>12.2} s {:>9.3} ms {:>7.3}\n",
            r.algorithm, r.training_time_s, r.class_time_ms, r.f1_2
        ));
    }
    out
}

/// Runs the comparison: trains each algorithm (with its paper-selected
/// hyper-parameters at `Full` scale, or shrunken ones at `Quick` scale)
/// on the transformed training data and scores it on the three-tier run.
///
/// # Errors
///
/// Propagates learner/scenario errors.
pub fn run(
    data: &TrainingData,
    pipeline_cfg: crate::features::PipelineConfig,
    eval_opts: &EvalOptions,
    scale: GridScale,
) -> Result<Vec<Table3Row>, Error> {
    // Shared pipeline.
    let (fitted, x_train) = FeaturePipeline::new(pipeline_cfg).fit_transform(
        data.dataset.x(),
        data.dataset.y(),
        data.dataset.groups(),
        data.layout.clone(),
    )?;
    let fitted = Arc::new(fitted);

    // Validation scenario with raw instance series.
    let mut eval_opts = *eval_opts;
    eval_opts.record_raw = true;
    let run = run_eval_scenario(EvalApp::ThreeTier, None, &eval_opts)?;
    let raws = run.raw_instances.as_ref().expect("record_raw was set");
    // Transform each instance's series once.
    let mut instance_features: Vec<Matrix> = Vec::new();
    for (_, series) in raws {
        let refs: Vec<&[f64]> = series.iter().map(|r| r.as_slice()).collect();
        let raw = Matrix::from_rows(&refs);
        let groups = vec![0u32; raw.rows()];
        instance_features.push(fitted.transform_batch(&raw, &groups)?);
    }

    let quick = matches!(scale, GridScale::Quick);
    let mut rows = Vec::new();
    // All six classifiers train on the same matrix; the tree-family ones
    // share one presorted view of it through this cache.
    let fit_cache = monitorless_learn::FitCache::new();
    for algorithm in Algorithm::all() {
        let params = paper_selected_params(algorithm, scale);
        let mut clf = build(algorithm, &params, quick);

        let t0 = Instant::now();
        clf.fit_cached(&x_train, &fit_cache, data.dataset.y(), None)?;
        let training_time_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let _ = clf.predict(&x_train);
        let class_time_ms = t1.elapsed().as_secs_f64() * 1000.0 / x_train.rows() as f64;

        // Validation: per-instance predictions, OR-aggregated per tick.
        let f1_2 = score_on_run(clf.as_ref(), &instance_features, &run.ground_truth);
        rows.push(Table3Row {
            algorithm: algorithm.name().to_string(),
            training_time_s,
            class_time_ms,
            f1_2,
        });
    }
    Ok(rows)
}

/// OR-aggregated lagged F1 of a classifier over per-instance feature
/// series.
pub fn score_on_run(
    clf: &dyn Classifier,
    instance_features: &[Matrix],
    ground_truth: &[u8],
) -> f64 {
    let preds: Vec<Vec<u8>> = instance_features
        .iter()
        .map(|x| clf.predict_with_threshold(x, 0.4))
        .collect();
    let n = ground_truth.len();
    let mut app_pred = vec![0u8; n];
    for t in 0..n {
        app_pred[t] = u8::from(preds.iter().any(|p| t < p.len() && p[t] == 1));
    }
    lagged_confusion(ground_truth, &app_pred, EVAL_LAG).f1()
}

/// The hyper-parameters the grid search selected for each algorithm
/// (underlined entries in Table 2).
pub fn paper_selected_params(
    algorithm: Algorithm,
    scale: GridScale,
) -> monitorless_learn::model_selection::ParamSet {
    use monitorless_learn::model_selection::ParamValue as V;
    let mut p = monitorless_learn::model_selection::ParamSet::new();
    let full = matches!(scale, GridScale::Full);
    match algorithm {
        Algorithm::LogisticRegression => {
            p.insert("C".into(), V::F(1.0));
            p.insert("tol".into(), V::F(0.0001));
            p.insert("class_weight".into(), V::S("none".into()));
        }
        Algorithm::Svc => {
            p.insert("C".into(), V::F(10.0));
            p.insert("tol".into(), V::F(0.01));
            p.insert("penalty".into(), V::S("l1".into()));
            p.insert("class_weight".into(), V::S("none".into()));
        }
        Algorithm::AdaBoost => {
            p.insert("n_estimators".into(), V::I(if full { 50 } else { 15 }));
            p.insert("algorithm".into(), V::S("SAMME.R".into()));
            p.insert("DT_criterion".into(), V::S("gini".into()));
            p.insert("DT_splitter".into(), V::S("best".into()));
            p.insert("DT_min_samples_split".into(), V::I(5));
        }
        Algorithm::XgBoost => {
            p.insert("min_child_weight".into(), V::I(1));
            p.insert("max_depth".into(), V::I(if full { 64 } else { 8 }));
            p.insert("gamma".into(), V::I(0));
        }
        Algorithm::NeuralNet => {
            p.insert("activation_function1".into(), V::S("relu".into()));
            p.insert("activation_function2".into(), V::S("relu".into()));
            p.insert("activation_function3".into(), V::S("sigmoid".into()));
        }
        Algorithm::RandomForest => {
            p.insert("n_estimators".into(), V::I(if full { 250 } else { 40 }));
            p.insert("min_samples_leaf".into(), V::I(if full { 20 } else { 5 }));
            p.insert("min_samples_split".into(), V::I(5));
            p.insert("criterion".into(), V::S("entropy".into()));
            p.insert("class_weight".into(), V::S("none".into()));
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::PipelineConfig;
    use crate::training::{generate_training_data, TrainingOptions};

    #[test]
    fn comparison_ranks_forest_highly() {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 40,
            ramp_seconds: 120,
            seed: 31,
            n_jobs: 4,
        })
        .unwrap();
        let rows = run(
            &data,
            PipelineConfig::quick(),
            &EvalOptions {
                duration: 150,
                ramp_seconds: 150,
                seed: 33,
                record_raw: true,
            },
            GridScale::Quick,
        )
        .unwrap();
        assert_eq!(rows.len(), 6);
        let rf = rows
            .iter()
            .find(|r| r.algorithm == "Random Forest")
            .unwrap();
        assert!(rf.f1_2 > 0.4, "forest F1_2 = {}\n{}", rf.f1_2, format(&rows));
        // The tree ensembles should be near the top, as in the paper.
        let best = rows
            .iter()
            .max_by(|a, b| a.f1_2.partial_cmp(&b.f1_2).unwrap())
            .unwrap();
        assert!(
            ["Random Forest", "XGBoost", "AdaBoost"].contains(&best.algorithm.as_str()),
            "best was {} \n{}",
            best.algorithm,
            format(&rows)
        );
        assert!(rows.iter().all(|r| r.training_time_s >= 0.0));
        assert!(rows.iter().all(|r| r.class_time_ms >= 0.0));
    }
}
