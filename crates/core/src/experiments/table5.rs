//! Table 5: baseline comparison on the three-tier web application.

use std::sync::Arc;

use super::scenario::{comparison_rows, run_eval_scenario, EvalApp, EvalOptions};
use super::ComparisonRow;
use crate::model::MonitorlessModel;
use crate::Error;

/// Runs the three-tier evaluation and builds the Table 5 rows.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run(model: &Arc<MonitorlessModel>, opts: &EvalOptions) -> Result<Vec<ComparisonRow>, Error> {
    let run = run_eval_scenario(EvalApp::ThreeTier, Some(model), opts)?;
    Ok(comparison_rows(&run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::comparison_header;
    use crate::model::ModelOptions;
    use crate::training::{generate_training_data, TrainingOptions};

    #[test]
    fn monitorless_is_competitive_on_the_three_tier_app() {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 60,
            ramp_seconds: 150,
            seed: 51,
            n_jobs: 4,
        })
        .unwrap();
        let model = Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap());
        let rows = run(
            &model,
            &EvalOptions {
                duration: 250,
                ramp_seconds: 200,
                seed: 53,
                record_raw: false,
            },
        )
        .unwrap();
        let table = rows
            .iter()
            .map(|r| r.format())
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(rows.len(), 5, "{table}");
        let ml = rows.iter().find(|r| r.algorithm == "monitorless").unwrap();
        let cpu = rows
            .iter()
            .find(|r| r.algorithm.starts_with("CPU ("))
            .unwrap();
        // Paper shape: the front-end is CPU-bound, so both the optimal CPU
        // detector and monitorless score high.
        assert!(cpu.confusion.f1() > 0.8, "{}\n{}", comparison_header(), table);
        assert!(ml.confusion.f1() > 0.6, "monitorless F1_2 = {}\n{}", ml.confusion.f1(), table);
    }
}
