//! Shared evaluation-scenario runner for Tables 5/6/8 and Figure 3.
//!
//! An evaluation scenario deploys an application the model has never
//! seen (Elgg three-tier, TeaStore or Sockshop), calibrates the
//! application's saturation threshold `Υ` with a linear load ramp, then
//! replays the paper's evaluation workload while recording, per second:
//! the ground-truth label (KPI vs `Υ`), per-instance utilizations for
//! the threshold baselines, the measured response time for the RT
//! baseline, and — when a model is supplied — online monitorless
//! predictions per instance and per service.

use std::sync::Arc;

use monitorless_label::kneedle::KneedleParams;
use monitorless_label::{SaturationDirection, SaturationThreshold};
use monitorless_metrics::NodeId;
use monitorless_sim::apps::{build_elgg, build_sockshop, build_teastore};
use monitorless_sim::{AppId, Cluster, NodeSpec};
use monitorless_workload::{
    DailyPatternProfile, LoadProfile, NoisyProfile, RampProfile, SineProfile, SumProfile,
};

use crate::baselines::InstanceUtil;
use crate::model::MonitorlessModel;
use crate::orchestrator::{Aggregation, Orchestrator};
use crate::Error;

/// Which evaluation application a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalApp {
    /// The Elgg three-tier stack (Table 5), alone on one training-class
    /// server.
    ThreeTier,
    /// TeaStore in the multi-tenant M1–M3 deployment, co-located with
    /// Sockshop (Table 6 / Figure 3 / Table 7).
    TeaStore,
    /// Sockshop in the same deployment, co-located with TeaStore
    /// (Table 8).
    Sockshop,
}

/// Options for [`run_eval_scenario`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOptions {
    /// Length of the measured run in seconds.
    pub duration: u64,
    /// Length of the `Υ` calibration ramp.
    pub ramp_seconds: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Record the raw per-instance metric series (needed by the Table 3
    /// classifier comparison; costs memory).
    pub record_raw: bool,
}

impl EvalOptions {
    /// Laptop-scale defaults.
    pub fn quick(seed: u64) -> Self {
        EvalOptions {
            duration: 500,
            ramp_seconds: 250,
            seed,
            record_raw: false,
        }
    }
}

/// Everything recorded during an evaluation run.
#[derive(Debug, Clone)]
pub struct EvalRun {
    /// Ground-truth application saturation per second.
    pub ground_truth: Vec<u8>,
    /// Offered load per second.
    pub workload: Vec<f64>,
    /// Achieved throughput per second.
    pub throughput: Vec<f64>,
    /// Measured average response time per second (ms).
    pub response_ms: Vec<f64>,
    /// Per-second, per-instance `(cpu%, mem%)` of the target app's
    /// containers.
    pub utils: Vec<Vec<InstanceUtil>>,
    /// Monitorless application-level predictions (when a model was
    /// given).
    pub monitorless: Option<Vec<u8>>,
    /// Monitorless per-service predictions (service name, one label per
    /// second), for Figure 3.
    pub per_service: Option<Vec<(String, Vec<u8>)>>,
    /// Raw per-instance metric series (service name, one 1040-vector per
    /// second), recorded when [`EvalOptions::record_raw`] is set.
    pub raw_instances: Option<Vec<(String, Vec<Vec<f64>>)>>,
    /// The calibrated saturation threshold `Υ` (throughput scale).
    pub upsilon: f64,
}

fn build_app(cluster: &mut Cluster, app: EvalApp) -> AppId {
    match app {
        EvalApp::ThreeTier => build_elgg(cluster, NodeId(0)),
        EvalApp::TeaStore => build_teastore(cluster, NodeId(0), NodeId(1), NodeId(2)),
        EvalApp::Sockshop => build_sockshop(cluster, NodeId(0), NodeId(1), NodeId(2)),
    }
}

fn nodes_for(app: EvalApp) -> Vec<NodeSpec> {
    match app {
        EvalApp::ThreeTier => vec![NodeSpec::training_server()],
        _ => vec![NodeSpec::m1(), NodeSpec::m2(), NodeSpec::m3()],
    }
}

/// The evaluation workload for each application, as in the paper:
/// a 1/10-intensity `sinnoise` for the three-tier app, a worst-case
/// daily-pattern trace for TeaStore, and three overlapping Locust runs
/// for Sockshop.
pub fn eval_workload(app: EvalApp, duration: u64, seed: u64) -> Box<dyn LoadProfile> {
    match app {
        EvalApp::ThreeTier => {
            // sinnoise1000 scaled to one tenth of the intensity.
            let base = SineProfile::new(0.1, 100.0, duration.max(1), duration);
            Box::new(NoisyProfile::new(base, 0.35, 6.0, seed))
        }
        EvalApp::TeaStore => {
            Box::new(DailyPatternProfile::new(60.0, 420.0, (duration / 3).max(1), duration, seed))
        }
        // 0.62 req/s per hatched client: the 700-client plateau of each
        // Locust run pushes the front-end past its knee for the last
        // stretch of hatching plus the hold phase (~10-15% of the trace,
        // as in the paper's 10.1% saturated ratio).
        EvalApp::Sockshop => Box::new(SumProfile::sockshop(0.62)),
    }
}

/// Maximum rate used to size the calibration ramp.
fn ramp_peak(app: EvalApp) -> f64 {
    match app {
        EvalApp::ThreeTier => 140.0,
        EvalApp::TeaStore => 800.0,
        EvalApp::Sockshop => 800.0,
    }
}

/// Calibrates `Υ` for an evaluation application with a linear ramp on a
/// fresh, uncontended deployment (Section 4: "running a linearly
/// increasing load test, as described in Section 2.2").
pub fn calibrate_eval_threshold(
    app: EvalApp,
    opts: &EvalOptions,
) -> Result<SaturationThreshold, Error> {
    let mut cluster = Cluster::new(nodes_for(app), opts.seed ^ 0xEE);
    let target = build_app(&mut cluster, app);
    let ramp = RampProfile::new(1.0, ramp_peak(app), opts.ramp_seconds);
    let mut offered = Vec::new();
    let mut throughput = Vec::new();
    for t in 0..opts.ramp_seconds {
        let load = ramp.intensity(t);
        let report = cluster.step(&[(target, load)]);
        offered.push(load);
        throughput.push(report.kpi(target).expect("app exists").throughput_rps);
    }
    Ok(SaturationThreshold::calibrate(
        &offered,
        &throughput,
        &KneedleParams::default(),
        SaturationDirection::Above,
    )?)
}

/// Runs the evaluation scenario. When `model` is provided, monitorless
/// predictions are produced online (per instance, per service, and
/// OR-aggregated to application level).
///
/// # Errors
///
/// Propagates simulation, labeling and pipeline errors.
pub fn run_eval_scenario(
    app: EvalApp,
    model: Option<&Arc<MonitorlessModel>>,
    opts: &EvalOptions,
) -> Result<EvalRun, Error> {
    let threshold = calibrate_eval_threshold(app, opts)?;

    let mut cluster = Cluster::new(nodes_for(app), opts.seed);
    let target = build_app(&mut cluster, app);
    // Multi-tenant scenarios co-locate the *other* storefront.
    let tenant = match app {
        EvalApp::ThreeTier => None,
        EvalApp::TeaStore => Some((
            build_sockshop(&mut cluster, NodeId(0), NodeId(1), NodeId(2)),
            eval_workload(EvalApp::Sockshop, opts.duration, opts.seed ^ 1),
        )),
        EvalApp::Sockshop => Some((
            build_teastore(&mut cluster, NodeId(0), NodeId(1), NodeId(2)),
            eval_workload(EvalApp::TeaStore, opts.duration, opts.seed ^ 1),
        )),
    };
    let profile = eval_workload(app, opts.duration, opts.seed);

    let service_names: Vec<String> = cluster.app(target).service_names().to_vec();
    let mut orchestrator = model.map(|m| Orchestrator::new(Arc::clone(m)));

    // Baselines read the same monitored (noisy) utilization metrics the
    // model sees, not the simulator's internal state.
    let catalog = Arc::clone(cluster.catalog());
    let idx_cpu = catalog
        .container_index("containers.cpu.util")
        .expect("standard catalog");
    let idx_mem = catalog
        .container_index("containers.mem.util")
        .expect("standard catalog");

    let mut run = EvalRun {
        ground_truth: Vec::new(),
        workload: Vec::new(),
        throughput: Vec::new(),
        response_ms: Vec::new(),
        utils: Vec::new(),
        monitorless: model.map(|_| Vec::new()),
        per_service: model.map(|_| {
            service_names
                .iter()
                .map(|s| (s.clone(), Vec::new()))
                .collect()
        }),
        raw_instances: opts.record_raw.then(|| {
            cluster
                .app(target)
                .instances()
                .iter()
                .map(|&inst| {
                    let (_, svc) = cluster.owner_of(inst).expect("instance belongs to target");
                    (svc.to_string(), Vec::new())
                })
                .collect()
        }),
        upsilon: threshold.upsilon(),
    };
    let raw_instance_ids: Vec<_> = cluster.app(target).instances().to_vec();

    for t in 0..opts.duration {
        let load = profile.intensity(t);
        let mut loads = vec![(target, load)];
        if let Some((other, other_profile)) = &tenant {
            loads.push((*other, other_profile.intensity(t)));
        }
        let report = cluster.step(&loads);
        let kpi = report.kpi(target).expect("target exists");

        run.workload.push(load);
        run.throughput.push(kpi.throughput_rps);
        run.response_ms.push(kpi.response_ms);
        run.ground_truth
            .push(crate::training::saturation_label(kpi, Some(&threshold)));
        run.utils.push(
            cluster
                .app(target)
                .instances()
                .iter()
                .filter_map(|&inst| {
                    report.observations.iter().find_map(|o| {
                        o.containers
                            .iter()
                            .find(|(id, _)| *id == inst)
                            .map(|(_, v)| (v[idx_cpu], v[idx_mem]))
                    })
                })
                .collect(),
        );

        if let Some(raws) = run.raw_instances.as_mut() {
            for (k, &inst) in raw_instance_ids.iter().enumerate() {
                if let Some(v) = report
                    .observations
                    .iter()
                    .find_map(|o| o.instance_vector(inst))
                {
                    raws[k].1.push(v);
                }
            }
        }

        if let Some(orch) = orchestrator.as_mut() {
            let preds = orch.step(&report.observations)?;
            let app_instances = cluster.app(target).instances();
            let app_pred =
                Orchestrator::application_prediction(preds, app_instances, Aggregation::Or);
            run.monitorless
                .as_mut()
                .expect("created with model")
                .push(app_pred);
            let per_service = run.per_service.as_mut().expect("created with model");
            for (service, series) in per_service.iter_mut() {
                let insts = cluster.app(target).instances_of(service);
                let p = Orchestrator::application_prediction(preds, &insts, Aggregation::Or);
                series.push(p);
            }
        }
    }
    Ok(run)
}

/// The paper evaluates with lag distance `k = 2`.
pub const EVAL_LAG: usize = 2;

/// Builds the comparison rows shared by Tables 5, 6 and 8: the four
/// a-posteriori-optimal threshold baselines plus monitorless (when the
/// run carried a model).
pub fn comparison_rows(run: &EvalRun) -> Vec<super::ComparisonRow> {
    use crate::baselines::{optimal_baseline, BaselineKind};
    use monitorless_learn::metrics::lagged_confusion;

    let mut rows = Vec::new();
    for kind in [
        BaselineKind::Cpu,
        BaselineKind::Mem,
        BaselineKind::CpuOrMem,
        BaselineKind::CpuAndMem,
    ] {
        let baseline = optimal_baseline(kind, &run.utils, &run.ground_truth, EVAL_LAG);
        let pred = baseline.predict_run(&run.utils);
        let name = match kind {
            BaselineKind::Cpu => format!("CPU ({:.0}%)", baseline.cpu_threshold),
            BaselineKind::Mem => format!("MEM ({:.0}%)", baseline.mem_threshold),
            BaselineKind::CpuOrMem => "CPU-OR-MEM".to_string(),
            BaselineKind::CpuAndMem => "CPU-AND-MEM".to_string(),
        };
        rows.push(super::ComparisonRow {
            algorithm: name,
            confusion: lagged_confusion(&run.ground_truth, &pred, EVAL_LAG),
        });
    }
    if let Some(pred) = &run.monitorless {
        rows.push(super::ComparisonRow {
            algorithm: "monitorless".into(),
            confusion: lagged_confusion(&run.ground_truth, pred, EVAL_LAG),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_tier_scenario_records_everything() {
        let opts = EvalOptions {
            duration: 120,
            ramp_seconds: 150,
            seed: 21,
            record_raw: false,
        };
        let run = run_eval_scenario(EvalApp::ThreeTier, None, &opts).unwrap();
        assert_eq!(run.ground_truth.len(), 120);
        assert_eq!(run.utils.len(), 120);
        assert_eq!(run.utils[0].len(), 3, "three tiers");
        assert!(run.upsilon > 10.0, "upsilon = {}", run.upsilon);
        assert!(run.monitorless.is_none());
        // The noisy sine must saturate the front-end sometimes.
        let pos: usize = run.ground_truth.iter().map(|&l| l as usize).sum();
        assert!(pos > 0, "no saturated samples in the run");
        assert!(pos < 120, "everything saturated");
    }

    #[test]
    fn teastore_scenario_has_low_saturation_ratio() {
        let opts = EvalOptions {
            duration: 200,
            ramp_seconds: 200,
            seed: 23,
            record_raw: false,
        };
        let run = run_eval_scenario(EvalApp::TeaStore, None, &opts).unwrap();
        let pos: usize = run.ground_truth.iter().map(|&l| l as usize).sum();
        let ratio = pos as f64 / run.ground_truth.len() as f64;
        assert!(ratio < 0.5, "TeaStore should saturate only at peaks: {ratio}");
        assert_eq!(run.utils[0].len(), 7);
    }

    #[test]
    fn sockshop_scenario_builds_14_instances() {
        let opts = EvalOptions {
            duration: 60,
            ramp_seconds: 150,
            seed: 29,
            record_raw: true,
        };
        let run = run_eval_scenario(EvalApp::Sockshop, None, &opts).unwrap();
        assert_eq!(run.utils[0].len(), 14);
        let raws = run.raw_instances.as_ref().unwrap();
        assert_eq!(raws.len(), 14);
        assert_eq!(raws[0].1.len(), 60);
        assert_eq!(raws[0].1[0].len(), 1040);
    }
}
