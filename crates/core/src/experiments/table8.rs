//! Table 8: baseline comparison on Sockshop (14 services) in the
//! multi-tenant deployment.

use std::sync::Arc;

use super::scenario::{comparison_rows, run_eval_scenario, EvalApp, EvalOptions};
use super::ComparisonRow;
use crate::model::MonitorlessModel;
use crate::Error;

/// Runs the Sockshop evaluation and builds the Table 8 rows.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run(model: &Arc<MonitorlessModel>, opts: &EvalOptions) -> Result<Vec<ComparisonRow>, Error> {
    let run = run_eval_scenario(EvalApp::Sockshop, Some(model), opts)?;
    Ok(comparison_rows(&run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelOptions;
    use crate::training::{generate_training_data, TrainingOptions};

    #[test]
    fn sockshop_is_harder_than_the_three_tier_app() {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 60,
            ramp_seconds: 150,
            seed: 71,
            n_jobs: 4,
        })
        .unwrap();
        let model = Arc::new(MonitorlessModel::train(&data, &ModelOptions::quick()).unwrap());
        // Sockshop's interesting window is when two Locust runs overlap;
        // the full trace is 6000 s, so sample a shorter version by using
        // the paper's structure but reduced duration via the scenario's
        // duration knob (the Locust sum profile is fixed-length; early
        // seconds are idle).
        let rows = run(
            &model,
            &EvalOptions {
                duration: 2200,
                ramp_seconds: 200,
                seed: 73,
                record_raw: false,
            },
        )
        .unwrap();
        assert_eq!(rows.len(), 5);
        let ml = rows.iter().find(|r| r.algorithm == "monitorless").unwrap();
        assert!(ml.confusion.total() == 2200);
    }
}
