//! Table 1: the training-configuration catalog, with the bottleneck each
//! configuration actually exhibits in the simulator.

use monitorless_sim::Bottleneck;

use crate::training::{generate_training_data, table1, TrainingOptions};
use crate::Error;

/// One printable Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Row id (1-25).
    pub id: u32,
    /// Service name.
    pub service: String,
    /// CPU/MEM limits as printed in the paper ("–" = unlimited).
    pub limits: String,
    /// Partner row, if co-located.
    pub parallel: String,
    /// Traffic description.
    pub traffic: String,
    /// Bottleneck the paper reports.
    pub expected: String,
    /// Bottleneck observed in the simulation (dominant while saturated).
    pub observed: String,
    /// Whether expected and observed bottleneck classes agree
    /// (IO classes are considered one family, as the distinction depends
    /// on queue-depth details).
    pub matches: bool,
}

fn io_family(b: Bottleneck) -> bool {
    matches!(
        b,
        Bottleneck::IoBandwidth
            | Bottleneck::IoQueue
            | Bottleneck::IoWait
            | Bottleneck::MemBandwidth
    )
}

/// Regenerates Table 1 with observed bottlenecks from a (scaled) run.
///
/// # Errors
///
/// Propagates training-data generation errors.
pub fn run(opts: &TrainingOptions) -> Result<Vec<Table1Row>, Error> {
    let configs = table1();
    let data = generate_training_data(opts)?;
    let rows = configs
        .iter()
        .map(|c| {
            let observed = data
                .observed_bottlenecks
                .iter()
                .find(|(id, _)| *id == c.id)
                .map_or(Bottleneck::None, |(_, b)| *b);
            let expected = c.expected_bottleneck;
            let matches = observed == expected || (io_family(observed) && io_family(expected));
            let cpu = c
                .limits
                .cpu_cores
                .map_or("-".to_string(), |v| format!("{v}"));
            let mem = c
                .limits
                .memory_gb
                .map_or("-".to_string(), |v| format!("{v} GB"));
            Table1Row {
                id: c.id,
                service: c.service.short_name().to_string(),
                limits: format!("{cpu}/{mem}"),
                parallel: c.parallel_with.map_or("-".into(), |p| p.to_string()),
                traffic: c.traffic.describe(),
                expected: expected.to_string(),
                observed: observed.to_string(),
                matches,
            }
        })
        .collect();
    Ok(rows)
}

/// Formats rows as the paper's table.
pub fn format(rows: &[Table1Row]) -> String {
    let mut out = format!(
        "{:>3} {:<9} {:<10} {:>4} {:<18} {:<15} {:<15} {:<5}\n",
        "#", "Service", "CPU,MEM", "Par", "Traffic", "Expected", "Observed", "Match"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>3} {:<9} {:<10} {:>4} {:<18} {:<15} {:<15} {:<5}\n",
            r.id, r.service, r.limits, r.parallel, r.traffic, r.expected, r.observed, r.matches
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_observed_bottlenecks_match_the_paper() {
        let rows = run(&TrainingOptions {
            run_seconds: 40,
            ramp_seconds: 120,
            seed: 17,
            n_jobs: 4,
        })
        .unwrap();
        assert_eq!(rows.len(), 25);
        let matching = rows.iter().filter(|r| r.matches).count();
        assert!(matching >= 17, "only {matching}/25 bottlenecks match:\n{}", format(&rows));
        let table = format(&rows);
        assert!(table.contains("Solr"));
        assert!(table.contains("sinnoise1000"));
    }
}
