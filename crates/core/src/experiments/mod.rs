//! One harness per paper table/figure.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig2`] | Figure 2 — observed/smoothed/difference curves and the Kneedle knee |
//! | [`table1`] | Table 1 — the training-configuration catalog with observed bottlenecks |
//! | [`table2`] | Table 2 — hyper-parameter grid search |
//! | [`table3`] | Table 3 — training/classification time and F1₂ of the six classifiers |
//! | [`table4`] | Table 4 — top-30 random-forest feature importances |
//! | [`table5`] | Table 5 — three-tier web application comparison |
//! | [`table6`] | Table 6 — TeaStore multi-tenant comparison |
//! | [`fig3`] | Figure 3 — per-service prediction timeline for TeaStore |
//! | [`table7`] | Table 7 — autoscaling provisioning vs SLO violations |
//! | [`table8`] | Table 8 — Sockshop comparison |
//!
//! Every harness takes a *scale* knob so tests run in seconds while the
//! bench binaries can run at paper scale.

pub mod fig2;
pub mod fig3;
pub mod scenario;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod training_ablation;

use monitorless_learn::metrics::ConfusionMatrix;

/// One comparison row shared by Tables 5, 6 and 8: a detector's lagged
/// confusion counts plus the derived scores.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Detector name (e.g. `"CPU (97%)"`, `"monitorless"`).
    pub algorithm: String,
    /// Lagged confusion matrix (k = 2 in the paper).
    pub confusion: ConfusionMatrix,
}

impl ComparisonRow {
    /// Formats the row like the paper's tables.
    pub fn format(&self) -> String {
        let c = &self.confusion;
        format!(
            "{:<22} {:>6} {:>6} {:>6} {:>6} {:>7.3} {:>7.3}",
            self.algorithm,
            c.tn,
            c.fp,
            c.fn_,
            c.tp,
            c.f1(),
            c.accuracy()
        )
    }
}

/// Header matching [`ComparisonRow::format`].
pub fn comparison_header() -> String {
    format!(
        "{:<22} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7}",
        "Algorithm", "TN2", "FP2", "FN2", "TP2", "F1_2", "Acc_2"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_format_aligned() {
        let row = ComparisonRow {
            algorithm: "monitorless".into(),
            confusion: ConfusionMatrix {
                tn: 607,
                fp: 11,
                fn_: 0,
                tp: 1838,
            },
        };
        let s = row.format();
        assert!(s.contains("monitorless"));
        assert!(s.contains("607"));
        assert!(s.contains("0.997"));
        assert_eq!(comparison_header().split_whitespace().count(), 7);
    }
}
