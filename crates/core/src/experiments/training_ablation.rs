//! Training-diversity ablation.
//!
//! The paper's central premise is that *one* saturation model trained on
//! a small but diverse set of services (Solr, Memcache, Cassandra)
//! transfers to unseen applications, and Section 3.3.4 explicitly
//! "encourages the inclusion of many different training applications to
//! stress different platform resources". This harness quantifies that:
//! models are trained on single-service subsets of the Table 1 data and
//! on the full set, then scored on the unseen three-tier application.

use std::sync::Arc;

use monitorless_learn::metrics::lagged_confusion;

use super::scenario::{run_eval_scenario, EvalApp, EvalOptions, EVAL_LAG};
use crate::model::{ModelOptions, MonitorlessModel};
use crate::training::{table1, ServiceKind, TrainingData};
use crate::Error;

/// One ablation row.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversityRow {
    /// Which training services were included.
    pub services: String,
    /// Training samples in the subset.
    pub train_samples: usize,
    /// Fraction of saturated training samples.
    pub positive_fraction: f64,
    /// Transfer F1₂ on the three-tier app.
    pub f1_2: f64,
    /// Transfer Acc₂ on the three-tier app.
    pub acc_2: f64,
}

/// Restricts training data to the Table 1 rows of the given services.
///
/// # Errors
///
/// Returns [`Error::Invalid`] if the subset is empty.
pub fn subset_by_service(
    data: &TrainingData,
    keep: &dyn Fn(ServiceKind) -> bool,
) -> Result<TrainingData, Error> {
    let keep_groups: Vec<u32> = table1()
        .iter()
        .filter(|c| keep(c.service))
        .map(|c| c.id)
        .collect();
    let indices: Vec<usize> = (0..data.dataset.len())
        .filter(|&i| keep_groups.contains(&data.dataset.groups()[i]))
        .collect();
    if indices.is_empty() {
        return Err(Error::Invalid("empty training subset".into()));
    }
    Ok(TrainingData {
        dataset: data.dataset.subset(&indices),
        layout: data.layout.clone(),
        thresholds: data
            .thresholds
            .iter()
            .filter(|(id, _)| keep_groups.contains(id))
            .cloned()
            .collect(),
        observed_bottlenecks: data
            .observed_bottlenecks
            .iter()
            .filter(|(id, _)| keep_groups.contains(id))
            .cloned()
            .collect(),
        scalein_labels: indices.iter().map(|&i| data.scalein_labels[i]).collect(),
    })
}

/// Runs the diversity ablation: Solr-only, Memcache-only,
/// Cassandra-only, and the full training set.
///
/// # Errors
///
/// Propagates training/scenario errors. Subsets whose model cannot be
/// trained (e.g. single-class labels at tiny scale) are skipped.
pub fn run(
    data: &TrainingData,
    model_opts: &ModelOptions,
    eval_opts: &EvalOptions,
) -> Result<Vec<DiversityRow>, Error> {
    type ServiceFilter = Box<dyn Fn(ServiceKind) -> bool>;
    let subsets: Vec<(&str, ServiceFilter)> = vec![
        ("Solr only", Box::new(|s| matches!(s, ServiceKind::Solr))),
        ("Memcache only", Box::new(|s| matches!(s, ServiceKind::Memcache))),
        ("Cassandra only", Box::new(|s| matches!(s, ServiceKind::Cassandra(_)))),
        ("All services", Box::new(|_| true)),
    ];
    let mut rows = Vec::new();
    for (name, keep) in subsets {
        let subset = subset_by_service(data, keep.as_ref())?;
        let model = match MonitorlessModel::train(&subset, model_opts) {
            Ok(m) => Arc::new(m),
            Err(Error::Learn(_)) => continue, // degenerate subset at tiny scale
            Err(e) => return Err(e),
        };
        let run = run_eval_scenario(EvalApp::ThreeTier, Some(&model), eval_opts)?;
        let cm = lagged_confusion(
            &run.ground_truth,
            run.monitorless.as_ref().expect("model given"),
            EVAL_LAG,
        );
        rows.push(DiversityRow {
            services: name.to_string(),
            train_samples: subset.dataset.len(),
            positive_fraction: subset.dataset.positive_fraction(),
            f1_2: cm.f1(),
            acc_2: cm.accuracy(),
        });
    }
    Ok(rows)
}

/// Formats the ablation rows.
pub fn format(rows: &[DiversityRow]) -> String {
    let mut out = format!(
        "{:<16} {:>8} {:>6} {:>7} {:>7}\n",
        "Training set", "samples", "pos%", "F1_2", "Acc_2"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>8} {:>5.0}% {:>7.3} {:>7.3}\n",
            r.services,
            r.train_samples,
            100.0 * r.positive_fraction,
            r.f1_2,
            r.acc_2
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{generate_training_data, TrainingOptions};

    #[test]
    fn subsets_partition_by_service() {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 30,
            ramp_seconds: 100,
            seed: 701,
            n_jobs: 4,
        })
        .unwrap();
        let solr = subset_by_service(&data, &|s| matches!(s, ServiceKind::Solr)).unwrap();
        let memc = subset_by_service(&data, &|s| matches!(s, ServiceKind::Memcache)).unwrap();
        let cass = subset_by_service(&data, &|s| matches!(s, ServiceKind::Cassandra(_))).unwrap();
        assert_eq!(
            solr.dataset.len() + memc.dataset.len() + cass.dataset.len(),
            data.dataset.len()
        );
        assert_eq!(solr.dataset.distinct_groups().len(), 6);
        assert_eq!(memc.dataset.distinct_groups().len(), 4);
        assert_eq!(cass.dataset.distinct_groups().len(), 15);
        assert_eq!(solr.scalein_labels.len(), solr.dataset.len());
    }

    #[test]
    fn diversity_ablation_produces_rows_and_full_set_transfers() {
        let data = generate_training_data(&TrainingOptions {
            run_seconds: 40,
            ramp_seconds: 120,
            seed: 703,
            n_jobs: 4,
        })
        .unwrap();
        let rows = run(
            &data,
            &ModelOptions::quick(),
            &EvalOptions {
                duration: 200,
                ramp_seconds: 150,
                seed: 705,
                record_raw: false,
            },
        )
        .unwrap();
        let table = format(&rows);
        assert!(rows.len() >= 2, "{table}");
        let full = rows.iter().find(|r| r.services == "All services").unwrap();
        assert!(full.f1_2 > 0.5, "full training set must transfer:\n{table}");
        // The diverse training set should not be dominated by every
        // narrow subset simultaneously.
        let best_single = rows
            .iter()
            .filter(|r| r.services != "All services")
            .map(|r| r.f1_2)
            .fold(0.0, f64::max);
        assert!(full.f1_2 >= best_single - 0.3, "diversity collapsed:\n{table}");
    }
}
